//! Cross-crate property tests: the compiler agrees with the formula
//! interpreter for arbitrary recursion strategies, and parallel
//! derivations are always fully optimized.

use proptest::prelude::*;
use spiral_fft::codegen::fuse::fuse;
use spiral_fft::codegen::lower::lower_seq;
use spiral_fft::codegen::plan::Plan;
use spiral_fft::rewrite::{check_fully_optimized, multicore_dft, RuleTree};
use spiral_fft::spl::builder::dft;
use spiral_fft::spl::cplx::Cplx;

/// A random rule tree for a random smooth size.
fn arb_tree() -> impl Strategy<Value = RuleTree> {
    // Sizes with varied factor structure.
    let sizes = prop::sample::select(vec![8usize, 12, 16, 24, 32, 48, 64, 96, 128]);
    (sizes, any::<u64>()).prop_map(|(n, seed)| {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        spiral_fft::search::random_tree(n, 8, &mut rng)
    })
}

fn cplx_input(n: usize, seed: u64) -> Vec<Cplx> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let re = (s as f64 / u64::MAX as f64) * 2.0 - 1.0;
            s = s.wrapping_mul(0x2545F4914F6CDD1D);
            let im = (s as f64 / u64::MAX as f64) * 2.0 - 1.0;
            Cplx::new(re, im)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any rule tree expands to a formula that computes the DFT, lowers,
    /// fuses, and compiles into a plan that agrees with the interpreter.
    #[test]
    fn compiler_agrees_with_interpreter(tree in arb_tree(), seed in any::<u64>()) {
        let n = tree.size();
        let formula = tree.expand().normalized();
        let x = cplx_input(n, seed);
        let want = dft(n).eval(&x);
        // Interpreter.
        let via_interp = formula.eval(&x);
        // Lowered program.
        let prog = lower_seq(&formula).unwrap();
        let via_lowered = prog.eval(&x);
        // Fused program.
        let via_fused = fuse(prog).eval(&x);
        // Compiled plan.
        let plan = Plan::from_formula(&formula, 1, 4).unwrap();
        let via_plan = plan.execute(&x);
        let tol = 1e-8 * n as f64;
        for (a, b) in via_interp.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, tol));
        }
        for (a, b) in via_lowered.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, tol));
        }
        for (a, b) in via_fused.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, tol));
        }
        for (a, b) in via_plan.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, tol));
        }
    }

    /// Every valid (n, p, µ) derivation passes Definition 1, computes the
    /// DFT, and simulates with zero false sharing.
    #[test]
    fn derivations_always_fully_optimized(
        pe in 1usize..=2,       // p = 2 or 4
        me in 0usize..=2,       // µ = 1, 2, or 4
        extra in 0usize..=4,    // n = (pµ)² · 2^extra
        seed in any::<u64>(),
    ) {
        let p = 1usize << pe;
        let mu = 1usize << me;
        let n = (p * mu) * (p * mu) * (1usize << extra);
        if n > 4096 {
            return Ok(());
        }
        let r = multicore_dft(n, p, mu, None).unwrap();
        check_fully_optimized(&r.formula, p, mu).unwrap();
        let x = cplx_input(n, seed);
        let got = r.formula.eval(&x);
        let want = dft(n).eval(&x);
        let tol = 1e-8 * n as f64;
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, tol));
        }
        // Dynamic false-sharing check on the expanded plan. The paper's
        // guarantee is for the µ the formula was derived for: a µ=1 plan
        // on a µ=4 machine may (correctly) false-share, so only assert
        // when derivation µ matches the machine's line length.
        let expanded = spiral_fft::rewrite::multicore_dft_expanded(n, p, mu, None, 8).unwrap();
        let plan = Plan::from_formula(&expanded, p, mu).unwrap();
        let machine = spiral_fft::sim::core_duo();
        if p <= machine.p && mu == machine.mu() {
            let rep = spiral_fft::sim::simulate_plan(&plan, &machine, true);
            prop_assert_eq!(rep.stats.false_sharing, 0);
        }
    }

    /// The parallel executor agrees with the reference execution for any
    /// valid configuration (real threads, park barrier).
    #[test]
    fn threaded_execution_deterministic(extra in 0usize..=3, seed in any::<u64>()) {
        let n = 64 << extra;
        let expanded = spiral_fft::rewrite::multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
        let plan = Plan::from_formula(&expanded, 2, 4).unwrap();
        let exec = spiral_fft::codegen::ParallelExecutor::new(
            2,
            spiral_fft::smp::barrier::BarrierKind::Park,
        );
        let x = cplx_input(n, seed);
        let want = plan.execute(&x);
        let got = exec.execute(&plan, &x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-12));
        }
    }
}
