//! The paper's claims as executable assertions.
//!
//! Each test names the claim and the section it comes from. Simulated
//! machines substitute for the paper's hardware (see DESIGN.md §1), so
//! these verify *shapes and relations*, not absolute numbers.

use spiral_bench::series::{crossover, fig3_series, tune_spiral};
use spiral_fft::rewrite::{check_fully_optimized, formula_14, load_balance_ratio, multicore_dft};
use spiral_fft::sim::{core_duo, opteron, paper_machines, pentium_d, simulate_plan, xeon_mp};
use spiral_fft::spl::builder::dft;
use spiral_fft::spl::matrix::assert_formula_eq;

#[test]
fn claim_s32_formula_14_is_derived_and_exact() {
    // §3.2: "The final expression output by our rewriting system, (14)".
    for (n, p, mu, m) in [
        (64usize, 2usize, 4usize, 8usize),
        (256, 4, 2, 16),
        (1024, 2, 4, 32),
    ] {
        let r = multicore_dft(n, p, mu, Some(m)).unwrap();
        let hand = formula_14(m, n / m, p, mu).normalized();
        assert_eq!(
            r.formula.to_string(),
            hand.to_string(),
            "n={n} p={p} µ={mu}"
        );
        assert_formula_eq(&dft(n), &r.formula, 1e-7);
    }
}

#[test]
fn claim_s31_load_balanced_and_no_false_sharing() {
    // §3: "we can prove that the algorithms offer perfect load-balancing
    // and avoid false sharing" — structural check + dynamic simulation.
    for machine in paper_machines() {
        let n = 4096;
        let plans = tune_spiral(n, &machine);
        for (t, plan) in &plans.parallel {
            let rep = simulate_plan(plan, &machine, true);
            assert_eq!(
                rep.stats.false_sharing, 0,
                "{}: false sharing with {t} threads",
                machine.name
            );
            assert!(
                rep.balance_ratio < 1.05,
                "{}: balance ratio {} with {t} threads",
                machine.name,
                rep.balance_ratio
            );
        }
    }
    // Structural side for a representative derivation.
    let r = multicore_dft(1024, 4, 4, None).unwrap();
    check_fully_optimized(&r.formula, 4, 4).unwrap();
    assert!((load_balance_ratio(&r.formula, 4) - 1.0).abs() < 1e-9);
}

#[test]
fn claim_s1_speedup_for_in_l1_sizes_on_cmp() {
    // §1: "we demonstrate a parallelization speed-up already for sizes
    // that fit into L1 cache and run at less than 10,000 cycles" (2^8).
    let machine = core_duo();
    let n = 256; // 2^8: 4 KiB working set, far inside 32 KiB L1
    let plans = tune_spiral(n, &machine);
    let seq = simulate_plan(&plans.sequential, &machine, true);
    let (_t, par_plan) = plans.parallel.last().expect("2^8 parallelizes for p=2 µ=4");
    let par = simulate_plan(par_plan, &machine, true);
    assert!(
        par.cycles < seq.cycles,
        "no speedup at 2^8: par {} vs seq {}",
        par.cycles,
        seq.cycles
    );
    // Paper: "less than 10,000 cycles" — holds with exchanges merged
    // into the compute stages (EXPERIMENTS.md records the exact value).
    assert!(
        par.cycles < 10_000.0,
        "2^8 parallel run at {} cycles",
        par.cycles
    );
}

#[test]
fn claim_s4_fftw_crossover_is_much_later_than_spirals() {
    // §1/§4: FFTW takes advantage of the second processor only beyond
    // 2^13 (>500k cycles); Spiral already at small sizes.
    let machine = core_duo();
    let series = fig3_series(&machine, 6, 14);
    let spiral_x = crossover(&series[0], &series[2], 0.02).expect("Spiral crossover");
    let fftw_x = crossover(&series[3], &series[4], 0.02);
    assert!(spiral_x <= 8, "Spiral crossover 2^{spiral_x} > 2^8");
    // `None` (crossover even later than the sweep) is consistent with
    // the claim; only an observed crossover is constrained.
    if let Some(k) = fftw_x {
        assert!(k >= 11, "FFTW-like crossover 2^{k} too early");
        assert!(k > spiral_x + 2, "crossover gap too small");
    }
}

#[test]
fn claim_s4_spiral_wins_small_and_mid_sizes() {
    // §4: "compare favorably … across all small and midsize DFTs and
    // considered platforms"; sequential code "within 10% of FFTW".
    // On the real-multicore machines Spiral must win outright; on the
    // bus-based machines (where its parallel code cannot engage at small
    // sizes) it must stay within the paper's sequential 10% band.
    for machine in [core_duo(), opteron()] {
        let series = fig3_series(&machine, 8, 12);
        for k in 8..=12 {
            let spiral = series[0].value_at(k).unwrap();
            let fftw = series[3].value_at(k).unwrap();
            assert!(
                spiral > fftw,
                "{} at 2^{k}: Spiral {spiral} vs FFTW-like {fftw}",
                machine.name
            );
        }
    }
    for machine in [pentium_d(), xeon_mp()] {
        let series = fig3_series(&machine, 8, 12);
        for k in 8..=12 {
            let spiral = series[0].value_at(k).unwrap();
            let fftw = series[3].value_at(k).unwrap();
            assert!(
                spiral > 0.88 * fftw,
                "{} at 2^{k}: Spiral {spiral} more than 12% below FFTW-like {fftw}",
                machine.name
            );
        }
    }
}

#[test]
fn claim_s4_multicore_machines_parallelize_earlier_than_bus_machines() {
    // §4: "Spiral-generated code takes advantage of the faster on-chip
    // communication in multicore systems".
    let cmp = fig3_series(&core_duo(), 6, 13);
    let bus = fig3_series(&pentium_d(), 6, 13);
    let x_cmp = crossover(&cmp[0], &cmp[2], 0.02).unwrap_or(99);
    let x_bus = crossover(&bus[0], &bus[2], 0.02).unwrap_or(99);
    assert!(
        x_cmp < x_bus,
        "CMP crossover 2^{x_cmp} not earlier than bus 2^{x_bus}"
    );
}

#[test]
fn claim_s4_four_way_speedup_on_opteron() {
    // Figure 3(b): on the Opteron the 4-thread code clearly beats
    // sequential for mid sizes.
    let machine = opteron();
    let series = fig3_series(&machine, 10, 13);
    // Speedup grows with size as barrier cost amortizes.
    for (k, factor) in [(10u32, 1.1), (12, 1.8), (13, 2.0)] {
        let par = series[0].value_at(k).unwrap();
        let seq = series[2].value_at(k).unwrap();
        assert!(
            par > factor * seq,
            "2^{k}: par {par} vs seq {seq} (want {factor}x)"
        );
    }
}

/// §3.1/§3.2 measured on the host, not simulated: the generated
/// load-balanced plans really distribute compute evenly across threads
/// and really spend little time at barriers. Needs the instrumented
/// build (`--features trace`); the executors carry no instrumentation
/// otherwise.
#[cfg(feature = "trace")]
mod measured_claims {
    use spiral_fft::codegen::plan::Plan;
    use spiral_fft::codegen::ParallelExecutor;
    use spiral_fft::rewrite::{multicore_dft_expanded, sequential_dft};
    use spiral_fft::smp::topology::processors;
    use spiral_fft::spl::Cplx;
    use spiral_trace::RunProfile;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(j as f64 * 0.25, 1.0 - j as f64 * 0.125))
            .collect()
    }

    /// Fused load-balanced multicore plan for `n` points on `p` threads.
    fn balanced_plan(n: usize, p: usize) -> Plan {
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
    }

    /// Best (most favorable) profile over `reps` traced runs: min-of-N
    /// is the standard defense against scheduler noise — the claim is
    /// about the schedule, not about a preempted outlier run.
    fn best_profiles(exec: &ParallelExecutor, plan: &Plan, reps: usize) -> Vec<RunProfile> {
        let x = ramp(plan.n);
        (0..reps)
            .map(|_| {
                let (_, p) = exec
                    .try_execute_traced(plan, &x)
                    .expect("healthy plan must execute");
                p
            })
            .collect()
    }

    #[test]
    fn claim_s31_measured_load_balance_and_barrier_share() {
        // §3: "perfect load-balancing"; §3.2: barriers are "the only
        // synchronization" and must stay a small share of the run.
        // Timing assertions need real parallelism — on a single-core
        // host the threads time-slice and both metrics are meaningless.
        let cores = processors();
        for p in [2usize, 4] {
            if p > cores {
                eprintln!("skipping measured claims at p={p}: host has {cores} core(s)");
                continue;
            }
            for k in 10..=16u32 {
                let n = 1usize << k;
                let plan = balanced_plan(n, p);
                let exec = ParallelExecutor::with_auto_barrier(p);
                let profiles = best_profiles(&exec, &plan, 5);
                let best_imbalance = profiles
                    .iter()
                    .map(|pr| pr.max_stage_imbalance())
                    .fold(f64::INFINITY, f64::min);
                let best_share = profiles
                    .iter()
                    .map(|pr| pr.barrier_share())
                    .fold(f64::INFINITY, f64::min);
                assert!(
                    best_imbalance <= 1.25,
                    "n=2^{k} p={p}: measured per-stage imbalance {best_imbalance:.3} > 1.25"
                );
                assert!(
                    best_share <= 0.15,
                    "n=2^{k} p={p}: barrier-wait share {:.1}% > 15%",
                    100.0 * best_share
                );
            }
        }
    }

    #[test]
    fn measured_element_counts_are_balanced_and_deterministic() {
        // The element counters come from the static schedule, not the
        // clock, so this half of the claim holds on any host — including
        // a single-core one.
        for p in [2usize, 4] {
            let n = 4096;
            let plan = balanced_plan(n, p);
            let exec = ParallelExecutor::with_auto_barrier(p);
            let x = ramp(n);
            let (_, profile) = exec.try_execute_traced(&plan, &x).unwrap();
            for s in &profile.stages {
                assert!(
                    s.element_imbalance() <= 1.25,
                    "n={n} p={p} stage {} ({}): element imbalance {:.3}",
                    s.index,
                    s.label,
                    s.element_imbalance()
                );
            }
            // Every stage writes the full vector exactly once per run.
            for s in &profile.stages {
                assert_eq!(s.elements(), n as u64, "stage {} ({})", s.index, s.label);
            }
        }
    }

    #[test]
    fn negative_control_imbalanced_plan_fails_the_balance_bound() {
        // A deliberately imbalanced plan — a sequential (Seq-step) plan
        // on a 2-thread executor puts all compute on thread 0 — must be
        // FLAGGED by the same metric the positive test passes. This is
        // deterministic (thread 1 computes nothing at all), so it holds
        // even on a single-core host.
        let n = 4096;
        let f = sequential_dft(n, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let exec = ParallelExecutor::with_auto_barrier(2);
        let x = ramp(n);
        let (out, profile) = exec.try_execute_traced(&plan, &x).unwrap();
        // The run itself is still correct…
        spiral_fft::spl::cplx::assert_slices_close(
            &out,
            &spiral_fft::spl::builder::dft(n).eval(&x),
            1e-7,
        );
        // …but the profile exposes the imbalance: only thread 0 works.
        assert!(
            profile.max_stage_imbalance() > 1.25,
            "imbalanced plan not flagged: {:.3}",
            profile.max_stage_imbalance()
        );
        // Measured time on thread 1 is the timing wrapper itself — a few
        // ns against thread 0's whole transform.
        let per = profile.per_thread_compute_ns();
        assert!(per[0] > 100 * per[1], "per-thread compute {per:?}");
        // The element counters are exact: thread 1 wrote nothing.
        for s in &profile.stages {
            assert_eq!(s.element_imbalance(), 2.0, "stage {}", s.index);
            assert_eq!(s.threads[1].elements, 0);
            assert_eq!(s.threads[1].jobs, 0);
        }
    }
}

#[test]
fn claim_existence_condition_pmu_squared() {
    // §3.2: "(14) exists for all DFT_N with (pµ)² | N".
    for p in [2usize, 4] {
        for mu in [2usize, 4] {
            let pmu2 = (p * mu) * (p * mu);
            // Exists exactly when (pµ)² | N, over a range of N.
            for n in (1..=16).map(|k| 1usize << k) {
                let exists = multicore_dft(n, p, mu, None).is_ok();
                assert_eq!(
                    exists,
                    n % pmu2 == 0,
                    "n={n} p={p} µ={mu}: existence mismatch"
                );
            }
        }
    }
}
