//! End-to-end integration: formula generation → rewriting → verification
//! → compilation → (threaded) execution, checked against the defining
//! DFT at every stage.

use spiral_fft::codegen::plan::Plan;
use spiral_fft::codegen::ParallelExecutor;
use spiral_fft::rewrite::{
    check_fully_optimized, multicore_dft, multicore_dft_expanded, sequential_dft,
};
use spiral_fft::smp::barrier::BarrierKind;
use spiral_fft::spl::builder::dft;
use spiral_fft::spl::cplx::{assert_slices_close, Cplx};
use spiral_fft::SpiralFft;

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|k| Cplx::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
        .collect()
}

#[test]
fn full_pipeline_for_all_valid_configs() {
    // Every (n, p, µ) with (pµ)² | n in a broad sweep.
    for p in [2usize, 4] {
        for mu in [1usize, 2, 4] {
            let pmu2 = (p * mu) * (p * mu);
            for logn in 6..=12 {
                let n = 1usize << logn;
                if !n.is_multiple_of(pmu2) {
                    continue;
                }
                // 1. derive
                let derived = multicore_dft(n, p, mu, None)
                    .unwrap_or_else(|e| panic!("derive n={n} p={p} µ={mu}: {e}"));
                // 2. verify Definition 1
                check_fully_optimized(&derived.formula, p, mu)
                    .unwrap_or_else(|v| panic!("n={n} p={p} µ={mu}: {v}"));
                // 3. expand + compile
                let expanded = multicore_dft_expanded(n, p, mu, None, 8).unwrap();
                let plan = Plan::from_formula(&expanded, p, mu).unwrap();
                // 4. execute (sequential reference path)
                let x = ramp(n);
                let got = plan.execute(&x);
                assert_slices_close(&got, &dft(n).eval(&x), 1e-8 * n as f64);
            }
        }
    }
}

#[test]
fn threaded_execution_agrees_with_reference_for_both_barriers() {
    let n = 1024;
    let p = 2;
    let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, p, 4).unwrap();
    let x = ramp(n);
    let want = plan.execute(&x);
    for kind in [BarrierKind::Park, BarrierKind::Spin] {
        let exec = ParallelExecutor::new(p, kind);
        for _ in 0..3 {
            assert_slices_close(&exec.execute(&plan, &x), &want, 1e-12);
        }
    }
}

#[test]
fn front_door_matches_low_level_pipeline() {
    let n = 256;
    let fft = SpiralFft::parallel(n, 2, 4).unwrap();
    let x = ramp(n);
    let hi = fft.forward(&x);
    let lo = {
        let f = multicore_dft_expanded(n, 2, 4, None, 8).unwrap();
        Plan::from_formula(&f, 2, 4).unwrap().execute(&x)
    };
    assert_slices_close(&hi, &dft(n).eval(&x), 1e-7);
    assert_slices_close(&lo, &dft(n).eval(&x), 1e-7);
}

#[test]
fn sequential_generation_covers_mixed_radix() {
    for n in [8usize, 12, 24, 36, 60, 128, 120, 480] {
        let f = sequential_dft(n, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let x = ramp(n);
        assert_slices_close(&plan.execute(&x), &dft(n).eval(&x), 1e-7 * n as f64);
    }
}

#[test]
fn linearity_and_parseval_of_generated_transforms() {
    let n = 512;
    let fft = SpiralFft::sequential(n);
    let x = ramp(n);
    let y = fft.forward(&x);
    // Parseval: ||y||² = n ||x||².
    let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
    let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
    assert!(
        (ey - n as f64 * ex).abs() < 1e-6 * ey.max(1.0),
        "{ey} vs {}",
        n as f64 * ex
    );
    // Impulse response is flat.
    let mut imp = vec![Cplx::ZERO; n];
    imp[0] = Cplx::ONE;
    let yi = fft.forward(&imp);
    for (k, z) in yi.iter().enumerate() {
        assert!(z.approx_eq(Cplx::ONE, 1e-9), "bin {k}: {z:?}");
    }
}

#[test]
fn emitted_c_structure_for_tuned_plans() {
    let fft = SpiralFft::parallel(256, 2, 4).unwrap();
    let omp = fft.emit_c(spiral_fft::codegen::CFlavor::OpenMp);
    assert!(omp.contains("#pragma omp parallel for"));
    assert!(omp.contains("void spiral_dft_256"));
    let pth = fft.emit_c(spiral_fft::codegen::CFlavor::Pthreads);
    assert!(pth.contains("pthread_barrier_wait"));
}

#[test]
fn generated_formulas_roundtrip_through_parser() {
    let derived = multicore_dft(256, 2, 4, None).unwrap();
    let text = derived.formula.to_string();
    let reparsed = spiral_fft::spl::parse(&text)
        .unwrap_or_else(|e| panic!("cannot reparse generated formula: {e}\n{text}"));
    let x = ramp(256);
    assert_slices_close(&reparsed.eval(&x), &derived.formula.eval(&x), 1e-9);
}
