//! # spiral-fft — FFT program generation for shared memory (SMP & multicore)
//!
//! A from-scratch Rust reproduction of Franchetti, Voronenko, Püschel,
//! *"FFT Program Generation for Shared Memory: SMP and Multicore"*
//! (Supercomputing 2006): a Spiral-style program generator whose
//! rewriting system derives DFT algorithms that are provably
//! load-balanced and free of false sharing for `p` processors with
//! cache-line length `µ`, plus the compiler, threaded runtime, machine
//! simulator, baselines, and autotuner around it.
//!
//! ## Crates (re-exported as modules)
//!
//! | module | contents |
//! |---|---|
//! | [`spl`] | the SPL formula language: AST, semantics, permutations, parser |
//! | [`rewrite`] | Table 1 rules, rule trees, the multicore Cooley–Tukey derivation (14), Definition 1 checker |
//! | [`codegen`] | formula → plan compilation, loop merging, codelets, threaded execution, C emission |
//! | [`smp`] | aligned buffers, barriers, thread pool |
//! | [`sim`] | shared-memory machine simulator with false-sharing accounting |
//! | [`search`] | DP / random / evolutionary autotuning |
//! | [`baselines`] | naive, recursive, iterative, Stockham, six-step, FFTW-like |
//!
//! ## Quick start
//!
//! ```
//! use spiral_fft::SpiralFft;
//! use spiral_fft::spl::Cplx;
//!
//! // Generate (and autotune) a parallel DFT_256 for 2 processors, µ = 4.
//! let fft = SpiralFft::parallel(256, 2, 4).expect("256 is (pµ)²-compatible");
//! let x: Vec<Cplx> = (0..256).map(|k| Cplx::real(k as f64)).collect();
//! let y = fft.forward(&x);
//! assert_eq!(y.len(), 256);
//! ```

#![warn(missing_docs)]

pub mod bluestein;

pub use spiral_baselines as baselines;
pub use spiral_codegen as codegen;
pub use spiral_dist as dist;
pub use spiral_rewrite as rewrite;
pub use spiral_search as search;
pub use spiral_serve as serve;
pub use spiral_sim as sim;
pub use spiral_smp as smp;
pub use spiral_spl as spl;

use spiral_codegen::plan::Plan;
use spiral_codegen::ParallelExecutor;
use spiral_search::{CostModel, Tuner};
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;

/// A generated, tuned DFT implementation — the library's front door.
pub struct SpiralFft {
    formula: Spl,
    backend: Backend,
}

/// How a transform executes.
enum Backend {
    /// A compiled plan (optionally on the thread pool).
    Plan {
        plan: Plan,
        executor: Option<ParallelExecutor>,
    },
    /// Bluestein chirp-z fallback for sizes with prime factors larger
    /// than the codelet bound (runs a tuned power-of-two plan inside).
    Bluestein(bluestein::Bluestein),
}

/// Errors from the high-level constructors and fallible execution paths.
#[derive(Debug)]
pub enum Error {
    /// No parallel factorization exists: the paper's multicore
    /// Cooley–Tukey (14) requires `(pµ)² | n`.
    NoParallelSplit {
        /// Requested transform size.
        n: usize,
        /// Requested processor count.
        p: usize,
        /// Requested cache-line length.
        mu: usize,
    },
    /// The execution layer reported a fault (tuning measurement failure,
    /// worker panic, watchdog expiry, corrupted output, …).
    Fault(spiral_smp::SpiralError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoParallelSplit { n, p, mu } => write!(
                f,
                "DFT_{n} has no p={p}, µ={mu} multicore factorization (need (pµ)² | n)"
            ),
            Error::Fault(e) => write!(f, "execution layer fault: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<spiral_smp::SpiralError> for Error {
    fn from(e: spiral_smp::SpiralError) -> Error {
        Error::Fault(e)
    }
}

impl SpiralFft {
    /// Generate and tune a sequential `DFT_n`. Sizes whose prime factors
    /// all fit the codelet bound compile to a direct plan; other sizes
    /// (large primes) fall back to Bluestein's algorithm over a tuned
    /// power-of-two plan.
    pub fn sequential(n: usize) -> SpiralFft {
        let smooth = spiral_spl::num::factorize(n)
            .iter()
            .all(|&(prime, _)| prime <= spiral_codegen::lower::MAX_CODELET);
        if !smooth {
            return SpiralFft {
                formula: Spl::Dft(n),
                backend: Backend::Bluestein(bluestein::Bluestein::new(n)),
            };
        }
        let mu = spiral_smp::topology::mu();
        let tuned = Tuner::new(1, mu, CostModel::Analytic)
            .tune_sequential(n)
            .unwrap_or_else(|e| panic!("sequential tuning of DFT_{n} failed: {e}"));
        SpiralFft {
            formula: tuned.formula,
            backend: Backend::Plan {
                plan: tuned.plan,
                executor: None,
            },
        }
    }

    /// Generate and tune a `p`-thread `DFT_n` for cache-line length `µ`
    /// (in complex elements; pass `spiral_smp::topology::mu()` for this
    /// host). The result is fully optimized in the paper's Definition 1
    /// sense: load-balanced and free of false sharing.
    pub fn parallel(n: usize, p: usize, mu: usize) -> Result<SpiralFft, Error> {
        let tuned = Tuner::new(p, mu, CostModel::Analytic)
            .tune_parallel(n)?
            .ok_or(Error::NoParallelSplit { n, p, mu })?;
        let executor = if tuned.plan.threads > 1 {
            Some(ParallelExecutor::with_auto_barrier(tuned.plan.threads))
        } else {
            None
        };
        Ok(SpiralFft {
            formula: tuned.formula,
            backend: Backend::Plan {
                plan: tuned.plan,
                executor,
            },
        })
    }

    /// Generate a `p`-thread 2-D DFT on a `rows × cols` row-major array
    /// (paper §2.2: multidimensional transforms are tensor products; the
    /// Table 1 rules parallelize the row-column factorization directly).
    /// Requires `p | rows` and `pµ | cols`.
    pub fn parallel_2d(rows: usize, cols: usize, p: usize, mu: usize) -> Result<SpiralFft, Error> {
        let formula =
            spiral_rewrite::multicore_dft2d_expanded(rows, cols, p, mu, 8).map_err(|_| {
                Error::NoParallelSplit {
                    n: rows * cols,
                    p,
                    mu,
                }
            })?;
        let plan = Plan::from_formula(&formula, p, mu)
            .map_err(|e| spiral_smp::SpiralError::Lower(format!("2-D expansion: {e}")))?;
        let executor = if plan.threads > 1 {
            Some(ParallelExecutor::with_auto_barrier(plan.threads))
        } else {
            None
        };
        Ok(SpiralFft {
            formula,
            backend: Backend::Plan { plan, executor },
        })
    }

    /// Generate a `p`-thread Walsh–Hadamard transform `WHT_{2^k}` — the
    /// rewriting rules are transform-generic (paper §2.2: SPL expresses
    /// a large class of linear transforms).
    pub fn parallel_wht(k: u32, p: usize, mu: usize) -> Result<SpiralFft, Error> {
        let derived =
            spiral_rewrite::multicore_wht(k, p, mu).map_err(|_| Error::NoParallelSplit {
                n: 1usize << k,
                p,
                mu,
            })?;
        let plan = Plan::from_formula(&derived.formula, p, mu)
            .map_err(|e| spiral_smp::SpiralError::Lower(format!("WHT formula: {e}")))?
            .fuse_exchanges();
        let executor = if plan.threads > 1 {
            Some(ParallelExecutor::with_auto_barrier(plan.threads))
        } else {
            None
        };
        Ok(SpiralFft {
            formula: derived.formula,
            backend: Backend::Plan { plan, executor },
        })
    }

    /// Sequential 2-D DFT on a `rows × cols` row-major array.
    pub fn sequential_2d(rows: usize, cols: usize) -> SpiralFft {
        let f2d = spiral_rewrite::dft2d(rows, cols);
        let formula =
            spiral_rewrite::expand_dfts(&f2d, &|k| spiral_rewrite::RuleTree::balanced(k, 8))
                .normalized();
        let plan = Plan::from_formula(&formula, 1, spiral_smp::topology::mu())
            .expect("2-D expansion always lowers");
        SpiralFft {
            formula,
            backend: Backend::Plan {
                plan,
                executor: None,
            },
        }
    }

    /// The SPL formula this implementation executes.
    pub fn formula(&self) -> &Spl {
        &self.formula
    }

    /// The executing compiled plan. For Bluestein-backed sizes this is
    /// the *inner* power-of-two plan (of size ≥ 2n-1).
    pub fn plan(&self) -> &Plan {
        match &self.backend {
            Backend::Plan { plan, .. } => plan,
            Backend::Bluestein(b) => b.inner_plan(),
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.formula.dim()
    }

    /// True for a zero-size transform (never produced by the
    /// constructors; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compute the forward DFT of `x` (length must equal [`len`](Self::len)).
    /// Panics on execution failure; see [`try_forward`](Self::try_forward)
    /// and [`forward_resilient`](Self::forward_resilient) for fallible
    /// and self-healing variants.
    pub fn forward(&self, x: &[Cplx]) -> Vec<Cplx> {
        match &self.backend {
            Backend::Plan {
                plan,
                executor: Some(e),
            } => e.execute(plan, x),
            Backend::Plan {
                plan,
                executor: None,
            } => plan.execute(x),
            Backend::Bluestein(b) => b.run(x),
        }
    }

    /// Compute the forward DFT of `x`, propagating execution-layer
    /// faults (worker panics, watchdog expiries, non-finite output) as
    /// [`Error::Fault`] instead of panicking.
    pub fn try_forward(&self, x: &[Cplx]) -> Result<Vec<Cplx>, Error> {
        match &self.backend {
            Backend::Plan {
                plan,
                executor: Some(e),
            } => Ok(e.try_execute(plan, x)?),
            Backend::Plan {
                plan,
                executor: None,
            } => Ok(plan.execute(x)),
            Backend::Bluestein(b) => Ok(b.run(x)),
        }
    }

    /// Compute the forward DFT of `x` with graceful degradation: when
    /// the parallel executor is unhealthy or hits a runtime fault, fall
    /// back to the verified sequential interpreter. Returns the output
    /// plus the fault that forced the fallback, if any.
    pub fn forward_resilient(
        &self,
        x: &[Cplx],
    ) -> Result<(Vec<Cplx>, Option<spiral_smp::SpiralError>), Error> {
        match &self.backend {
            Backend::Plan {
                plan,
                executor: Some(e),
            } => {
                let outcome = e.execute_resilient(plan, x)?;
                Ok((outcome.output, outcome.degraded))
            }
            Backend::Plan {
                plan,
                executor: None,
            } => Ok((plan.execute(x), None)),
            Backend::Bluestein(b) => Ok((b.run(x), None)),
        }
    }

    /// Compute the inverse DFT of `y`, including the `1/n` scaling, via
    /// the conjugation identity `DFT⁻¹(y) = conj(DFT(conj(y))) / n` —
    /// the same generated program runs both directions.
    pub fn inverse(&self, y: &[Cplx]) -> Vec<Cplx> {
        let n = self.len() as f64;
        let conj_in: Vec<Cplx> = y.iter().map(|z| z.conj()).collect();
        self.forward(&conj_in)
            .into_iter()
            .map(|z| z.conj() * (1.0 / n))
            .collect()
    }

    /// Emit the C code (OpenMP or pthreads flavor) for the executing plan.
    pub fn emit_c(&self, flavor: spiral_codegen::CFlavor) -> String {
        spiral_codegen::emit_c(self.plan(), flavor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n).map(|k| Cplx::new(k as f64, 1.0)).collect()
    }

    #[test]
    fn sequential_front_door() {
        let fft = SpiralFft::sequential(128);
        assert_eq!(fft.len(), 128);
        let x = ramp(128);
        assert_slices_close(&fft.forward(&x), &dft(128).eval(&x), 1e-6);
    }

    #[test]
    fn parallel_front_door() {
        let fft = SpiralFft::parallel(256, 2, 4).unwrap();
        let x = ramp(256);
        assert_slices_close(&fft.forward(&x), &dft(256).eval(&x), 1e-6);
        spiral_rewrite::check_fully_optimized(fft.formula(), 2, 4).unwrap();
    }

    #[test]
    fn parallel_rejects_impossible_sizes() {
        assert!(matches!(
            SpiralFft::parallel(32, 2, 4),
            Err(Error::NoParallelSplit { .. })
        ));
    }

    #[test]
    fn inverse_roundtrips() {
        for fft in [
            SpiralFft::sequential(64),
            SpiralFft::parallel(256, 2, 4).unwrap(),
        ] {
            let n = fft.len();
            let x = ramp(n);
            let back = fft.inverse(&fft.forward(&x));
            assert_slices_close(&back, &x, 1e-9 * n as f64);
        }
    }

    #[test]
    fn two_dimensional_transforms() {
        let (r, c) = (8usize, 16usize);
        let seq = SpiralFft::sequential_2d(r, c);
        let par = SpiralFft::parallel_2d(r, c, 2, 4).unwrap();
        let x = ramp(r * c);
        let ys = seq.forward(&x);
        let yp = par.forward(&x);
        assert_slices_close(&ys, &yp, 1e-8);
        // DC bin equals the sum of all samples.
        let sum = x.iter().fold(Cplx::ZERO, |a, b| a + *b);
        assert!(ys[0].approx_eq(sum, 1e-9));
        // Round trip through the inverse.
        assert_slices_close(&par.inverse(&yp), &x, 1e-9);
        spiral_rewrite::check_fully_optimized(par.formula(), 2, 4).unwrap();
    }

    #[test]
    fn large_prime_sizes_use_bluestein() {
        let fft = SpiralFft::sequential(97);
        assert_eq!(fft.len(), 97);
        let x = ramp(97);
        assert_slices_close(&fft.forward(&x), &dft(97).eval(&x), 1e-6);
        assert_slices_close(&fft.inverse(&fft.forward(&x)), &x, 1e-9);
        // The inner plan is a tuned power of two.
        assert!(fft.plan().n.is_power_of_two());
    }

    #[test]
    fn walsh_hadamard_front_door() {
        let fft = SpiralFft::parallel_wht(8, 2, 4).unwrap();
        let x = ramp(256);
        let y = fft.forward(&x);
        let want = spiral_rewrite::reference_wht(&x);
        assert_slices_close(&y, &want, 1e-9);
        // inverse() works for the WHT too (real symmetric matrix).
        assert_slices_close(&fft.inverse(&y), &x, 1e-9);
        spiral_rewrite::check_fully_optimized(fft.formula(), 2, 4).unwrap();
    }

    #[test]
    fn fallible_and_resilient_forward() {
        let fft = SpiralFft::parallel(256, 2, 4).unwrap();
        let x = ramp(256);
        let want = dft(256).eval(&x);
        assert_slices_close(&fft.try_forward(&x).unwrap(), &want, 1e-6);
        let (y, degraded) = fft.forward_resilient(&x).unwrap();
        assert!(degraded.is_none());
        assert_slices_close(&y, &want, 1e-6);
        // Misuse surfaces as a structured error, not a panic.
        assert!(matches!(fft.try_forward(&x[..100]), Err(Error::Fault(_))));
    }

    #[test]
    fn c_emission_from_front_door() {
        let fft = SpiralFft::parallel(256, 2, 4).unwrap();
        let c = fft.emit_c(spiral_codegen::CFlavor::OpenMp);
        assert!(c.contains("spiral_dft_256"));
    }
}
