//! Bluestein's chirp-z algorithm: `DFT_n` for arbitrary `n` (including
//! large primes) via a circular convolution of size `m = 2^k ≥ 2n-1`,
//! computed with the generator's own power-of-two plans.
//!
//! This extends the generated library beyond the paper's power-of-two
//! evaluation sizes — the inner transforms are still Spiral-tuned plans,
//! so all the paper's machinery (rule trees, loop merging, codelets) is
//! exercised underneath.

use spiral_codegen::plan::Plan;
use spiral_search::{CostModel, Tuner};
use spiral_spl::cplx::Cplx;
use std::f64::consts::PI;

/// A Bluestein transform of size `n`.
pub struct Bluestein {
    n: usize,
    m: usize,
    /// Chirp `w_k = e^{-iπ k²/n}` for `k < n`.
    chirp: Vec<Cplx>,
    /// Forward FFT of the padded conjugate-chirp kernel.
    kernel_hat: Vec<Cplx>,
    /// Tuned power-of-two plan of size `m` (used forward and, via the
    /// conjugation identity, inverse).
    inner: Plan,
}

impl Bluestein {
    /// Build the transform: tunes an inner `DFT_m` plan and precomputes
    /// the chirp and the kernel spectrum.
    pub fn new(n: usize) -> Bluestein {
        assert!(n >= 1);
        let m = (2 * n - 1).next_power_of_two();
        let tuner = Tuner::new(1, spiral_smp::topology::mu(), CostModel::Analytic);
        let inner = tuner
            .tune_sequential(m)
            .unwrap_or_else(|e| panic!("inner DFT_{m} tuning failed: {e}"))
            .plan;
        // w_k = e^{-iπ k²/n}; the exponent is periodic with 2n, so reduce
        // k² mod 2n to keep the angle accurate for large k.
        let chirp: Vec<Cplx> = (0..n)
            .map(|k| {
                let e = ((k as u128 * k as u128) % (2 * n) as u128) as f64;
                Cplx::cis(-PI * e / n as f64)
            })
            .collect();
        // Kernel b: b_0 = w̄_0, b_j = b_{m-j} = w̄_j (wrap-around), 0 else.
        let mut b = vec![Cplx::ZERO; m];
        b[0] = chirp[0].conj();
        for j in 1..n {
            let c = chirp[j].conj();
            b[j] = c;
            b[m - j] = c;
        }
        let kernel_hat = inner.execute(&b);
        Bluestein {
            n,
            m,
            chirp,
            kernel_hat,
            inner,
        }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-0 case (not constructible).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Size of the inner power-of-two convolution.
    pub fn inner_size(&self) -> usize {
        self.m
    }

    /// The tuned inner plan (size `m`).
    pub fn inner_plan(&self) -> &Plan {
        &self.inner
    }

    /// Forward DFT of `x` (length `n`).
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), self.n, "input length mismatch");
        // a = chirp ⊙ x, zero-padded to m.
        let mut a = vec![Cplx::ZERO; self.m];
        for (k, (&xk, &wk)) in x.iter().zip(&self.chirp).enumerate() {
            a[k] = xk * wk;
        }
        let a_hat = self.inner.execute(&a);
        // Pointwise multiply with the kernel spectrum.
        let prod: Vec<Cplx> = a_hat
            .iter()
            .zip(&self.kernel_hat)
            .map(|(p, q)| *p * *q)
            .collect();
        // Inverse DFT_m via the conjugation identity on the same plan.
        let conj_in: Vec<Cplx> = prod.iter().map(|z| z.conj()).collect();
        let inv = self.inner.execute(&conj_in);
        let scale = 1.0 / self.m as f64;
        // y_k = w_k · conv_k
        (0..self.n)
            .map(|k| inv[k].conj() * scale * self.chirp[k])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new((k as f64 * 0.71).sin(), (k as f64 * 0.31).cos()))
            .collect()
    }

    #[test]
    fn primes_match_definition() {
        for n in [3usize, 5, 7, 11, 13, 97, 101, 127, 251] {
            let b = Bluestein::new(n);
            assert!(b.inner_size().is_power_of_two());
            assert!(b.inner_size() >= 2 * n - 1);
            let x = ramp(n);
            let got = b.run(&x);
            let want = dft(n).eval(&x);
            assert_slices_close(&got, &want, 1e-7 * n as f64);
        }
    }

    #[test]
    fn composite_and_power_of_two_sizes_also_work() {
        for n in [1usize, 2, 6, 16, 194, 300] {
            let b = Bluestein::new(n);
            let x = ramp(n);
            assert_slices_close(&b.run(&x), &dft(n).eval(&x), 1e-7 * n.max(4) as f64);
        }
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn checks_input_length() {
        Bluestein::new(7).run(&ramp(8));
    }
}
