//! Minimal offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the small slice of serde's API it actually uses: a JSON-like
//! [`Value`] data model, [`Serialize`]/[`Deserialize`] traits mapping
//! types to and from `Value`, and (behind the `derive` feature) derive
//! macros for plain structs with named fields and fieldless enums.
//!
//! Numbers are carried as `f64`, which is exact for every integer the
//! workspace serializes (counters and sizes well below 2^53).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object as an ordered field list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number contained in this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert `self` to the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                // Round-tripping through f64 is the shim's data model
                // (mirroring JSON); lossy casts are inherent to it.
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error(format!("expected array, got {v:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v = vec![1usize, 2, 3];
        assert_eq!(Vec::<usize>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Obj(vec![("a".into(), Value::Num(1.0))]);
        assert_eq!(v.get("a").and_then(Value::as_f64), Some(1.0));
        assert!(v.get("b").is_none());
    }
}
