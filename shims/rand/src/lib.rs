//! Offline stand-in for the `rand` 0.8 API surface this workspace uses:
//! `rngs::StdRng` seeded via [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods `gen_range`/`gen_bool`, and
//! [`seq::SliceRandom::choose`].
//!
//! The generator is SplitMix64 — statistically solid for search
//! heuristics and property tests, deterministic per seed (which is all
//! the workspace relies on; it never persists generator state).

// Uniform sampling is wrap-around modular arithmetic by construction:
// the truncating/sign-dropping casts in the range impls are the
// algorithm, not an accident.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap
)]

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`Range` or `RangeInclusive` over
    /// integers or floats). Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        next_f64(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 top bits → uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
fn next_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - u64::MAX % bound;
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % bound;
        }
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // i128 holds the full span of every <=64-bit integer type,
                // signed or not.
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(next_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width 64-bit range
                }
                lo.wrapping_add(next_below(rng, width as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (next_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (next_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{next_below, RngCore};

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[next_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
