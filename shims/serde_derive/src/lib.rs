//! Derive macros for the offline `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes: structs with
//! named fields and enums whose variants carry no data. The input is
//! parsed directly from the `proc_macro` token stream (no `syn`/`quote`
//! — those are unavailable offline); generated impls target the
//! `Value`-based traits in the sibling `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Derive `serde::Serialize` (shim: `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (shim: `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| ::serde::Error(\
                                 format!(\"field {f}: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => ::std::result::Result::Err(::serde::Error(\
                                     format!(\"unknown {name} variant {{}}\", other))),\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::Error(\
                                 String::from(\"expected string for enum {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl must parse")
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut tokens = input.into_iter().peekable();
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("derive input ended before `struct`/`enum`"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde shim derive does not support generic types")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("serde shim derive does not support tuple/unit structs")
            }
            Some(_) => {}
            None => panic!("derive input for `{name}` has no braced body"),
        }
    };
    if kind == "struct" {
        Shape::Struct {
            name,
            fields: split_items(body.stream(), parse_field),
        }
    } else {
        Shape::Enum {
            name,
            variants: split_items(body.stream(), parse_variant),
        }
    }
}

/// Split a braced body at depth-0 commas (tracking `<...>` nesting, which
/// is made of plain puncts, unlike bracketed groups) and parse each chunk.
fn split_items(body: TokenStream, parse: fn(&[TokenTree]) -> Option<String>) -> Vec<String> {
    let mut items = Vec::new();
    let mut chunk: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0usize;
    for tok in body {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                items.extend(parse(&chunk));
                chunk.clear();
                continue;
            }
            _ => {}
        }
        chunk.push(tok);
    }
    items.extend(parse(&chunk));
    items
}

/// Name of a named struct field: skip attributes and visibility, then the
/// first ident before `:` is the field name.
fn parse_field(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some(id.to_string()),
            other => panic!("unsupported token in struct field: {other:?}"),
        }
    }
    None // trailing comma leaves an empty chunk
}

/// Name of a fieldless enum variant; data-carrying variants are rejected.
fn parse_variant(chunk: &[TokenTree]) -> Option<String> {
    let mut name = None;
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr
            TokenTree::Ident(id) if name.is_none() => {
                name = Some(id.to_string());
                i += 1;
            }
            TokenTree::Group(_) => {
                panic!("serde shim derive does not support enum variants with data")
            }
            other => panic!("unsupported token in enum variant: {other:?}"),
        }
    }
    name
}
