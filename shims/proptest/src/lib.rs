//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace uses —
//! ranges, tuples, `prop_map`, `prop_recursive`, `boxed`,
//! `collection::vec`, `sample::select`, `any`, `proptest!`,
//! `prop_assert!`/`prop_assert_eq!` — over a deterministic per-test RNG
//! (seeded from the test name), so property tests are reproducible
//! case-for-case across runs. No shrinking: a failing case reports its
//! case number and message and panics immediately.

// Uniform sampling is wrap-around modular arithmetic by construction:
// the truncating/sign-dropping casts in the range strategies are the
// algorithm, not an accident.
#![allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap
)]

pub mod test_runner {
    /// Deterministic SplitMix64 stream, seeded per test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a) so each test gets an
        /// independent but stable stream.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sampling range");
            let zone = u64::MAX - u64::MAX % bound;
            loop {
                let x = self.next_u64();
                if x < zone {
                    return x % bound;
                }
            }
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Test-loop configuration (`cases` = iterations per property).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` iterations.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Build recursive structures: `recurse` wraps an inner strategy
        /// into one layer of structure; sampled depth is `0..=depth`
        /// layers over `self`. The size-hint arguments of real proptest
        /// are accepted and ignored (no shrinking here).
        fn prop_recursive<F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value> + 'static,
        {
            Recursive {
                base: self.boxed(),
                depth,
                recurse: Rc::new(recurse),
            }
        }

        /// Type-erase into a clonable [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.sample(rng)))
        }
    }

    /// Clonable type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Result of [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        depth: u32,
        recurse: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let layers = rng.below(self.depth as u64 + 1) as u32;
            let mut strat = self.base.clone();
            for _ in 0..layers {
                strat = (self.recurse)(strat);
            }
            strat.sample(rng)
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // i128 holds the full span of every <=64-bit integer
                    // type, signed or not.
                    let width = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    if width > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(width as u64) as $t)
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range!(f32, f64);

    macro_rules! impl_tuple {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Bounded domain: property tests here want "some number",
            // not bit-pattern adversaries like NaN.
            (rng.unit_f64() - 0.5) * 2.0e6
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `elem`, length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed alternatives.
    pub struct Select<T>(Vec<T>);

    /// Uniform choice from `items` (must be non-empty).
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs at least one item");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// The glob-import surface: strategies, config, `any`, macros, and
/// `prop` as an alias of this crate (for `prop::collection::vec` paths).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define deterministic property tests:
/// `proptest! { #![proptest_config(cfg)] fn name(x in strat, ...) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property {} failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, msg);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// `assert!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the property-test harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} != {:?})", ::std::format!($($fmt)+), l, r,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_and_tuples(
            n in 2u32..=8,
            x in -10.0f64..10.0,
            pair in (0usize..100, any::<bool>()),
        ) {
            prop_assert!((2..=8).contains(&n));
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!(pair.0 < 100);
        }

        fn vec_lengths(v in prop::collection::vec(0u64..512, 1..200)) {
            prop_assert!(!v.is_empty() && v.len() < 200);
            prop_assert!(v.iter().all(|&x| x < 512));
        }

        fn select_and_map(
            n in prop::sample::select(vec![8usize, 16, 32]).prop_map(|k| k * 2),
        ) {
            prop_assert!(n == 16 || n == 32 || n == 64, "unexpected {n}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::test_runner::TestRng;
        let depth_strategy = prop::sample::select(vec![1usize])
            .prop_recursive(3, 12, 3, |inner| {
                prop::collection::vec(inner, 1..4)
                    .prop_map(|parts| parts.iter().sum::<usize>() + 1)
                    .boxed()
            })
            .boxed();
        let mut rng = TestRng::from_name("recursive_strategies_terminate");
        let mut max_seen = 0usize;
        for _ in 0..200 {
            max_seen = max_seen.max(depth_strategy.sample(&mut rng));
        }
        assert!(max_seen > 1, "recursion never took a deep branch");
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..50 {
            assert_eq!((0usize..1000).sample(&mut a), (0usize..1000).sample(&mut b));
        }
    }
}
