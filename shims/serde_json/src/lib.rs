//! Offline stand-in for `serde_json`: prints and parses JSON through the
//! `serde` shim's [`Value`] data model. Supports the full JSON grammar
//! this workspace emits (objects, arrays, strings with escapes, numbers,
//! booleans, null); numbers round-trip exactly for integers below 2^53.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encoding/decoding failure.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(x: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&x.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(x: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&x.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn print_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if !x.is_finite() {
                return Err(Error(format!("non-finite number {x} is not JSON")));
            }
            if x.fract() == 0.0 && x.abs() < 9.0e15 {
                // Integral and below 2^53, so the cast is exact.
                #[allow(clippy::cast_possible_truncation)]
                out.push_str(&format!("{}", *x as i64));
            } else {
                // Rust's f64 Display is the shortest round-tripping form.
                out.push_str(&format!("{x}"));
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Arr(items) => {
            print_seq(items.iter(), indent, depth, out, |item, ind, d, o| {
                print_value(item, ind, d, o)
            })?;
        }
        Value::Obj(fields) => {
            out.push('{');
            print_elems(fields.iter(), indent, depth, out, |(k, val), ind, d, o| {
                print_string(k, o);
                o.push(':');
                if ind.is_some() {
                    o.push(' ');
                }
                print_value(val, ind, d, o)
            })?;
            out.push('}');
        }
    }
    Ok(())
}

fn print_seq<'a, I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    f: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = &'a Value>,
    F: Fn(&Value, Option<usize>, usize, &mut String) -> Result<(), Error>,
{
    out.push('[');
    print_elems(items, indent, depth, out, f)?;
    out.push(']');
    Ok(())
}

/// Shared body printer for arrays and objects: handles separators and
/// pretty-mode newlines/indentation between the open and close brackets.
fn print_elems<T, I, F>(
    items: I,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    f: F,
) -> Result<(), Error>
where
    I: ExactSizeIterator<Item = T>,
    F: Fn(T, Option<usize>, usize, &mut String) -> Result<(), Error>,
{
    let len = items.len();
    if len == 0 {
        return Ok(());
    }
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        f(item, indent, depth + 1, out)?;
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    Ok(())
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b" \t\r\n".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        c => {
                            return Err(Error(format!("expected `,` or `]`, got `{}`", c as char)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    fields.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        c => {
                            return Err(Error(format!("expected `,` or `}}`, got `{}`", c as char)))
                        }
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            c => Err(Error(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b"+-.eE".contains(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-utf8 number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain (non-quote, non-escape) bytes at once
            // so multi-byte UTF-8 sequences pass through untouched.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("non-utf8 string".into()))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                        }
                        c => return Err(Error(format!("bad escape `\\{}`", c as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("opteron \"L1\"\n".into())),
            ("p".into(), Value::Num(4.0)),
            ("ghz".into(), Value::Num(2.2)),
            (
                "flags".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Arr(vec![])),
        ]);
        for text in [to_string(&VWrap(v.clone())).unwrap(), {
            let pretty = to_string_pretty(&VWrap(v.clone())).unwrap();
            assert!(pretty.contains('\n'));
            pretty
        }] {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            assert_eq!(p.parse_value().unwrap(), v);
        }
    }

    #[test]
    fn parses_numbers() {
        for (s, x) in [
            ("0", 0.0),
            ("-12", -12.0),
            ("3.5e2", 350.0),
            ("1e-3", 0.001),
        ] {
            assert_eq!(from_str::<f64>(s).unwrap(), x);
        }
        assert!(from_str::<f64>("1.2.3").is_err());
        assert!(from_str::<f64>("[1,").is_err());
    }

    struct VWrap(Value);
    impl Serialize for VWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
