//! Offline stand-in for `criterion`.
//!
//! Mirrors the harness API the workspace's benches use — groups,
//! `bench_function`/`bench_with_input`, `iter`/`iter_custom`,
//! `Throughput::Elements`, the `criterion_group!`/`criterion_main!`
//! macros — and reports a simple best-of-samples wall-clock time per
//! benchmark on stdout. No statistics machinery, plots, or baselines;
//! the numbers are honest `Instant` measurements over the configured
//! sample count.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration work declared for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            name: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self }
    }
}

/// The harness: holds sampling configuration, spawns groups.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Samples measured per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark (cap on total sampling time).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id().name;
        run_benchmark(&name, self.sample_size, self.measurement_time, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_benchmark_id().name);
        run_benchmark(
            &name,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Time a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (report separator).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records one sample per call.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` repetitions of `f`, guarding the result from the
    /// optimizer.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Let the closure time itself: it receives the iteration count and
    /// returns the measured duration (used for setup-heavy benchmarks).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibrate: grow the iteration count until one sample takes ≳1% of
    // the budget, so short closures aren't dominated by timer noise.
    let mut iters = 1u64;
    let per_sample = budget.div_f64(sample_size as f64);
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * 100 >= per_sample || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let spent = Instant::now();
    let mut best = Duration::MAX;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let divisor = u32::try_from(iters).expect("calibrated iteration count fits u32");
        best = best.min(b.elapsed.max(Duration::from_nanos(1)) / divisor);
        if spent.elapsed() > budget {
            break;
        }
    }
    match throughput {
        Some(Throughput::Elements(n)) => println!(
            "bench {name:50} {best:>12?}/iter  {:>10.1} Melem/s",
            n as f64 / best.as_secs_f64() / 1e6
        ),
        Some(Throughput::Bytes(n)) => println!(
            "bench {name:50} {best:>12?}/iter  {:>10.1} MiB/s",
            n as f64 / best.as_secs_f64() / (1024.0 * 1024.0)
        ),
        None => println!("bench {name:50} {best:>12?}/iter"),
    }
}

/// Define a benchmark group entry point, with or without custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness-less bench binaries with
            // `--test`; compile-check only in that case, like criterion.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_runs_closures() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("touch", 4), &4usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<usize>()
            });
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(10 * iters));
        });
        group.finish();
        assert!(runs >= 2, "closure never sampled");
    }
}
