//! Watch the rewriting system work: tag a Cooley–Tukey formula with
//! `smp(p, µ)`, apply the Table 1 rules step by step, and verify the
//! result is exactly the paper's formula (14).
//!
//! ```text
//! cargo run --release --example generate_and_inspect
//! ```

use spiral_fft::rewrite::{check_fully_optimized, formula_14, multicore_dft};
use spiral_fft::spl::builder::{cooley_tukey, smp};

fn main() {
    let (n, p, mu) = (64usize, 2usize, 4usize);
    let m = 8; // split 64 = 8 × 8 (pµ = 8 divides both factors)

    println!(
        "input:   smp({p},{mu})[ DFT_{n} → CT rule (1) with {m}×{} ]\n",
        n / m
    );
    let tagged = smp(p, mu, cooley_tukey(m, n / m));
    println!("tagged formula:\n  {}\n", tagged.pretty());

    let derived = multicore_dft(n, p, mu, Some(m)).expect("valid split");
    println!("derivation ({} rule applications):", derived.trace.len());
    for (i, step) in derived.trace.iter().enumerate() {
        println!("  {:>2}. {:<28} {}", i + 1, step.rule, step.after);
    }

    println!("\nfinal formula (multicore Cooley–Tukey, paper eq. 14):");
    println!("  {}\n", derived.formula.pretty());

    // Cross-check against the hand-built (14).
    let hand = formula_14(m, n / m, p, mu).normalized();
    assert_eq!(
        derived.formula.to_string(),
        hand.to_string(),
        "derived formula differs from the paper's (14)!"
    );
    println!("matches hand-built formula (14) exactly ✓");

    check_fully_optimized(&derived.formula, p, mu).expect("Definition 1");
    println!("Definition 1: load-balanced and free of false sharing ✓");

    // Work accounting per processor.
    let per = spiral_fft::rewrite::check::per_processor_flops(&derived.formula, p);
    println!("per-processor flops: {per:?}");
}
