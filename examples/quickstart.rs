//! Quickstart: generate a tuned DFT, run it, verify it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spiral_fft::spl::builder::dft;
use spiral_fft::spl::cplx::max_dist;
use spiral_fft::spl::Cplx;
use spiral_fft::SpiralFft;

fn main() {
    let n = 1024;

    // --- sequential ---------------------------------------------------
    let fft = SpiralFft::sequential(n);
    println!("generated sequential DFT_{n}");
    println!(
        "  plan: {} steps, {} flops",
        fft.plan().steps.len(),
        fft.plan().flops()
    );

    // A test signal: two tones plus a DC offset.
    let x: Vec<Cplx> = (0..n)
        .map(|k| {
            let t = k as f64 / n as f64;
            let s = 0.5
                + (2.0 * std::f64::consts::PI * 3.0 * t).cos()
                + 0.25 * (2.0 * std::f64::consts::PI * 17.0 * t).sin();
            Cplx::real(s)
        })
        .collect();
    let y = fft.forward(&x);

    // Peaks must sit at bins 0, 3, 17 (and mirrors).
    let mut mags: Vec<(usize, f64)> = y.iter().enumerate().map(|(k, z)| (k, z.abs())).collect();
    mags.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "  strongest bins: {:?}",
        &mags[..5].iter().map(|m| m.0).collect::<Vec<_>>()
    );

    // Cross-check against the defining O(n²) DFT.
    let reference = dft(n).eval(&x);
    println!("  max |Δ| vs naive DFT: {:.3e}", max_dist(&y, &reference));

    // --- parallel -----------------------------------------------------
    let p = 2;
    let mu = spiral_fft::smp::topology::mu();
    match SpiralFft::parallel(n, p, mu) {
        Ok(pfft) => {
            println!("\ngenerated parallel DFT_{n} for p = {p}, µ = {mu}");
            println!("  formula: {}", pfft.formula().pretty());
            let yp = pfft.forward(&x);
            println!(
                "  max |Δ| parallel vs sequential: {:.3e}",
                max_dist(&y, &yp)
            );
            // The generated formula is provably fully optimized:
            spiral_fft::rewrite::check_fully_optimized(pfft.formula(), p, mu)
                .expect("Definition 1 violated?!");
            println!("  Definition 1 check: load-balanced, no false sharing ✓");
        }
        Err(e) => println!("\nparallel generation not possible: {e}"),
    }
}
