//! Autotuning demo: dynamic programming vs. random vs. evolutionary
//! search over recursion strategies, costed on a simulated Core Duo.
//!
//! ```text
//! cargo run --release --example autotune
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use spiral_fft::search::{dp_search, evolve_search, random_search, CostModel, EvolveOpts, Tuner};
use spiral_fft::sim::core_duo;

fn main() {
    let n = 4096;
    let machine = core_duo();
    let mu = machine.mu();
    let model = CostModel::Sim {
        machine: machine.clone(),
        warm: true,
    };

    println!("autotuning DFT_{n} on simulated {}\n", machine.name);

    let dp = dp_search(n, 8, mu, &model);
    println!(
        "DP search:        {:>12.0} cycles  (tree {}, {} plans evaluated)",
        dp.cost, dp.tree, dp.evaluated
    );

    let mut rng = StdRng::seed_from_u64(2006);
    let rnd = random_search(n, 8, mu, dp.evaluated, &model, &mut rng);
    println!(
        "random search:    {:>12.0} cycles  (same evaluation budget)",
        rnd.cost
    );

    let mut rng = StdRng::seed_from_u64(2006);
    let evo = evolve_search(n, 8, mu, EvolveOpts::default(), &model, &mut rng);
    println!(
        "evolutionary:     {:>12.0} cycles  ({} plans evaluated)",
        evo.cost, evo.evaluated
    );

    let radix2 = model
        .cost_tree(&spiral_fft::rewrite::RuleTree::right_radix(n, 2), mu)
        .unwrap();
    println!("fixed radix-2:    {radix2:>12.0} cycles  (no search)\n");

    // Full parallel tuning: search the (14) split too.
    let tuner = Tuner::new(
        machine.p,
        mu,
        CostModel::Sim {
            machine: machine.clone(),
            warm: true,
        },
    );
    if let Ok(Some(t)) = tuner.tune_parallel(n) {
        println!("parallel tuning picked: {}", t.choice);
        println!("  simulated cycles: {:.0}", t.cost);
        println!(
            "  plan: {} steps, {} barriers",
            t.plan.steps.len(),
            t.plan.barriers()
        );
    }
}
