//! Simulate the paper's four machines: run the generated parallel FFT
//! and the FFTW-like baseline on each machine model and print the
//! Figure 3 comparison for one size, plus coherence statistics.
//!
//! ```text
//! cargo run --release --example multicore_sim [log2n]
//! ```

use spiral_fft::baselines::{FftwLikeConfig, FftwLikeFft};
use spiral_fft::search::{CostModel, Tuner};
use spiral_fft::sim::{paper_machines, simulate_plan, SmpSim};
use spiral_fft::spl::num::pseudo_mflops;

fn main() {
    let log2n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let n = 1usize << log2n;
    println!("DFT_{n} (2^{log2n}) on the paper's four machines\n");
    println!(
        "{:<42} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "machine", "seq pMF/s", "par pMF/s", "fftw pMF/s", "par FS", "fftw FS"
    );

    for machine in paper_machines() {
        let mu = machine.mu();
        // Spiral sequential.
        let seq = Tuner::new(1, mu, CostModel::Analytic)
            .tune_sequential(n)
            .expect("sequential tuning cannot fault on the analytic model");
        let seq_rep = simulate_plan(&seq.plan, &machine, true);
        // Spiral parallel (p = machine.p).
        let par = Tuner::new(machine.p, mu, CostModel::Analytic)
            .tune_parallel(n)
            .expect("parallel tuning cannot fault on the analytic model");
        let (par_pm, par_fs) = match &par {
            Some(t) => {
                let rep = simulate_plan(&t.plan, &machine, true);
                (rep.pseudo_mflops, rep.stats.false_sharing)
            }
            None => (f64::NAN, 0),
        };
        // FFTW-like at p threads.
        let f = FftwLikeFft::new(n, FftwLikeConfig::default());
        let mut sim = SmpSim::new(machine.clone(), n);
        f.trace(machine.p, &mut sim);
        sim.reset_timing();
        f.trace(machine.p, &mut sim);
        let fftw_pm = pseudo_mflops(n, machine.cycles_to_us(sim.cycles()));

        println!(
            "{:<42} {:>10.0} {:>10.0} {:>10.0} {:>8} {:>8}",
            machine.name, seq_rep.pseudo_mflops, par_pm, fftw_pm, par_fs, sim.stats.false_sharing
        );
    }

    println!(
        "\n(pMF/s = pseudo-Mflop/s, 5·N·log2 N / t_µs; FS = false-sharing
line transfers per transform. The generated code shows 0 by
construction — Definition 1 — while the µ-oblivious baseline pays
coherence traffic that scales with the bus cost of the machine.)"
    );
}
