//! Domain example: fast circular convolution via the generated FFT
//! (convolution theorem), verified against direct O(n²) convolution —
//! the classic signal-processing workload FFT libraries exist for.
//!
//! ```text
//! cargo run --release --example convolution
//! ```

use spiral_fft::spl::Cplx;
use spiral_fft::SpiralFft;

/// Direct circular convolution: `out[k] = Σ_j a[j] · b[(k - j) mod n]`.
fn direct_convolution(a: &[Cplx], b: &[Cplx]) -> Vec<Cplx> {
    let n = a.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::ZERO;
            for (j, &aj) in a.iter().enumerate() {
                acc += aj * b[(k + n - j) % n];
            }
            acc
        })
        .collect()
}

fn main() {
    let n = 1024;
    let fft = SpiralFft::parallel(n, 2, 4).unwrap_or_else(|_| SpiralFft::sequential(n));

    // A noisy pulse train and a smoothing kernel.
    let signal: Vec<Cplx> = (0..n)
        .map(|k| {
            let pulse = if k % 128 < 4 { 1.0 } else { 0.0 };
            let noise = ((k as f64 * 12.9898).sin() * 43758.5453).fract() * 0.2;
            Cplx::real(pulse + noise)
        })
        .collect();
    let kernel: Vec<Cplx> = (0..n)
        .map(|k| {
            // Centered Gaussian-ish window of width 8 (circularly).
            let d = k.min(n - k) as f64;
            Cplx::real((-d * d / 32.0).exp() / 10.0)
        })
        .collect();

    // FFT-based circular convolution: IFFT(FFT(a) ⊙ FFT(b)).
    let fa = fft.forward(&signal);
    let fb = fft.forward(&kernel);
    let prod: Vec<Cplx> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
    let fast = fft.inverse(&prod);

    // Verify against the O(n²) definition.
    let slow = direct_convolution(&signal, &kernel);
    let err = spiral_fft::spl::cplx::max_dist(&fast, &slow);
    println!("circular convolution of n = {n} points");
    println!(
        "  FFT path:    3 transforms of the generated plan ({} flops each)",
        fft.plan().flops()
    );
    println!("  direct path: {n}² = {} multiply-adds", n * n);
    println!("  max |Δ| fast vs direct: {err:.3e}");
    assert!(err < 1e-8, "convolution mismatch");
    println!(
        "  smoothed pulse peak: {:.4} (raw pulse was 1.0)",
        fast.iter().map(|z| z.re).fold(f64::MIN, f64::max)
    );
    println!("ok ✓");
}
