//! Domain example: 2-D frequency-domain low-pass filtering of a
//! synthetic image with the *parallel 2-D DFT* derived by the rewriting
//! system (paper §2.2: multidimensional transforms are tensor products;
//! rules (7)/(9)/(10) parallelize the row-column algorithm directly).
//!
//! ```text
//! cargo run --release --example image_filter
//! ```

use spiral_fft::spl::Cplx;
use spiral_fft::SpiralFft;

fn main() {
    let (rows, cols) = (32usize, 64usize);
    let fft = SpiralFft::parallel_2d(rows, cols, 2, 4).expect("valid 2-D split");
    println!("parallel 2-D DFT on {rows}×{cols}, p = 2, µ = 4");
    println!("  formula: {}", fft.formula().pretty());
    spiral_fft::rewrite::check_fully_optimized(fft.formula(), 2, 4).expect("Definition 1");
    println!("  Definition 1: load-balanced, no false sharing ✓\n");

    // Synthetic image: smooth gradient + checkerboard "noise".
    let image: Vec<Cplx> = (0..rows * cols)
        .map(|idx| {
            let (r, c) = (idx / cols, idx % cols);
            let smooth = (r as f64 / rows as f64) + (c as f64 / cols as f64);
            let noise = if (r + c) % 2 == 0 { 0.5 } else { -0.5 };
            Cplx::real(smooth + noise)
        })
        .collect();

    // Forward transform, zero out high frequencies, inverse.
    let mut spectrum = fft.forward(&image);
    let keep_r = rows / 8;
    let keep_c = cols / 8;
    let mut zeroed = 0;
    for r in 0..rows {
        for c in 0..cols {
            let rr = r.min(rows - r); // distance from DC (wrapping)
            let cc = c.min(cols - c);
            if rr > keep_r || cc > keep_c {
                spectrum[r * cols + c] = Cplx::ZERO;
                zeroed += 1;
            }
        }
    }
    let filtered = fft.inverse(&spectrum);

    // The checkerboard sits at the Nyquist frequency — it must vanish;
    // the smooth gradient must survive.
    let checker_energy: f64 = (0..rows * cols)
        .map(|idx| {
            let (r, c) = (idx / cols, idx % cols);
            let sign = if (r + c) % 2 == 0 { 1.0 } else { -1.0 };
            filtered[idx].re * sign
        })
        .sum::<f64>()
        / (rows * cols) as f64;
    let mean: f64 = filtered.iter().map(|z| z.re).sum::<f64>() / (rows * cols) as f64;

    println!(
        "low-pass filter: zeroed {zeroed}/{} spectrum bins",
        rows * cols
    );
    println!("  residual checkerboard amplitude: {checker_energy:.2e} (was 0.5)");
    println!(
        "  image mean preserved: {mean:.4} (expected ≈ {:.4})",
        (rows as f64 - 1.0) / (2.0 * rows as f64) + (cols as f64 - 1.0) / (2.0 * cols as f64)
    );
    assert!(checker_energy.abs() < 1e-10, "checkerboard not removed");
    println!("ok ✓");
}
