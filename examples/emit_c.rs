//! Emit the generated C code (the paper's actual backend) for a parallel
//! DFT and print it — OpenMP or pthreads flavor.
//!
//! ```text
//! cargo run --release --example emit_c [n] [openmp|pthreads]
//! ```

use spiral_fft::codegen::CFlavor;
use spiral_fft::SpiralFft;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let flavor = match std::env::args().nth(2).as_deref() {
        Some("pthreads") => CFlavor::Pthreads,
        _ => CFlavor::OpenMp,
    };
    let fft = match SpiralFft::parallel(n, 2, 4) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}; falling back to sequential");
            SpiralFft::sequential(n)
        }
    };
    println!("/* formula: {} */", fft.formula());
    println!("{}", fft.emit_c(flavor));
}
