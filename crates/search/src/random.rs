//! Random search over rule trees — the simplest stochastic baseline for
//! the search/learning block.

use crate::cost::CostModel;
use crate::dp::SearchResult;
use rand::seq::SliceRandom;
use rand::Rng;
use spiral_rewrite::RuleTree;
use spiral_spl::num::splittings;

/// Sample a uniform-ish random rule tree for size `n` (at every level,
/// pick "leaf" — when allowed — or a random split).
pub fn random_tree<R: Rng>(n: usize, max_leaf: usize, rng: &mut R) -> RuleTree {
    let splits = splittings(n);
    let can_leaf = n <= max_leaf;
    if splits.is_empty() || (can_leaf && rng.gen_bool(0.4)) {
        return RuleTree::Leaf(n);
    }
    let &(m, k) = splits.choose(rng).unwrap();
    RuleTree::Ct(
        Box::new(random_tree(m, max_leaf, rng)),
        Box::new(random_tree(k, max_leaf, rng)),
    )
}

/// Evaluate `samples` random trees; return the best.
pub fn random_search<R: Rng>(
    n: usize,
    max_leaf: usize,
    mu: usize,
    samples: usize,
    model: &CostModel,
    rng: &mut R,
) -> SearchResult {
    let mut best: Option<(RuleTree, f64)> = None;
    let mut evaluated = 0;
    for _ in 0..samples.max(1) {
        let t = random_tree(n, max_leaf, rng);
        if let Some(c) = model.cost_tree(&t, mu) {
            evaluated += 1;
            if best.as_ref().is_none_or(|(_, bc)| c < *bc) {
                best = Some((t, c));
            }
        }
    }
    let (tree, cost) = best.expect("no valid random candidate");
    SearchResult {
        tree,
        cost,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_trees_have_right_size() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let t = random_tree(96, 8, &mut rng);
            assert_eq!(t.size(), 96);
        }
    }

    #[test]
    fn random_search_returns_valid_result() {
        let mut rng = StdRng::seed_from_u64(42);
        let r = random_search(64, 8, 4, 20, &CostModel::Analytic, &mut rng);
        assert_eq!(r.tree.size(), 64);
        assert!(r.evaluated >= 1);
    }

    #[test]
    fn more_samples_never_hurt() {
        let model = CostModel::Analytic;
        let mut rng1 = StdRng::seed_from_u64(1);
        let few = random_search(128, 8, 4, 3, &model, &mut rng1);
        // Same seed stream extended: first 3 candidates are identical,
        // so the 30-sample result can only improve.
        let mut rng2 = StdRng::seed_from_u64(1);
        let many = random_search(128, 8, 4, 30, &model, &mut rng2);
        assert!(many.cost <= few.cost);
    }

    #[test]
    fn prime_size_yields_leaf() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(random_tree(17, 4, &mut rng), RuleTree::Leaf(17));
    }
}
