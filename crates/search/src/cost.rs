//! Cost models for the search engine (the paper's evaluation level:
//! "the actual runtime is measured", plus cheaper surrogates).

use spiral_codegen::plan::Plan;
use spiral_codegen::shard::ShardSpec;
use spiral_codegen::{ParallelExecutor, SpiralError};
use spiral_rewrite::RuleTree;
use spiral_sim::{simulate_plan, MachineSpec};
use spiral_smp::panic_payload;
use spiral_spl::cplx::{first_non_finite, Cplx};
use spiral_spl::Spl;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// How candidate implementations are costed.
pub enum CostModel {
    /// Structural estimate: flops + weighted memory traffic of the
    /// compiled plan. Deterministic and fast — good for tests and as a
    /// DP pre-filter.
    Analytic,
    /// Cycle estimate from the machine simulator (deterministic).
    Sim {
        /// The machine model to simulate on.
        machine: MachineSpec,
        /// Measure a warmed-up run (true) or a cold one.
        warm: bool,
    },
    /// Wall-clock measurement on this host (minimum of `reps` runs).
    Host {
        /// Repetitions; the minimum time is kept.
        reps: usize,
        /// Executor for parallel plans (None = in-thread execution).
        executor: Option<ParallelExecutor>,
    },
}

impl CostModel {
    /// Cost of executing `plan` once (lower is better; units depend on
    /// the model — they are only compared within one model). Failed
    /// measurements (panics, watchdog expiries, non-finite results) cost
    /// `+∞`, so comparisons against healthy candidates stay valid; use
    /// [`try_cost`](Self::try_cost) when the failure reason matters.
    pub fn cost(&self, plan: &Plan) -> f64 {
        self.try_cost(plan).unwrap_or(f64::INFINITY)
    }

    /// Cost of executing `plan` once, propagating measurement failures.
    /// A candidate whose measurement panics, trips the executor
    /// watchdog, or yields a non-finite time/result returns `Err`
    /// instead of poisoning the search with a bogus number.
    pub fn try_cost(&self, plan: &Plan) -> Result<f64, SpiralError> {
        let c = match self {
            CostModel::Analytic => analytic_cost(plan),
            CostModel::Sim { machine, warm } => catch_unwind(AssertUnwindSafe(|| {
                simulate_plan(plan, machine, *warm).cycles
            }))
            .map_err(|p| SpiralError::WorkerPanic {
                thread: 0,
                payload: panic_payload(p),
            })?,
            CostModel::Host { reps, executor } => try_host_time(plan, *reps, executor.as_ref())?,
        };
        if !c.is_finite() {
            return Err(SpiralError::Search(format!(
                "cost model produced a non-finite value for a {}-point plan",
                plan.n
            )));
        }
        Ok(c)
    }

    /// Compile a sequential formula and cost it.
    pub fn cost_formula(&self, f: &Spl, threads: usize, mu: usize) -> Option<f64> {
        let plan = Plan::from_formula(f, threads, mu).ok()?;
        self.try_cost(&plan).ok()
    }

    /// Cost a sequential rule tree.
    pub fn cost_tree(&self, tree: &RuleTree, mu: usize) -> Option<f64> {
        self.cost_formula(&tree.expand().normalized(), 1, mu)
    }

    /// Price the `dist(q)` variant of a plan: shard the prefix across
    /// `spec.q` worker processes on a host with `budget` cores, paying
    /// the model's inter-process exchange estimate. `None` when the
    /// model cannot price it — honest host measurement would require
    /// spawning an actual fleet, which is the serving tier's job, not
    /// the search's.
    pub fn dist_cost(&self, plan: &Plan, spec: &ShardSpec, budget: usize) -> Option<f64> {
        match self {
            CostModel::Analytic => Some(analytic_dist_cost(plan, spec)),
            CostModel::Sim { machine, warm } => {
                Some(spiral_sim::estimate_dist(plan, spec, machine, budget, *warm).cycles)
            }
            CostModel::Host { .. } => None,
        }
    }
}

/// Flops plus weighted memory operations; a barrier penalty discourages
/// pass-heavy plans. Flops inside vector-marked stages are credited with
/// ν-lane throughput (one vector op retires ν scalar lanes), so the
/// search sees the vec(ν) dimension even under the structural model.
fn analytic_cost(plan: &Plan) -> f64 {
    // Each step reads and writes the whole vector once.
    let mem_ops = plan.steps.len() as f64 * 2.0 * plan.n as f64;
    let nu = plan.vec_width.max(1) as f64;
    let flops = plan.flops() as f64 - plan.vec_flops() as f64 * (1.0 - 1.0 / nu);
    flops + 1.5 * mem_ops + 200.0 * plan.barriers() as f64
}

/// The structural model prices flops and passes, not threads — it sees
/// no parallel speedup — so the only thing `dist(q)` can change under
/// `Analytic` is *added* cost: two extra data passes across the process
/// boundary plus a per-worker dispatch penalty. Dist therefore never
/// wins under the structural model, consistent with its view that
/// in-process parallelism is already free.
fn analytic_dist_cost(plan: &Plan, spec: &ShardSpec) -> f64 {
    analytic_cost(plan) + 1.5 * 2.0 * plan.n as f64 + 400.0 * spec.q as f64
}

fn try_host_time(
    plan: &Plan,
    reps: usize,
    executor: Option<&ParallelExecutor>,
) -> Result<f64, SpiralError> {
    let reps = reps.max(1);
    let x: Vec<Cplx> = (0..plan.n)
        .map(|k| Cplx::new(k as f64, -(k as f64)))
        .collect();
    let mut best = f64::INFINITY;
    // Warm-up run: a candidate that panics, times out, or corrupts its
    // output fails here, before any timing is recorded.
    let _ = try_run_once(plan, &x, executor)?;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = try_run_once(plan, &x, executor)?;
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(&out);
        best = best.min(dt);
    }
    Ok(best)
}

fn try_run_once(
    plan: &Plan,
    x: &[Cplx],
    executor: Option<&ParallelExecutor>,
) -> Result<Vec<Cplx>, SpiralError> {
    match executor {
        // The executor's fallible path already isolates panics, bounds
        // barrier waits, and scans the output for non-finite values.
        Some(e) if plan.threads > 1 => e.try_execute(plan, x),
        _ => {
            let out = catch_unwind(AssertUnwindSafe(|| plan.execute(x))).map_err(|p| {
                SpiralError::WorkerPanic {
                    thread: 0,
                    payload: panic_payload(p),
                }
            })?;
            if let Some(index) = first_non_finite(&out) {
                return Err(SpiralError::NonFinite {
                    index,
                    context: format!("sequential measurement of a {}-point plan", plan.n),
                });
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_rewrite::sequential_dft;

    #[test]
    fn analytic_cost_orders_obvious_cases() {
        // A radix-2 depth-first tree has more passes than a balanced
        // large-codelet tree; the analytic model must notice the
        // difference in barriers/memory passes.
        let shallow = Plan::from_formula(&sequential_dft(64, 8), 1, 4).unwrap();
        let deep = Plan::from_formula(&sequential_dft(64, 2), 1, 4).unwrap();
        let cm = CostModel::Analytic;
        assert!(cm.cost(&shallow) < cm.cost(&deep));
    }

    #[test]
    fn sim_cost_is_deterministic() {
        let plan = Plan::from_formula(&sequential_dft(128, 8), 1, 4).unwrap();
        let cm = CostModel::Sim {
            machine: spiral_sim::core_duo(),
            warm: true,
        };
        let a = cm.cost(&plan);
        let b = cm.cost(&plan);
        assert_eq!(a, b);
        assert!(a > 0.0);
    }

    #[test]
    fn host_cost_runs() {
        let plan = Plan::from_formula(&sequential_dft(64, 8), 1, 4).unwrap();
        let cm = CostModel::Host {
            reps: 2,
            executor: None,
        };
        let c = cm.cost(&plan);
        assert!(c > 0.0 && c.is_finite());
    }

    #[test]
    fn cost_tree_compiles_and_costs() {
        let cm = CostModel::Analytic;
        let t = RuleTree::balanced(64, 8);
        assert!(cm.cost_tree(&t, 4).unwrap() > 0.0);
    }
}
