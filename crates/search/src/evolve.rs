//! Evolutionary search over rule trees (the paper cites stochastic
//! search for algorithm optimization, ref. [24]).
//!
//! Individuals are rule trees; mutation re-splits a random subtree,
//! crossover swaps equal-size subtrees between parents; tournament
//! selection with elitism.

use crate::cost::CostModel;
use crate::dp::SearchResult;
use crate::random::random_tree;
use rand::seq::SliceRandom;
use rand::Rng;
use spiral_rewrite::RuleTree;

/// GA parameters.
#[derive(Clone, Copy, Debug)]
pub struct EvolveOpts {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for selection.
    pub tournament: usize,
    /// Probability a child is mutated.
    pub mutation_rate: f64,
    /// Probability a child comes from crossover.
    pub crossover_rate: f64,
    /// Top individuals copied unchanged.
    pub elitism: usize,
}

impl Default for EvolveOpts {
    fn default() -> Self {
        EvolveOpts {
            population: 24,
            generations: 12,
            tournament: 3,
            mutation_rate: 0.4,
            crossover_rate: 0.5,
            elitism: 2,
        }
    }
}

/// Run the GA.
pub fn evolve_search<R: Rng>(
    n: usize,
    max_leaf: usize,
    mu: usize,
    opts: EvolveOpts,
    model: &CostModel,
    rng: &mut R,
) -> SearchResult {
    let mut evaluated = 0usize;
    let score = |t: &RuleTree, evaluated: &mut usize| -> f64 {
        *evaluated += 1;
        model.cost_tree(t, mu).unwrap_or(f64::INFINITY)
    };
    let mut pop: Vec<(RuleTree, f64)> = (0..opts.population.max(2))
        .map(|_| {
            let t = random_tree(n, max_leaf, rng);
            let c = score(&t, &mut evaluated);
            (t, c)
        })
        .collect();
    pop.sort_by(|a, b| a.1.total_cmp(&b.1));

    for _gen in 0..opts.generations {
        let mut next: Vec<(RuleTree, f64)> = pop.iter().take(opts.elitism).cloned().collect();
        while next.len() < pop.len() {
            let p1 = tournament(&pop, opts.tournament, rng).clone();
            let mut child = if rng.gen_bool(opts.crossover_rate) {
                let p2 = tournament(&pop, opts.tournament, rng);
                crossover(&p1.0, &p2.0, rng)
            } else {
                p1.0.clone()
            };
            if rng.gen_bool(opts.mutation_rate) {
                child = mutate(&child, max_leaf, rng);
            }
            let c = score(&child, &mut evaluated);
            next.push((child, c));
        }
        next.sort_by(|a, b| a.1.total_cmp(&b.1));
        pop = next;
    }
    let (tree, cost) = pop.into_iter().next().unwrap();
    SearchResult {
        tree,
        cost,
        evaluated,
    }
}

fn tournament<'a, R: Rng>(
    pop: &'a [(RuleTree, f64)],
    k: usize,
    rng: &mut R,
) -> &'a (RuleTree, f64) {
    (0..k.max(1))
        .map(|_| pop.choose(rng).unwrap())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap()
}

/// Replace a uniformly chosen subtree with a fresh random tree of the
/// same size.
pub fn mutate<R: Rng>(t: &RuleTree, max_leaf: usize, rng: &mut R) -> RuleTree {
    let count = subtree_count(t);
    let target = rng.gen_range(0..count);
    replace_nth(t, target, &mut |size| random_tree(size, max_leaf, rng)).0
}

/// Swap a random subtree of `a` with a same-size subtree of `b` (falls
/// back to `a` clone if no size matches).
pub fn crossover<R: Rng>(a: &RuleTree, b: &RuleTree, rng: &mut R) -> RuleTree {
    let mut sizes_b = Vec::new();
    collect_sizes(b, &mut sizes_b);
    let count = subtree_count(a);
    // Try a few times to find a donor of matching size.
    for _ in 0..8 {
        let target = rng.gen_range(0..count);
        if let Some(size) = nth_size(a, target) {
            let donors: Vec<&RuleTree> = sizes_b
                .iter()
                .filter(|s| s.size() == size)
                .cloned()
                .collect();
            if let Some(d) = donors.choose(rng) {
                let donor = (*d).clone();
                return replace_nth(a, target, &mut |_| donor.clone()).0;
            }
        }
    }
    a.clone()
}

fn subtree_count(t: &RuleTree) -> usize {
    match t {
        RuleTree::Leaf(_) => 1,
        RuleTree::Ct(m, k) => 1 + subtree_count(m) + subtree_count(k),
    }
}

fn nth_size(t: &RuleTree, n: usize) -> Option<usize> {
    fn go(t: &RuleTree, n: &mut usize) -> Option<usize> {
        if *n == 0 {
            return Some(t.size());
        }
        *n -= 1;
        match t {
            RuleTree::Leaf(_) => None,
            RuleTree::Ct(m, k) => go(m, n).or_else(|| go(k, n)),
        }
    }
    let mut n = n;
    go(t, &mut n)
}

fn replace_nth(
    t: &RuleTree,
    n: usize,
    make: &mut dyn FnMut(usize) -> RuleTree,
) -> (RuleTree, usize) {
    if n == 0 {
        return (make(t.size()), usize::MAX);
    }
    match t {
        RuleTree::Leaf(s) => (RuleTree::Leaf(*s), n - 1),
        RuleTree::Ct(m, k) => {
            let (nm, rest) = replace_nth(m, n - 1, make);
            if rest == usize::MAX {
                return (RuleTree::Ct(Box::new(nm), k.clone()), usize::MAX);
            }
            let (nk, rest2) = replace_nth(k, rest, make);
            (RuleTree::Ct(Box::new(nm), Box::new(nk)), rest2)
        }
    }
}

fn collect_sizes<'a>(t: &'a RuleTree, out: &mut Vec<&'a RuleTree>) {
    out.push(t);
    if let RuleTree::Ct(m, k) = t {
        collect_sizes(m, out);
        collect_sizes(k, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mutation_preserves_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = RuleTree::balanced(128, 4);
        for _ in 0..30 {
            assert_eq!(mutate(&t, 8, &mut rng).size(), 128);
        }
    }

    #[test]
    fn crossover_preserves_size() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = RuleTree::balanced(64, 2);
        let b = RuleTree::right_radix(64, 2);
        for _ in 0..30 {
            assert_eq!(crossover(&a, &b, &mut rng).size(), 64);
        }
    }

    #[test]
    fn evolution_finds_valid_tree_and_improves_over_first_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = CostModel::Analytic;
        let first = random_tree(128, 8, &mut rng);
        let first_cost = model.cost_tree(&first, 4).unwrap();
        let r = evolve_search(128, 8, 4, EvolveOpts::default(), &model, &mut rng);
        assert_eq!(r.tree.size(), 128);
        assert!(
            r.cost <= first_cost,
            "GA {} vs random {}",
            r.cost,
            first_cost
        );
        assert!(r.evaluated >= 24);
    }

    #[test]
    fn evolved_tree_is_numerically_correct() {
        use spiral_spl::cplx::assert_slices_close;
        let mut rng = StdRng::seed_from_u64(8);
        let r = evolve_search(
            64,
            8,
            4,
            EvolveOpts {
                population: 8,
                generations: 4,
                ..Default::default()
            },
            &CostModel::Analytic,
            &mut rng,
        );
        let f = r.tree.expand().normalized();
        let x: Vec<spiral_spl::Cplx> = (0..64)
            .map(|k| spiral_spl::Cplx::new(1.0, k as f64))
            .collect();
        assert_slices_close(&f.eval(&x), &spiral_spl::builder::dft(64).eval(&x), 1e-7);
    }
}
