//! The full autotuning loop (Figure 1's feedback cycle): generate
//! candidate formulas, compile, measure, pick the best.

use crate::cost::CostModel;
use crate::dp::dp_search;
use spiral_codegen::plan::Plan;
use spiral_codegen::SpiralError;
use spiral_rewrite::{expand_dfts, multicore_dft, RuleTree};
use spiral_spl::builder::{dist_tag, vec_tag};
use spiral_spl::num::divisors;
use spiral_spl::Spl;
use std::collections::HashMap;

/// Lane widths the search proposes as the vec(ν) candidate dimension:
/// scalar (ν = 1) plus every supported width the host actually has.
/// Under the `force-scalar` feature of `spiral-codegen` the detected
/// width is 1, so this collapses to `[1]` and no vector candidate is
/// ever generated.
fn candidate_vec_widths() -> Vec<usize> {
    let host = spiral_codegen::detected_simd_width();
    let mut widths = vec![1];
    widths.extend(
        spiral_codegen::simd::CANDIDATE_WIDTHS
            .iter()
            .copied()
            .filter(|&nu| nu <= host),
    );
    widths
}

/// A tuned implementation: the winning formula, its compiled plan, and
/// the cost under the tuner's model.
pub struct Tuned {
    /// The winning formula.
    pub formula: Spl,
    /// Its compiled plan.
    pub plan: Plan,
    /// Its cost under the tuner's model.
    pub cost: f64,
    /// Human-readable description of the choice (split, trees).
    pub choice: String,
}

/// A candidate the search excluded, and why.
#[derive(Debug)]
pub struct QuarantineEntry {
    /// The candidate's description (same format as [`Tuned::choice`]).
    pub choice: String,
    /// Why it was excluded (derivation/lowering failure, failed static
    /// verification, or a measurement fault: panic, watchdog expiry,
    /// non-finite cost or output).
    pub reason: String,
}

/// What the parallel search saw: how many candidates were measured and
/// which were quarantined.
#[derive(Debug, Default)]
pub struct TuneReport {
    /// Candidates that reached the cost model.
    pub evaluated: usize,
    /// Candidates excluded from the search, with reasons.
    pub quarantined: Vec<QuarantineEntry>,
    /// Measured per-stage/per-thread profile of one execution of the
    /// winning plan (feature `trace`): load-imbalance and barrier-wait
    /// diagnostics for the implementation the search selected. `None`
    /// when no candidate survived or the diagnostic run faulted.
    #[cfg(feature = "trace")]
    pub profile: Option<spiral_trace::RunProfile>,
}

/// Result of [`Tuner::tune_parallel_report`]: the winner (if any
/// candidate survived) plus the search report.
pub struct TuneOutcome {
    /// The best surviving candidate; `None` when `(pµ)² ∤ n` or every
    /// candidate was quarantined.
    pub best: Option<Tuned>,
    /// What the search evaluated and quarantined.
    pub report: TuneReport,
}

/// Optional observation context threaded through the parallel search.
/// Mirrors the executor's `ExecTrace`: a ZST without the `trace`
/// feature, so the uninstrumented search carries no observation state
/// at all.
#[derive(Clone, Copy, Default)]
struct TuneObs<'a> {
    /// Timeline sink receiving a `TunerCandidate` span per measured
    /// candidate and a `TunerReject` mark per quarantine (feature
    /// `trace`). Events are recorded for tid 0 — the coordinating
    /// thread — with `stage` carrying the candidate index.
    #[cfg(feature = "trace")]
    timeline: Option<&'a dyn spiral_smp::trace::TimelineSink>,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl TuneObs<'_> {
    /// Whether anything is listening (a `false` constant without the
    /// `trace` feature, so every observation branch folds away).
    fn active(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.timeline.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Record the span of evaluating candidate `index` (derivation
    /// through costing), `[start, now]`.
    #[allow(unused_variables)]
    fn candidate(&self, index: usize, start: std::time::Instant) {
        #[cfg(feature = "trace")]
        if let Some(tl) = self.timeline {
            tl.span(
                0,
                spiral_smp::trace::SpanKind::TunerCandidate,
                u32::try_from(index).unwrap_or(u32::MAX),
                start,
                std::time::Instant::now(),
            );
        }
    }

    /// Mark candidate `index` as quarantined.
    #[allow(unused_variables)]
    fn reject(&self, index: usize) {
        #[cfg(feature = "trace")]
        if let Some(tl) = self.timeline {
            tl.mark(
                0,
                spiral_smp::trace::MarkKind::TunerReject,
                u32::try_from(index).unwrap_or(u32::MAX),
                std::time::Instant::now(),
            );
        }
    }
}

/// Autotuner for a fixed machine configuration.
pub struct Tuner {
    /// Worker/processor count for parallel code.
    pub p: usize,
    /// Cache-line length in complex elements.
    pub mu: usize,
    /// Largest codelet leaf.
    pub max_leaf: usize,
    /// How candidates are costed.
    pub model: CostModel,
    /// How many worker *processes* the `dist(q)` tier may use on this
    /// host. 1 (the default) disables the dist candidate dimension
    /// entirely; ≥ 2 lets the search offer `dist(q)` for q ∈ {2, 4}
    /// up to the budget, priced by the model's inter-process exchange
    /// estimate.
    pub process_budget: usize,
}

impl Tuner {
    /// Tuner for `p` processors and cache-line length `µ`.
    pub fn new(p: usize, mu: usize, model: CostModel) -> Tuner {
        // Every plan the tuner measures or returns may be run on the
        // parallel executor; arm its debug-build static verification.
        spiral_verify::install_executor_guard();
        Tuner {
            p,
            mu,
            max_leaf: 8,
            model,
            process_budget: 1,
        }
    }

    /// Allow the `dist(q)` dimension up to `budget` worker processes.
    pub fn with_process_budget(mut self, budget: usize) -> Tuner {
        self.process_budget = budget.max(1);
        self
    }

    /// Best sequential implementation of `DFT_n` (DP over rule trees,
    /// then the scalar-vs-vec(ν) backend dimension on the DP winner).
    /// `Err` when the DP-chosen expansion fails to lower or its scalar
    /// measurement faults — both indicate a broken toolchain rather than
    /// a bad candidate, so there is nothing to quarantine. A faulting
    /// *vector* variant merely loses to the scalar baseline.
    pub fn tune_sequential(&self, n: usize) -> Result<Tuned, SpiralError> {
        let r = dp_search(n, self.max_leaf, self.mu, &self.model);
        let base = r.tree.expand().normalized();
        let plan = Plan::from_formula(&base, 1, self.mu).map_err(|e| {
            SpiralError::Lower(format!("sequential expansion failed to lower: {e}"))
        })?;
        let mut best = Tuned {
            cost: self.model.try_cost(&plan)?,
            formula: base.clone(),
            plan,
            choice: format!("sequential tree {}", r.tree),
        };
        for nu in candidate_vec_widths() {
            if nu == 1 {
                continue;
            }
            let formula = vec_tag(nu, base.clone());
            let Ok(plan) = Plan::from_formula(&formula, 1, self.mu) else {
                continue;
            };
            if plan.vec_width == 1 {
                // No stage passed ν-alignment: identical to the scalar
                // baseline, nothing new to measure.
                continue;
            }
            let Ok(cost) = self.model.try_cost(&plan) else {
                continue;
            };
            if cost < best.cost {
                best = Tuned {
                    formula,
                    plan,
                    cost,
                    choice: format!("sequential tree {} + vec({nu})", r.tree),
                };
            }
        }
        Ok(best)
    }

    /// Best parallel implementation: searches the top-level split `m` of
    /// the multicore Cooley–Tukey (14) and reuses DP-best sequential
    /// trees for the sub-DFTs. `Ok(None)` when `(pµ)² ∤ n` or every
    /// candidate was quarantined; see
    /// [`tune_parallel_report`](Self::tune_parallel_report) for the
    /// search report.
    pub fn tune_parallel(&self, n: usize) -> Result<Option<Tuned>, SpiralError> {
        Ok(self.tune_parallel_report(n)?.best)
    }

    /// Like [`tune_parallel`](Self::tune_parallel), but also reports
    /// what the search saw. Candidates whose measurement panics, trips
    /// the executor watchdog, or produces non-finite cost/output are
    /// *quarantined* — recorded with a reason and excluded — and the
    /// search continues with the remaining candidates.
    pub fn tune_parallel_report(&self, n: usize) -> Result<TuneOutcome, SpiralError> {
        self.tune_report_impl(n, TuneObs::default())
    }

    /// Like [`tune_parallel_report`](Self::tune_parallel_report), but
    /// records the search itself onto `timeline`: one `TunerCandidate`
    /// span per split candidate (derivation through costing, indexed in
    /// candidate order) and one `TunerReject` mark per quarantine, all
    /// attributed to tid 0, the coordinating thread.
    #[cfg(feature = "trace")]
    pub fn tune_parallel_report_observed(
        &self,
        n: usize,
        timeline: &dyn spiral_smp::trace::TimelineSink,
    ) -> Result<TuneOutcome, SpiralError> {
        self.tune_report_impl(
            n,
            TuneObs {
                timeline: Some(timeline),
                _marker: std::marker::PhantomData,
            },
        )
    }

    fn tune_report_impl(&self, n: usize, obs: TuneObs<'_>) -> Result<TuneOutcome, SpiralError> {
        let mut report = TuneReport::default();
        if self.p == 1 {
            let tuned = self.tune_sequential(n)?;
            report.evaluated = 1;
            return Ok(TuneOutcome {
                best: Some(tuned),
                report,
            });
        }
        let pmu = self.p * self.mu;
        let splits: Vec<usize> = divisors(n)
            .into_iter()
            .filter(|&m| m > 1 && m < n && m % pmu == 0 && (n / m).is_multiple_of(pmu))
            .collect();
        // DP-best sequential trees, shared across split candidates.
        let tree_cache: std::cell::RefCell<HashMap<usize, RuleTree>> =
            std::cell::RefCell::new(HashMap::new());
        let mut best: Option<Tuned> = None;
        let widths = candidate_vec_widths();
        let mut ci = 0usize;
        for m in splits {
            let base_choice = format!("multicore split {m}x{}", n / m);
            let derived = match multicore_dft(n, self.p, self.mu, Some(m)) {
                Ok(d) => d,
                Err(e) => {
                    report.quarantined.push(QuarantineEntry {
                        choice: base_choice,
                        reason: format!("derivation failed: {e:?}"),
                    });
                    obs.reject(ci);
                    ci += 1;
                    continue;
                }
            };
            let expanded = expand_dfts(&derived.formula, &|k| {
                tree_cache
                    .borrow_mut()
                    .entry(k)
                    .or_insert_with(|| dp_search(k, self.max_leaf, self.mu, &self.model).tree)
                    .clone()
            })
            .normalized();
            // The backend dimension: the same split measured scalar and
            // with every host-supported vec(ν) tag.
            for &nu in &widths {
                let (formula, choice) = if nu == 1 {
                    (expanded.clone(), base_choice.clone())
                } else {
                    (
                        vec_tag(nu, expanded.clone()),
                        format!("{base_choice} + vec({nu})"),
                    )
                };
                let t0 = obs.active().then(std::time::Instant::now);
                let plan = match Plan::from_formula(&formula, self.p, self.mu) {
                    // Loop merging across the parallel boundary: fold the
                    // P ⊗̄ I_µ exchanges into the compute steps (§3.1).
                    Ok(p) => p.fuse_exchanges(),
                    Err(e) => {
                        report.quarantined.push(QuarantineEntry {
                            choice,
                            reason: format!("failed to lower: {e}"),
                        });
                        obs.reject(ci);
                        ci += 1;
                        continue;
                    }
                };
                if nu > 1 && plan.vec_width == 1 {
                    // No stage passed ν-alignment: the plan is identical
                    // to the scalar candidate, skip the duplicate.
                    continue;
                }
                // Candidates that fail static verification (races, false
                // sharing, out-of-bounds) never enter the search space:
                // the analyzer enforces Definition 1 before any
                // measurement.
                if spiral_verify::verify_plan(&plan, &spiral_verify::VerifyOptions::default())
                    .has_errors()
                {
                    report.quarantined.push(QuarantineEntry {
                        choice,
                        reason: "failed static verification".to_string(),
                    });
                    obs.reject(ci);
                    ci += 1;
                    continue;
                }
                // Dataflow certification: abstract interpretation of the
                // lowered IR (bounds, write-once coverage, ping-pong
                // discipline, exchange-fusion legality, ν-alignment of
                // vector-marked stages). Independent of the scheduling
                // analyzer above; a plan failing it computes garbage
                // regardless of how fast it runs.
                let cert = spiral_verify::certify::dataflow::certify_dataflow(&plan);
                if let Some(f) = cert.first() {
                    report.quarantined.push(QuarantineEntry {
                        choice,
                        reason: format!("failed dataflow certification: {f}"),
                    });
                    obs.reject(ci);
                    ci += 1;
                    continue;
                }
                report.evaluated += 1;
                let cost = match self.model.try_cost(&plan) {
                    Ok(c) => c,
                    Err(e) => {
                        // A faulting measurement disqualifies the
                        // candidate, not the search: record it and keep
                        // going.
                        report.quarantined.push(QuarantineEntry {
                            choice,
                            reason: e.to_string(),
                        });
                        if let Some(t0) = t0 {
                            obs.candidate(ci, t0);
                        }
                        obs.reject(ci);
                        ci += 1;
                        continue;
                    }
                };
                if let Some(t0) = t0 {
                    obs.candidate(ci, t0);
                }
                ci += 1;
                if best.as_ref().is_none_or(|b| cost < b.cost) {
                    best = Some(Tuned {
                        formula,
                        plan,
                        cost,
                        choice,
                    });
                }
            }
        }
        // The dist(q) backend dimension: shard the winner's prefix
        // across q worker processes. Offered only when the host's
        // process budget admits it; a dist candidate must pass the same
        // static verification as everything else *plus* the
        // shard-boundary certification, and it wins only when the
        // model's inter-process exchange estimate says the prefix
        // speedup pays for the scatter/gather and dispatch cost. With
        // the default budget of 1 this block is dead and the search is
        // byte-identical to a dist-free build.
        let mut dist_winner: Option<Tuned> = None;
        if self.process_budget >= 2 {
            if let Some(b) = &best {
                for q in [2usize, 4] {
                    if q > self.process_budget {
                        continue;
                    }
                    let choice = format!("{} + dist({q})", b.choice);
                    let formula = dist_tag(q, b.formula.clone());
                    let plan = match Plan::from_formula(&formula, self.p, self.mu) {
                        Ok(p) => p.fuse_exchanges(),
                        Err(e) => {
                            report.quarantined.push(QuarantineEntry {
                                choice,
                                reason: format!("failed to lower: {e}"),
                            });
                            obs.reject(ci);
                            ci += 1;
                            continue;
                        }
                    };
                    // A winner whose outer factor does not split q ways
                    // simply does not admit dist(q) — that is
                    // non-applicability (like q exceeding the budget),
                    // not a certification failure worth quarantining.
                    let Ok(spec) = spiral_codegen::shard::shard_plan(&plan, q) else {
                        continue;
                    };
                    if spiral_verify::verify_plan(&plan, &spiral_verify::VerifyOptions::default())
                        .has_errors()
                    {
                        report.quarantined.push(QuarantineEntry {
                            choice,
                            reason: "failed static verification".to_string(),
                        });
                        obs.reject(ci);
                        ci += 1;
                        continue;
                    }
                    let mut findings = spiral_verify::certify::dataflow::certify_dataflow(&plan);
                    findings.extend(spiral_verify::certify::shards::certify_shards(&plan, &spec));
                    if let Some(f) = findings.first() {
                        report.quarantined.push(QuarantineEntry {
                            choice,
                            reason: format!("failed certification: {f}"),
                        });
                        obs.reject(ci);
                        ci += 1;
                        continue;
                    }
                    // Host-measured searches cannot price a process
                    // fleet without spawning one; the dimension is
                    // model-only and silently absent under `Host`.
                    let Some(cost) = self.model.dist_cost(&plan, &spec, self.process_budget) else {
                        continue;
                    };
                    report.evaluated += 1;
                    ci += 1;
                    if cost < b.cost && dist_winner.as_ref().is_none_or(|d| cost < d.cost) {
                        dist_winner = Some(Tuned {
                            formula,
                            plan,
                            cost,
                            choice,
                        });
                    }
                }
            }
        }
        if let Some(d) = dist_winner {
            best = Some(d);
        }

        #[cfg(feature = "trace")]
        if let Some(b) = &best {
            // Diagnostic run of the winner: where its time actually goes,
            // per stage and per thread. A faulting run only drops the
            // diagnostic, never the tuning result.
            let exec = spiral_codegen::parallel::ParallelExecutor::with_auto_barrier(self.p);
            let x: Vec<spiral_spl::Cplx> = (0..n)
                .map(|k| spiral_spl::Cplx::new(k as f64 / n as f64, -(k as f64) / n as f64))
                .collect();
            report.profile = exec.try_execute_traced(&b.plan, &x).ok().map(|(_, p)| p);
        }
        Ok(TuneOutcome { best, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;
    use spiral_spl::Cplx;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64, 0.1 * k as f64))
            .collect()
    }

    #[test]
    fn sequential_tuning_produces_correct_plan() {
        let t = Tuner::new(1, 4, CostModel::Analytic);
        let tuned = t.tune_sequential(128).unwrap();
        let x = ramp(128);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(128).eval(&x),
            1e-6,
        );
    }

    #[test]
    fn parallel_tuning_produces_correct_balanced_plan() {
        let t = Tuner::new(2, 4, CostModel::Analytic);
        let tuned = t
            .tune_parallel(256)
            .unwrap()
            .expect("256 admits p=2 µ=4 splits");
        assert_eq!(tuned.plan.threads, 2);
        let x = ramp(256);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(256).eval(&x),
            1e-6,
        );
        spiral_rewrite::check_fully_optimized(&tuned.formula, 2, 4).unwrap();
    }

    #[test]
    fn parallel_tuning_rejects_invalid_sizes() {
        let t = Tuner::new(2, 4, CostModel::Analytic);
        assert!(t.tune_parallel(32).unwrap().is_none()); // (pµ)² = 64 > 32
    }

    #[test]
    fn parallel_tuning_with_simulator_picks_among_splits() {
        let model = CostModel::Sim {
            machine: spiral_sim::core_duo(),
            warm: true,
        };
        let t = Tuner::new(2, 4, model);
        let tuned = t.tune_parallel(1024).unwrap().unwrap();
        assert!(tuned.choice.contains("multicore split"));
        let x = ramp(1024);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(1024).eval(&x),
            1e-5,
        );
    }

    #[test]
    fn tuned_parallel_plans_verify_clean() {
        for (n, p, mu) in [(256usize, 2usize, 4usize), (1024, 4, 4), (4096, 2, 8)] {
            let t = Tuner::new(p, mu, CostModel::Analytic);
            let tuned = t.tune_parallel(n).unwrap().unwrap();
            let report =
                spiral_verify::verify_plan(&tuned.plan, &spiral_verify::VerifyOptions::default());
            assert!(
                report.is_clean(),
                "n={n} p={p} µ={mu}: {:?}",
                report.diagnostics
            );
        }
    }

    #[test]
    fn p1_tuner_falls_back_to_sequential() {
        let t = Tuner::new(1, 4, CostModel::Analytic);
        let tuned = t.tune_parallel(64).unwrap().unwrap();
        assert_eq!(tuned.plan.threads, 1);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn observed_search_records_candidate_spans() {
        use spiral_trace::{Timeline, TimelineEventKind};
        let tl = Timeline::new(1);
        let t = Tuner::new(2, 4, CostModel::Analytic);
        let outcome = t.tune_parallel_report_observed(256, &tl).unwrap();
        assert!(outcome.best.is_some());
        let events = tl.events();
        let spans = events
            .iter()
            .filter(|e| e.kind == TimelineEventKind::TunerCandidate)
            .count();
        // One span per candidate that passed static verification.
        assert_eq!(spans, outcome.report.evaluated);
        let rejects = events
            .iter()
            .filter(|e| e.kind == TimelineEventKind::TunerReject)
            .count();
        assert_eq!(rejects, outcome.report.quarantined.len());
        // All attributed to the coordinating thread, chronological.
        assert!(events.iter().all(|e| e.tid == 0));
    }

    #[test]
    fn tuner_proposes_vec_backend_dimension() {
        if spiral_codegen::detected_simd_width() == 1 {
            // force-scalar build or no-SIMD host: the dimension must
            // collapse to scalar-only.
            let t = Tuner::new(2, 4, CostModel::Analytic);
            let tuned = t.tune_parallel(1024).unwrap().unwrap();
            assert!(!tuned.choice.contains("vec("), "{}", tuned.choice);
            return;
        }
        // The analytic model credits ν-lane throughput, so with SIMD
        // available the vector variant of the best split must win.
        let t = Tuner::new(2, 4, CostModel::Analytic);
        let tuned = t.tune_parallel(1024).unwrap().unwrap();
        assert!(tuned.choice.contains("+ vec("), "{}", tuned.choice);
        assert!(tuned.plan.vec_width > 1);
        assert!(tuned.formula.has_vec_tag());
        let x = ramp(1024);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(1024).eval(&x),
            1e-5,
        );
        // The winning formula round-trips through the wisdom text form
        // with its tag intact.
        let text = tuned.formula.to_string();
        let parsed = spiral_spl::parse::parse(&text).unwrap();
        assert!(parsed.has_vec_tag());
        assert_eq!(parsed.vec_width(), tuned.plan.vec_width);
    }

    #[test]
    fn sequential_tuner_sees_vec_dimension() {
        let t = Tuner::new(1, 4, CostModel::Analytic);
        let tuned = t.tune_sequential(256).unwrap();
        if spiral_codegen::detected_simd_width() > 1 {
            assert!(tuned.choice.contains("+ vec("), "{}", tuned.choice);
        } else {
            assert_eq!(tuned.plan.vec_width, 1);
        }
        let x = ramp(256);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(256).eval(&x),
            1e-6,
        );
    }

    #[test]
    fn default_process_budget_never_offers_dist() {
        let t = Tuner::new(2, 4, CostModel::Analytic);
        assert_eq!(t.process_budget, 1);
        let tuned = t.tune_parallel(1024).unwrap().unwrap();
        assert!(!tuned.choice.contains("dist("), "{}", tuned.choice);
        assert!(!tuned.formula.has_dist_tag());
        assert_eq!(tuned.plan.dist_procs, 1);
    }

    #[test]
    fn analytic_model_prices_dist_as_pure_overhead() {
        // The structural model sees no parallel speedup, so dist(q) can
        // only lose under it — the dimension is offered, certified, and
        // rejected on cost.
        let t = Tuner::new(2, 4, CostModel::Analytic).with_process_budget(4);
        let outcome = t.tune_parallel_report(1024).unwrap();
        let tuned = outcome.best.unwrap();
        assert!(!tuned.choice.contains("dist("), "{}", tuned.choice);
        assert!(
            outcome.report.quarantined.is_empty(),
            "dist candidates must be certified, not quarantined: {:?}",
            outcome.report.quarantined
        );
    }

    #[test]
    fn sim_model_selection_agrees_with_dist_estimate() {
        // Acceptance property: the tuner selects dist(q) iff the
        // exchange-cost model predicts a win for the non-dist winner.
        // Assert agreement either way rather than hard-coding which
        // side wins at this size.
        let machine = spiral_sim::core_duo();
        let budget = 4usize;
        for n in [1024usize, 4096] {
            let baseline = Tuner::new(
                2,
                4,
                CostModel::Sim {
                    machine: machine.clone(),
                    warm: true,
                },
            )
            .tune_parallel(n)
            .unwrap()
            .unwrap();
            let mut predicted: Option<usize> = None;
            let mut best_cost = baseline.cost;
            for q in [2usize, 4] {
                let plan = Plan::from_formula(
                    &spiral_spl::builder::dist_tag(q, baseline.formula.clone()),
                    2,
                    4,
                )
                .unwrap()
                .fuse_exchanges();
                let Ok(spec) = spiral_codegen::shard::shard_plan(&plan, q) else {
                    continue;
                };
                let est = spiral_sim::estimate_dist(&plan, &spec, &machine, budget, true);
                if est.cycles < best_cost {
                    best_cost = est.cycles;
                    predicted = Some(q);
                }
            }
            let tuned = Tuner::new(
                2,
                4,
                CostModel::Sim {
                    machine: machine.clone(),
                    warm: true,
                },
            )
            .with_process_budget(budget)
            .tune_parallel(n)
            .unwrap()
            .unwrap();
            match predicted {
                Some(q) => {
                    assert!(
                        tuned.choice.contains(&format!("dist({q})")),
                        "n={n}: model predicts dist({q}) wins, tuner chose `{}`",
                        tuned.choice
                    );
                    assert_eq!(tuned.plan.dist_procs, q);
                    assert!(tuned.formula.has_dist_tag());
                }
                None => {
                    assert!(
                        !tuned.choice.contains("dist("),
                        "n={n}: model predicts no crossover, tuner chose `{}`",
                        tuned.choice
                    );
                }
            }
        }
    }

    #[test]
    fn dist_winner_still_computes_the_dft() {
        // Whatever the dist dimension decides, the returned plan must
        // stay executable in-process and correct (the tag is
        // semantically transparent).
        let t = Tuner::new(
            2,
            4,
            CostModel::Sim {
                machine: spiral_sim::core_duo(),
                warm: true,
            },
        )
        .with_process_budget(4);
        let tuned = t.tune_parallel(4096).unwrap().unwrap();
        let x = ramp(4096);
        assert_slices_close(
            &tuned.plan.execute(&x),
            &spiral_spl::builder::dft(4096).eval(&x),
            1e-5 * 4096.0,
        );
    }

    #[test]
    fn report_counts_evaluated_candidates() {
        let t = Tuner::new(2, 4, CostModel::Analytic);
        let outcome = t.tune_parallel_report(256).unwrap();
        assert!(outcome.best.is_some());
        assert!(outcome.report.evaluated >= 1);
        assert!(
            outcome.report.quarantined.is_empty(),
            "healthy candidates quarantined: {:?}",
            outcome.report.quarantined
        );
    }
}
