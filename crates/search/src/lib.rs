//! # spiral-search — the search/learning block (paper §2.3, Figure 1)
//!
//! Spiral adapts to the target platform by searching the space of
//! recursion strategies (rule trees) and, for shared memory, the
//! top-level split of the multicore Cooley–Tukey formula:
//!
//! * [`cost::CostModel`] — analytic, simulator-cycle, or wall-clock
//!   candidate costing;
//! * [`dp`] — dynamic programming over rule trees (Spiral's default);
//! * [`random`] — random sampling baseline;
//! * [`evolve`] — evolutionary search (ref. [24]);
//! * [`tuner::Tuner`] — the full feedback loop producing a tuned
//!   [`spiral_codegen::Plan`].

#![warn(missing_docs)]

pub mod cost;
pub mod dp;
pub mod evolve;
pub mod random;
pub mod tuner;

pub use cost::CostModel;
pub use dp::{dp_search, SearchResult};
pub use evolve::{evolve_search, EvolveOpts};
pub use random::{random_search, random_tree};
pub use spiral_codegen::SpiralError;
pub use tuner::{QuarantineEntry, TuneOutcome, TuneReport, Tuned, Tuner};
