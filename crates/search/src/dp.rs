//! Dynamic-programming search over rule trees (the default search
//! strategy in Spiral's search/learning block, paper §2.3).
//!
//! DP assumes the best implementation of a sub-transform is independent
//! of its context: `best(n) = argmin over n = m·k of Ct(best(m),
//! best(k))`, plus the codelet-leaf option for small `n`. Each candidate
//! is compiled and costed with the configured [`CostModel`].

use crate::cost::CostModel;
use spiral_rewrite::RuleTree;
use spiral_spl::num::splittings;
use std::collections::HashMap;

/// DP search result for one size.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The winning recursion strategy.
    pub tree: RuleTree,
    /// Its cost under the search's model.
    pub cost: f64,
    /// Number of candidate plans compiled and costed.
    pub evaluated: usize,
}

/// Run DP over all divisors of `n`.
pub fn dp_search(n: usize, max_leaf: usize, mu: usize, model: &CostModel) -> SearchResult {
    let mut memo: HashMap<usize, (RuleTree, f64)> = HashMap::new();
    let mut evaluated = 0usize;
    let (tree, cost) = best(n, max_leaf, mu, model, &mut memo, &mut evaluated);
    SearchResult {
        tree,
        cost,
        evaluated,
    }
}

fn best(
    n: usize,
    max_leaf: usize,
    mu: usize,
    model: &CostModel,
    memo: &mut HashMap<usize, (RuleTree, f64)>,
    evaluated: &mut usize,
) -> (RuleTree, f64) {
    if let Some(hit) = memo.get(&n) {
        return hit.clone();
    }
    let mut cands: Vec<RuleTree> = Vec::new();
    if n <= max_leaf {
        cands.push(RuleTree::Leaf(n));
    }
    for (m, k) in splittings(n) {
        let (mt, _) = best(m, max_leaf, mu, model, memo, evaluated);
        let (kt, _) = best(k, max_leaf, mu, model, memo, evaluated);
        cands.push(RuleTree::Ct(Box::new(mt), Box::new(kt)));
    }
    if cands.is_empty() {
        cands.push(RuleTree::Leaf(n)); // prime above max_leaf
    }
    let mut bt: Option<(RuleTree, f64)> = None;
    for t in cands {
        if let Some(c) = model.cost_tree(&t, mu) {
            *evaluated += 1;
            if bt.as_ref().is_none_or(|(_, bc)| c < *bc) {
                bt = Some((t, c));
            }
        }
    }
    let result = bt.expect("no costable candidate — MAX_CODELET too small?");
    memo.insert(n, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dp_finds_a_valid_tree() {
        let r = dp_search(64, 8, 4, &CostModel::Analytic);
        assert_eq!(r.tree.size(), 64);
        assert!(r.cost > 0.0);
        assert!(r.evaluated > 5);
    }

    #[test]
    fn dp_beats_or_matches_naive_radix2() {
        let model = CostModel::Analytic;
        let r = dp_search(256, 8, 4, &model);
        let radix2 = RuleTree::right_radix(256, 2);
        let base = model.cost_tree(&radix2, 4).unwrap();
        assert!(r.cost <= base, "DP {} vs radix-2 {}", r.cost, base);
    }

    #[test]
    fn dp_result_is_numerically_correct() {
        use spiral_spl::cplx::assert_slices_close;
        let r = dp_search(48, 8, 4, &CostModel::Analytic);
        let f = r.tree.expand().normalized();
        let x: Vec<spiral_spl::Cplx> = (0..48)
            .map(|k| spiral_spl::Cplx::new(k as f64, 1.0))
            .collect();
        assert_slices_close(&f.eval(&x), &spiral_spl::builder::dft(48).eval(&x), 1e-7);
    }

    #[test]
    fn dp_with_simulator_cost() {
        let model = CostModel::Sim {
            machine: spiral_sim::core_duo(),
            warm: true,
        };
        let r = dp_search(64, 8, 4, &model);
        assert_eq!(r.tree.size(), 64);
    }

    #[test]
    fn prime_sizes_fall_back_to_leaf() {
        let r = dp_search(13, 8, 1, &CostModel::Analytic);
        assert_eq!(r.tree, RuleTree::Leaf(13));
    }
}
