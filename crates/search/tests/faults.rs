//! Fault-injection tests for the tuner (feature `faults`): a search
//! over candidates that panic, wedge, or corrupt their output must
//! quarantine them — with reasons in the report — and still return a
//! valid tuned plan from the surviving candidates.

#![cfg(feature = "faults")]

use spiral_codegen::ParallelExecutor;
use spiral_search::{CostModel, Tuner};
use spiral_smp::barrier::BarrierKind;
use spiral_smp::faults::{install, Fault, FaultPlan, FaultSpec};
use spiral_spl::cplx::{assert_slices_close, Cplx};
use std::time::Duration;

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|k| Cplx::new(k as f64, 0.1 * k as f64))
        .collect()
}

/// Any-stage/any-thread spec restricted to one run index.
fn on_run(run: usize, fault: Fault) -> FaultSpec {
    FaultSpec {
        stage: None,
        thread: None,
        run: Some(run),
        probability: 1.0,
        fault,
    }
}

/// The tuner's host-measurement search over n=256, p=2, µ=4 has three
/// split candidates (m ∈ {8, 16, 32}). Each candidate's warm-up is one
/// executor run, so run-indexed faults target individual candidates:
/// the first panics, the second produces NaN output. Both must be
/// quarantined with reasons, and the third must win with a correct
/// plan.
#[test]
fn tuner_quarantines_faulting_candidates_and_still_tunes() {
    let (n, p, mu) = (256usize, 2usize, 4usize);
    let model = CostModel::Host {
        reps: 1,
        executor: Some(ParallelExecutor::with_watchdog(
            p,
            BarrierKind::Park,
            Duration::from_millis(300),
        )),
    };
    let tuner = Tuner::new(p, mu, model);
    let _g = install(FaultPlan {
        seed: 11,
        specs: vec![
            // Candidate 0 (m=8) panics during its warm-up run.
            on_run(0, Fault::Panic),
            // Candidate 1 (m=16) silently corrupts its output.
            on_run(1, Fault::CorruptNan),
        ],
    });
    let outcome = tuner.tune_parallel_report(n).unwrap();
    assert_eq!(outcome.report.evaluated, 3, "expected 3 split candidates");
    assert_eq!(
        outcome.report.quarantined.len(),
        2,
        "report: {:?}",
        outcome.report.quarantined
    );
    assert!(
        outcome.report.quarantined[0].reason.contains("panicked"),
        "first quarantine reason: {}",
        outcome.report.quarantined[0].reason
    );
    assert!(
        outcome.report.quarantined[1].reason.contains("non-finite"),
        "second quarantine reason: {}",
        outcome.report.quarantined[1].reason
    );
    let best = outcome.best.expect("one healthy candidate must survive");
    assert!(best.cost.is_finite());
    // The winner is a real, correct DFT plan.
    let x = ramp(n);
    assert_slices_close(
        &best.plan.execute(&x),
        &spiral_spl::builder::dft(n).eval(&x),
        1e-6,
    );
}

/// A candidate whose measurement wedges (stage delay past the executor
/// watchdog) is quarantined on a timeout, in bounded time, and the
/// search still completes.
#[test]
fn tuner_quarantines_wedged_candidate_on_watchdog() {
    let (n, p, mu) = (256usize, 2usize, 4usize);
    let model = CostModel::Host {
        reps: 1,
        executor: Some(ParallelExecutor::with_watchdog(
            p,
            BarrierKind::Park,
            Duration::from_millis(100),
        )),
    };
    let tuner = Tuner::new(p, mu, model);
    let _g = install(FaultPlan {
        seed: 13,
        specs: vec![FaultSpec {
            stage: Some(0),
            thread: Some(1),
            run: Some(0),
            probability: 1.0,
            fault: Fault::Delay(Duration::from_millis(500)),
        }],
    });
    let t0 = std::time::Instant::now();
    let outcome = tuner.tune_parallel_report(n).unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "search did not complete in bounded time"
    );
    assert_eq!(outcome.report.quarantined.len(), 1);
    assert!(
        outcome.report.quarantined[0].reason.contains("barrier")
            || outcome.report.quarantined[0].reason.contains("watchdog"),
        "quarantine reason: {}",
        outcome.report.quarantined[0].reason
    );
    assert!(outcome.best.is_some());
}
