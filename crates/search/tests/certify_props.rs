//! Property tests for static certification: whatever rule tree the
//! search draws and whatever the tuner selects, the lowered plan is
//! *provably* `DFT_n` (exact symbolic pass) with sound dataflow — and
//! deliberately corrupted IR is always rejected by the matching pass.

use proptest::prelude::*;
use proptest::sample::select;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::LocalStage;
use spiral_search::random::random_tree;
use spiral_search::{CostModel, Tuner};
use spiral_verify::certify::{certify_plan, CertOptions, CertPass};

fn assert_certified(plan: &Plan, what: &str) -> Result<(), String> {
    let rep = certify_plan(plan, &CertOptions::default());
    prop_assert!(
        rep.is_certified(),
        "{what} (n={}, p={}, µ={}) rejected: {}",
        plan.n,
        plan.threads,
        plan.mu,
        rep.findings[0]
    );
    prop_assert_eq!(rep.symbolic_certified, Some(true));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any random rule tree at n ∈ {2^2..2^6}, lowered sequentially,
    /// certifies: exact equality with DFT_n under both the interpreter
    /// and the cemit semantics, plus clean dataflow.
    fn random_rule_trees_certify(
        k in 2u32..=6,
        leaf in select(vec![2usize, 4, 8]),
        seed in 0u64..1_000,
    ) {
        let n = 1usize << k;
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, leaf, &mut rng);
        let f = tree.expand().normalized();
        let plan = Plan::from_formula(&f, 1, 1).unwrap();
        assert_certified(&plan, "random tree")?;
    }

    /// Tuner winners at n ∈ {2^4..2^6}, p ∈ {1, 2, 4} — including the
    /// fused-exchange post-pass the tuner applies — certify.
    fn tuner_winners_certify(
        k in 4u32..=6,
        p in select(vec![1usize, 2, 4]),
        mu in select(vec![1usize, 2]),
    ) {
        let n = 1usize << k;
        let tuner = Tuner::new(p, mu, CostModel::Analytic);
        let tuned = if p == 1 {
            Some(tuner.tune_sequential(n).unwrap())
        } else {
            tuner.tune_parallel(n).unwrap()
        };
        let Some(t) = tuned else { return Ok(()) }; // no legal split at this (n, p, µ)
        assert_certified(&t.plan, "tuner winner")?;
    }

    /// Each seeded corruption of a certified plan is caught by the
    /// matching pass: value corruptions (off-by-one twiddle) by the
    /// symbolic pass, structural corruptions (swapped stride, dropped
    /// stage) by at least one of the two.
    fn corrupted_ir_is_rejected(
        k in 3u32..=5,
        kind in 0usize..3,
        seed in 0u64..100,
    ) {
        let n = 1usize << k;
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, 4, &mut rng);
        let mut plan = Plan::from_formula(&tree.expand().normalized(), 1, 1).unwrap();
        let mut hit = false;
        for step in &mut plan.steps {
            let Step::Seq(p) = step else { continue };
            match kind {
                // Off-by-one twiddle: rotate one table entry.
                0 => {
                    for stage in &mut p.stages {
                        let spin = spiral_spl::cplx::Cplx::cis(-2.0 * std::f64::consts::PI / (n as f64));
                        let corrupt = |w: &std::sync::Arc<Vec<spiral_spl::cplx::Cplx>>| {
                            let mut w = w.as_ref().clone();
                            let i = w.len() - 1;
                            w[i] *= spin;
                            std::sync::Arc::new(w)
                        };
                        match stage {
                            LocalStage::Kernel(ks) => {
                                if let Some(w) = &ks.twiddle {
                                    ks.twiddle = Some(corrupt(w));
                                } else if let Some(w) = &ks.twiddle_out {
                                    ks.twiddle_out = Some(corrupt(w));
                                } else {
                                    continue;
                                }
                            }
                            LocalStage::Scale(w) => *w = corrupt(w),
                            LocalStage::Permute(_) => continue,
                        }
                        hit = true;
                        break;
                    }
                }
                // Swapped loop strides.
                1 => {
                    'stages: for stage in &mut p.stages {
                        let LocalStage::Kernel(ks) = stage else { continue };
                        for d in &mut ks.loops {
                            if d.in_stride != d.out_stride {
                                std::mem::swap(&mut d.in_stride, &mut d.out_stride);
                                hit = true;
                                break 'stages;
                            }
                        }
                    }
                }
                // Dropped stage.
                _ => {
                    if p.stages.len() > 1 {
                        p.stages.pop();
                        hit = true;
                    }
                }
            }
            if hit {
                break;
            }
        }
        if !hit {
            return Ok(()); // this tree has nothing of the requested kind to corrupt
        }
        let rep = certify_plan(&plan, &CertOptions::default());
        prop_assert!(!rep.is_certified(), "corruption kind {kind} went undetected");
        if kind == 0 {
            // Value corruption is invisible to dataflow; the symbolic
            // pass must be the one that fires.
            prop_assert_eq!(rep.findings[0].pass, CertPass::Symbolic);
        }
    }
}
