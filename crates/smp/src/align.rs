//! Cache-line aligned buffers.
//!
//! The paper assumes "all shared data vectors are aligned at cache line
//! boundaries in the final program" (§3.1) — the `P ⊗̄ I_µ` false-sharing
//! guarantee depends on it. `AlignedVec` provides that alignment.

use crate::error::SpiralError;
use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::ops::{Deref, DerefMut};

/// Default alignment: 64 bytes (one cache line on every platform the paper
/// evaluates; with 16-byte complex doubles this is µ = 4).
pub const CACHE_LINE_BYTES: usize = 64;

/// A fixed-size, zero-initialized, cache-line-aligned buffer of `T`.
pub struct AlignedVec<T> {
    ptr: *mut T,
    len: usize,
    layout: Layout,
}

// Safety: AlignedVec owns its allocation exclusively, like Vec.
unsafe impl<T: Send> Send for AlignedVec<T> {}
unsafe impl<T: Sync> Sync for AlignedVec<T> {}

impl<T: Copy + Default> AlignedVec<T> {
    /// Allocate `len` zeroed elements aligned to `align` bytes, or
    /// return [`SpiralError::Alloc`] when the request is unsatisfiable:
    /// a non-power-of-two alignment, a byte size that overflows, a
    /// layout beyond `isize::MAX`, or allocator failure. `len == 0` is
    /// explicitly supported (one element is reserved so the base pointer
    /// stays aligned and deallocatable).
    pub fn try_with_alignment(len: usize, align: usize) -> Result<Self, SpiralError> {
        let fail = |reason: &'static str| SpiralError::Alloc {
            elems: len,
            align,
            reason,
        };
        if !align.is_power_of_two() {
            return Err(fail("alignment must be a power of two"));
        }
        let align = align.max(std::mem::align_of::<T>());
        let bytes = len
            .max(1)
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| fail("byte size overflows usize"))?;
        let layout =
            Layout::from_size_align(bytes, align).map_err(|_| fail("layout exceeds isize::MAX"))?;
        // Safety: layout has nonzero size (len.max(1)).
        let ptr = unsafe { alloc_zeroed(layout) }.cast::<T>();
        if ptr.is_null() {
            return Err(fail("allocator returned null"));
        }
        Ok(AlignedVec { ptr, len, layout })
    }

    /// Allocate `len` zeroed elements aligned to `align` bytes.
    /// `align` must be a power of two and at least `align_of::<T>()`.
    /// Panics when the request is unsatisfiable; see
    /// [`try_with_alignment`](Self::try_with_alignment) for the fallible
    /// variant.
    pub fn with_alignment(len: usize, align: usize) -> Self {
        Self::try_with_alignment(len, align).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Allocate `len` zeroed elements aligned to a cache line.
    pub fn new(len: usize) -> Self {
        Self::with_alignment(len, CACHE_LINE_BYTES)
    }

    /// Copy from a slice (must have the same length).
    pub fn copy_from(&mut self, src: &[T]) {
        assert_eq!(src.len(), self.len);
        self.as_mut_slice().copy_from_slice(src);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared view of the contents.
    pub fn as_slice(&self) -> &[T] {
        // Safety: ptr valid for len elements, zero-initialized at alloc.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Exclusive view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // Safety: exclusive borrow of self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Raw base pointer (for the unsafe shared-buffer executor).
    pub fn as_ptr(&self) -> *mut T {
        self.ptr
    }
}

impl<T> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        // Safety: allocated with this layout in with_alignment.
        unsafe { dealloc(self.ptr.cast::<u8>(), self.layout) }
    }
}

impl<T: Copy + Default> Deref for AlignedVec<T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default> DerefMut for AlignedVec<T> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_respected() {
        for _ in 0..10 {
            let v: AlignedVec<f64> = AlignedVec::new(37);
            assert_eq!(v.as_ptr() as usize % CACHE_LINE_BYTES, 0);
        }
        let v: AlignedVec<u8> = AlignedVec::with_alignment(10, 4096);
        assert_eq!(v.as_ptr() as usize % 4096, 0);
    }

    #[test]
    fn zero_initialized_and_writable() {
        let mut v: AlignedVec<f64> = AlignedVec::new(100);
        assert!(v.iter().all(|&x| x == 0.0));
        v[3] = 1.5;
        assert_eq!(v[3], 1.5);
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn copy_from_slice_roundtrip() {
        let data: Vec<f64> = (0..64).map(|k| k as f64).collect();
        let mut v: AlignedVec<f64> = AlignedVec::new(64);
        v.copy_from(&data);
        assert_eq!(v.as_slice(), data.as_slice());
    }

    #[test]
    fn zero_length_is_fine() {
        let v: AlignedVec<f64> = AlignedVec::new(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice().len(), 0);
    }

    #[test]
    #[should_panic]
    fn copy_from_checks_length() {
        let mut v: AlignedVec<f64> = AlignedVec::new(4);
        v.copy_from(&[1.0, 2.0]);
    }

    #[test]
    fn oversized_requests_return_err_instead_of_aborting() {
        // Byte size overflows usize.
        let r = AlignedVec::<f64>::try_with_alignment(usize::MAX, 64);
        assert!(matches!(r, Err(SpiralError::Alloc { .. })));
        // Byte size fits usize but the layout exceeds isize::MAX.
        let r = AlignedVec::<f64>::try_with_alignment(usize::MAX / 8, 64);
        assert!(matches!(r, Err(SpiralError::Alloc { .. })));
        // Bad alignment.
        let r = AlignedVec::<f64>::try_with_alignment(8, 48);
        assert!(matches!(r, Err(SpiralError::Alloc { .. })));
    }

    #[test]
    fn try_path_handles_zero_and_normal_sizes() {
        let v = AlignedVec::<f64>::try_with_alignment(0, 64).unwrap();
        assert!(v.is_empty());
        let v = AlignedVec::<f64>::try_with_alignment(33, 64).unwrap();
        assert_eq!(v.len(), 33);
        assert_eq!(v.as_ptr() as usize % 64, 0);
    }
}
