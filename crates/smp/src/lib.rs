//! # spiral-smp — shared-memory execution substrate
//!
//! The runtime layer under the generated programs:
//!
//! * [`align::AlignedVec`] — cache-line aligned buffers (the `P ⊗̄ I_µ`
//!   false-sharing guarantee assumes line-aligned vectors, paper §3.1);
//! * [`barrier`] — low-latency spin and parking barriers for the
//!   per-stage synchronization of the generated parallel programs;
//! * [`pool::Pool`] — a persistent worker pool ("thread pooling" in the
//!   paper's comparison with FFTW) so small transforms do not pay thread
//!   startup cost;
//! * [`topology`] — host processor count and the cache-line parameter µ;
//! * [`error::SpiralError`] — the workspace-wide structured error of the
//!   fault-tolerant execution layer (panic isolation, barrier watchdogs,
//!   poison recovery);
//! * [`faults`] *(feature `faults`)* — deterministic fault injection for
//!   exercising the failure model;
//! * [`trace`] *(feature `trace`)* — the [`trace::TraceSink`] hook the
//!   execution layers report per-thread timing events through (the
//!   collector lives in `spiral-trace`).

#![warn(missing_docs)]

pub mod align;
pub mod barrier;
pub mod error;
#[cfg(feature = "faults")]
pub mod faults;
pub mod pool;
pub mod topology;
#[cfg(feature = "trace")]
pub mod trace;

pub use align::{AlignedVec, CACHE_LINE_BYTES};
pub use barrier::{Barrier, BarrierKind, ParkBarrier, SpinBarrier};
pub use error::{lock_recover, panic_payload, SpiralError};
pub use pool::Pool;
