//! Workspace-wide structured errors for the fault-tolerant execution
//! layer.
//!
//! The paper's static-schedule runtime (per-stage barriers, persistent
//! pool) is only viable at production scale if failure is *bounded in
//! time and scoped in blast radius*: a panicking worker must surface as
//! an [`Err`] to the caller instead of deadlocking `Pool::run`, a dead
//! barrier peer must yield [`SpiralError::BarrierTimeout`] instead of
//! parking forever, and a poisoned lock must be recovered instead of
//! cascading. `SpiralError` is that contract, shared by `spiral-smp`,
//! `spiral-codegen`, and `spiral-search`.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Structured error for the execution stack (pool, barriers, executor,
/// tuner). Every fallible runtime entry point (`Pool::try_run`,
/// `ParallelExecutor::try_execute`, `Tuner::tune_parallel`) returns this.
#[derive(Debug, Clone)]
pub enum SpiralError {
    /// A job closure panicked on the given logical thread. The pool
    /// catches the unwind, records the payload, and keeps the worker
    /// alive, so the pool stays usable after this error.
    WorkerPanic {
        /// Logical thread id (0 = the calling thread).
        thread: usize,
        /// Stringified panic payload.
        payload: String,
    },
    /// A barrier watchdog expired: at least one of the `parties`
    /// participants never arrived within the deadline (dead or wedged
    /// peer). The timed-out waiter retracts its arrival so the barrier
    /// stays consistent for later phases.
    BarrierTimeout {
        /// Number of participants the barrier expects.
        parties: usize,
        /// How long the waiter waited before giving up.
        waited: Duration,
    },
    /// The pool-level watchdog expired while waiting for workers to
    /// drain. The pool still waits for stragglers before returning (the
    /// job closure borrows the caller's stack), but the run is reported
    /// as failed.
    WatchdogTimeout {
        /// Total time spent waiting for the job to drain.
        waited: Duration,
    },
    /// The worker pool is not in a runnable state (a worker thread
    /// died). Callers should degrade to sequential execution.
    PoolUnhealthy,
    /// An aligned allocation could not be performed.
    Alloc {
        /// Requested element count.
        elems: usize,
        /// Requested alignment in bytes.
        align: usize,
        /// Why the allocation failed.
        reason: &'static str,
    },
    /// A computed result contains a non-finite value (NaN/∞). Results
    /// are scanned before they leave the executor, so corrupted output
    /// is never silently returned.
    NonFinite {
        /// Index of the first offending element.
        index: usize,
        /// Where the value was observed.
        context: String,
    },
    /// A plan could not be executed as requested (size/thread mismatch,
    /// failed static verification).
    Plan(String),
    /// A formula failed to lower to an executable plan.
    Lower(String),
    /// The search layer could not produce a result.
    Search(String),
}

impl SpiralError {
    /// True for errors caused by the runtime failing underneath a valid
    /// request (panic, timeout, corruption) — the class the resilient
    /// executor may retry on the verified sequential path. Deterministic
    /// misuse (bad plan, bad lowering) is excluded: retrying cannot fix
    /// it.
    pub fn is_runtime_fault(&self) -> bool {
        matches!(
            self,
            SpiralError::WorkerPanic { .. }
                | SpiralError::BarrierTimeout { .. }
                | SpiralError::WatchdogTimeout { .. }
                | SpiralError::PoolUnhealthy
                | SpiralError::NonFinite { .. }
        )
    }
}

impl std::fmt::Display for SpiralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpiralError::WorkerPanic { thread, payload } => {
                write!(f, "worker thread {thread} panicked: {payload}")
            }
            SpiralError::BarrierTimeout { parties, waited } => write!(
                f,
                "barrier watchdog expired after {waited:?}: not all {parties} parties arrived"
            ),
            SpiralError::WatchdogTimeout { waited } => {
                write!(
                    f,
                    "pool watchdog expired after {waited:?} waiting for workers"
                )
            }
            SpiralError::PoolUnhealthy => write!(f, "worker pool unhealthy (worker thread died)"),
            SpiralError::Alloc {
                elems,
                align,
                reason,
            } => write!(
                f,
                "cannot allocate {elems} elements aligned to {align} bytes: {reason}"
            ),
            SpiralError::NonFinite { index, context } => {
                write!(f, "non-finite value at index {index} in {context}")
            }
            SpiralError::Plan(msg) => write!(f, "{msg}"),
            SpiralError::Lower(msg) => write!(f, "lowering failed: {msg}"),
            SpiralError::Search(msg) => write!(f, "search failed: {msg}"),
        }
    }
}

impl std::error::Error for SpiralError {}

/// Lock a mutex, recovering from poisoning instead of panicking.
///
/// With panic isolation in the pool, a panicked job can poison shared
/// locks; the data they guard (job slots, barrier counters, panic
/// records) stays consistent because every critical section restores its
/// invariants before any panic-capable call. Propagating the poison
/// would turn one contained failure into a cascade of `.unwrap()`
/// panics.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Render a `catch_unwind` payload as a human-readable string.
pub fn panic_payload(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(5i32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _g = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 5);
        *lock_recover(&m) = 7;
        assert_eq!(*lock_recover(&m), 7);
    }

    #[test]
    fn payloads_render() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_payload(p), "static str");
        let p = catch_unwind(|| panic!("formatted {}", 3)).unwrap_err();
        assert_eq!(panic_payload(p), "formatted 3");
    }

    #[test]
    fn error_classification() {
        assert!(SpiralError::WorkerPanic {
            thread: 1,
            payload: "x".into()
        }
        .is_runtime_fault());
        assert!(!SpiralError::Plan("bad".into()).is_runtime_fault());
        assert!(!SpiralError::Lower("bad".into()).is_runtime_fault());
    }
}
