//! The substrate-level tracing hooks (compiled only with the `trace`
//! feature).
//!
//! The execution layer reports per-thread timing events through two
//! traits:
//!
//! * [`TraceSink`] — *aggregate* per-(stage, thread) durations: the pool
//!   reports whole-job spans, the stage executor above reports compute
//!   and barrier-wait totals. Enough for load-imbalance and barrier-share
//!   metrics, but order- and gap-blind.
//! * [`TimelineSink`] — *temporal* events: timestamped spans
//!   (pool job, per-stage compute, barrier wait, tuner candidate) and
//!   instants (barrier release, watchdog fire, candidate rejection).
//!   This is what a Chrome-trace/Perfetto timeline is built from —
//!   scheduling gaps and barrier convoys are visible only here.
//!
//! Both traits live here — below every consumer — so the pool can accept
//! a sink without depending on the collector crate (`spiral-trace`),
//! which provides the canonical implementations.
//!
//! Mirroring the `faults` feature, none of this exists in a default
//! build: the hook methods, the extra `Pool` entry points, and every
//! call site compile out entirely, so the disabled-feature overhead is
//! exactly zero by construction.

use std::time::{Duration, Instant};

/// Receiver for execution timing events.
///
/// Implementations are written to concurrently from all pool threads;
/// each `(stage, tid)` pair is only ever reported by thread `tid`, so a
/// sink can keep per-thread slots free of write sharing (see
/// `spiral-trace`'s cache-line-padded collector).
pub trait TraceSink: Sync {
    /// Thread `tid` spent `compute` executing its statically scheduled
    /// portion of stage `stage`: `jobs` schedulable units covering
    /// `elements` output elements, then `barrier_wait` blocked at the
    /// stage barrier (arrival through release).
    fn stage(
        &self,
        tid: usize,
        stage: usize,
        compute: Duration,
        barrier_wait: Duration,
        jobs: u64,
        elements: u64,
    );

    /// Thread `tid`'s whole pool job (all stages plus barrier waits)
    /// took `total`.
    fn pool_job(&self, tid: usize, total: Duration);
}

/// What a timeline span covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// A thread's whole pool job (stage 0; spans every stage).
    PoolJob,
    /// One thread's statically scheduled portion of one stage.
    StageCompute,
    /// Blocked at the stage barrier, arrival through release.
    BarrierWait,
    /// The tuner evaluating one candidate (stage = candidate index).
    TunerCandidate,
    /// One whole transform executed as part of a batch (stage =
    /// transform index within the batch).
    BatchTransform,
    /// One served network request, admission through response write
    /// (stage = request sequence number on that server worker).
    RequestServe,
    /// One coalesced batch pushed through the plan executor / thread
    /// pool by a serving dispatcher (stage = dispatch sequence number).
    /// This is the pool-execute phase of a served request: the slice of
    /// its life actually spent computing, as opposed to queued or being
    /// parsed.
    PoolExecute,
}

/// What a timeline instant marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkKind {
    /// The stage barrier released this thread (one per thread per stage
    /// on a clean run, so a stage's marks must count exactly `p`).
    BarrierRelease,
    /// A barrier/pool watchdog expired on this thread.
    WatchdogFire,
    /// The tuner quarantined the candidate (stage = candidate index).
    TunerReject,
    /// A serving SLO breach: the request identified by `stage` (its
    /// sequence number on the recording worker) blew its latency budget
    /// or was shed. Recorded next to the request's `RequestServe` span
    /// so a flight-recorder export marks the triggering request.
    SloBreach,
}

/// Receiver for timestamped execution events — the temporal counterpart
/// of [`TraceSink`].
///
/// Implementations are written to concurrently from all pool threads;
/// every event for thread `tid` is reported *by* thread `tid`, so a sink
/// can keep per-thread ring buffers free of write sharing (see
/// `spiral-trace`'s `Timeline`). Timestamps are the caller's
/// [`Instant`]s, taken at the event boundary itself; the sink anchors
/// them to its own epoch.
pub trait TimelineSink: Sync {
    /// Thread `tid` spent `[start, end]` in a `kind` span of `stage`
    /// (stage index for executor spans, candidate index for tuner spans,
    /// 0 for pool jobs).
    fn span(&self, tid: usize, kind: SpanKind, stage: u32, start: Instant, end: Instant);

    /// Thread `tid` hit a `kind` instant for `stage` at `at`.
    fn mark(&self, tid: usize, kind: MarkKind, stage: u32, at: Instant);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingSink {
        jobs: AtomicU64,
        total_ns: AtomicU64,
    }

    impl TraceSink for CountingSink {
        fn stage(&self, _: usize, _: usize, _: Duration, _: Duration, _: u64, _: u64) {}
        fn pool_job(&self, _tid: usize, total: Duration) {
            self.jobs.fetch_add(1, Ordering::Relaxed);
            self.total_ns
                .fetch_add(u64::try_from(total.as_nanos()).unwrap(), Ordering::Relaxed);
        }
    }

    #[test]
    fn pool_reports_one_job_span_per_thread() {
        let sink = CountingSink {
            jobs: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        };
        let pool = Pool::new(3);
        pool.try_run_traced(&|_tid| std::thread::sleep(Duration::from_millis(2)), &sink)
            .unwrap();
        assert_eq!(sink.jobs.load(Ordering::Relaxed), 3);
        // Every span covers at least the sleep.
        assert!(sink.total_ns.load(Ordering::Relaxed) >= 3 * 2_000_000);
    }

    #[test]
    fn traced_run_preserves_panic_isolation() {
        let sink = CountingSink {
            jobs: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        };
        let pool = Pool::new(2);
        let err = pool
            .try_run_traced(
                &|tid| {
                    if tid == 1 {
                        panic!("traced boom");
                    }
                },
                &sink,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SpiralError::WorkerPanic { thread: 1, .. }
        ));
        // The surviving thread still reported its span.
        assert!(sink.jobs.load(Ordering::Relaxed) >= 1);
        assert!(pool.healthy());
    }
}
