//! The substrate-level tracing hook (compiled only with the `trace`
//! feature).
//!
//! The execution layer reports per-thread timing events through the
//! [`TraceSink`] trait: the pool reports whole-job spans, the stage
//! executor above reports per-(stage, thread) compute and barrier-wait
//! spans. The trait lives here — below every consumer — so the pool can
//! accept a sink without depending on the collector crate
//! (`spiral-trace`), which provides the canonical implementation.
//!
//! Mirroring the `faults` feature, none of this exists in a default
//! build: the hook methods, the extra `Pool` entry point, and every
//! call site compile out entirely, so the disabled-feature overhead is
//! exactly zero by construction.

use std::time::Duration;

/// Receiver for execution timing events.
///
/// Implementations are written to concurrently from all pool threads;
/// each `(stage, tid)` pair is only ever reported by thread `tid`, so a
/// sink can keep per-thread slots free of write sharing (see
/// `spiral-trace`'s cache-line-padded collector).
pub trait TraceSink: Sync {
    /// Thread `tid` spent `compute` executing its statically scheduled
    /// portion of stage `stage`: `jobs` schedulable units covering
    /// `elements` output elements, then `barrier_wait` blocked at the
    /// stage barrier (arrival through release).
    fn stage(
        &self,
        tid: usize,
        stage: usize,
        compute: Duration,
        barrier_wait: Duration,
        jobs: u64,
        elements: u64,
    );

    /// Thread `tid`'s whole pool job (all stages plus barrier waits)
    /// took `total`.
    fn pool_job(&self, tid: usize, total: Duration);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::Pool;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingSink {
        jobs: AtomicU64,
        total_ns: AtomicU64,
    }

    impl TraceSink for CountingSink {
        fn stage(&self, _: usize, _: usize, _: Duration, _: Duration, _: u64, _: u64) {}
        fn pool_job(&self, _tid: usize, total: Duration) {
            self.jobs.fetch_add(1, Ordering::Relaxed);
            self.total_ns
                .fetch_add(total.as_nanos() as u64, Ordering::Relaxed);
        }
    }

    #[test]
    fn pool_reports_one_job_span_per_thread() {
        let sink = CountingSink {
            jobs: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        };
        let pool = Pool::new(3);
        pool.try_run_traced(&|_tid| std::thread::sleep(Duration::from_millis(2)), &sink)
            .unwrap();
        assert_eq!(sink.jobs.load(Ordering::Relaxed), 3);
        // Every span covers at least the sleep.
        assert!(sink.total_ns.load(Ordering::Relaxed) >= 3 * 2_000_000);
    }

    #[test]
    fn traced_run_preserves_panic_isolation() {
        let sink = CountingSink {
            jobs: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        };
        let pool = Pool::new(2);
        let err = pool
            .try_run_traced(
                &|tid| {
                    if tid == 1 {
                        panic!("traced boom");
                    }
                },
                &sink,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            crate::error::SpiralError::WorkerPanic { thread: 1, .. }
        ));
        // The surviving thread still reported its span.
        assert!(sink.jobs.load(Ordering::Relaxed) >= 1);
        assert!(pool.healthy());
    }
}
