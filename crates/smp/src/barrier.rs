//! Thread barriers.
//!
//! The paper's generated programs synchronize only between algorithm
//! stages, and stress *low-latency, minimal-overhead* synchronization for
//! in-cache problem sizes (§3.2). Two implementations are provided:
//!
//! * [`SpinBarrier`] — sense-reversing spin barrier: lowest latency when
//!   every thread has its own core (the paper's machines);
//! * [`ParkBarrier`] — parks waiting threads in the OS: the right choice
//!   on oversubscribed hosts (e.g. more threads than cores).
//!
//! The barrier-overhead ablation bench (`ABL-BAR`) compares them.
//!
//! ## Failure model
//!
//! [`Barrier::wait_deadline`] bounds how long a waiter can be held by a
//! dead or wedged peer: past the deadline it *retracts its arrival* (so
//! the barrier stays consistent for the surviving parties) and returns
//! [`SpiralError::BarrierTimeout`]. Together with the pool's panic
//! isolation this turns "one worker died mid-stage" from a permanent
//! deadlock into an `Err` within bounded time. Internal locks recover
//! from poisoning ([`lock_recover`]) so one panicked waiter does not turn
//! every later barrier call into a panic cascade.

use crate::error::{lock_recover, SpiralError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Common interface so the executor can switch implementations.
pub trait Barrier: Send + Sync {
    /// Block until all `n` participants arrive. Returns `true` on exactly
    /// one participant (the "leader") per phase.
    fn wait(&self) -> bool;

    /// Like [`wait`](Barrier::wait), but give up after `deadline`: the
    /// waiter retracts its arrival and returns
    /// [`SpiralError::BarrierTimeout`]. Arrival retraction keeps the
    /// barrier usable by the remaining parties (and by everyone, once
    /// the failed run is cleaned up).
    fn wait_deadline(&self, deadline: Duration) -> Result<bool, SpiralError>;

    /// Number of participants.
    fn parties(&self) -> usize;

    /// Restore the barrier to its pristine between-phases state. Call
    /// only when no thread is inside [`wait`](Barrier::wait) — e.g.
    /// after a failed run has fully drained.
    fn reset(&self);
}

const SENSE_SHIFT: u32 = usize::BITS - 1;
const SENSE_BIT: usize = 1usize << SENSE_SHIFT;
const COUNT_MASK: usize = SENSE_BIT - 1;

/// Sense-reversing centralized spin barrier.
///
/// The phase sense and arrival count are packed into one atomic word so
/// a timed-out waiter can retract its arrival with a single CAS that
/// also verifies the phase has not been released meanwhile — retraction
/// can never steal an arrival from a later phase.
pub struct SpinBarrier {
    n: usize,
    /// Bit `usize::BITS-1`: phase sense; low bits: arrival count.
    state: AtomicUsize,
}

impl SpinBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n < COUNT_MASK);
        SpinBarrier {
            n,
            state: AtomicUsize::new(0),
        }
    }

    fn arrive(&self) -> (usize, usize) {
        let old = self.state.fetch_add(1, Ordering::AcqRel);
        let sense = old & SENSE_BIT;
        let count = (old & COUNT_MASK) + 1;
        if count == self.n {
            // Release the others; publishes all pre-barrier writes.
            self.state.store(sense ^ SENSE_BIT, Ordering::Release);
        }
        (sense, count)
    }
}

impl Barrier for SpinBarrier {
    fn wait(&self) -> bool {
        let (sense, count) = self.arrive();
        if count == self.n {
            return true;
        }
        let mut spins = 0u32;
        while self.state.load(Ordering::Acquire) & SENSE_BIT == sense {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                // Be polite on oversubscribed machines.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        false
    }

    fn wait_deadline(&self, deadline: Duration) -> Result<bool, SpiralError> {
        let (sense, count) = self.arrive();
        if count == self.n {
            return Ok(true);
        }
        let limit = Instant::now() + deadline;
        let mut spins = 0u32;
        loop {
            let cur = self.state.load(Ordering::Acquire);
            if cur & SENSE_BIT != sense {
                return Ok(false);
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
                if Instant::now() >= limit {
                    // Retract our arrival. The CAS covers the sense bit,
                    // so it can only succeed while this phase is still
                    // open — a release flips the sense and the CAS fails,
                    // in which case the phase completed and we're done.
                    let cnt = cur & COUNT_MASK;
                    if cnt > 0
                        && self
                            .state
                            .compare_exchange(
                                cur,
                                sense | (cnt - 1),
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok()
                    {
                        return Err(SpiralError::BarrierTimeout {
                            parties: self.n,
                            waited: deadline,
                        });
                    }
                    // Lost the race (another arrival/retraction or the
                    // release): loop and re-evaluate.
                }
            } else {
                std::hint::spin_loop();
            }
        }
    }

    fn parties(&self) -> usize {
        self.n
    }

    fn reset(&self) {
        // Keep the current sense (waiters derive theirs fresh per
        // phase), clear any stale arrivals.
        let sense = self.state.load(Ordering::Acquire) & SENSE_BIT;
        self.state.store(sense, Ordering::Release);
    }
}

/// Mutex/condvar barrier that parks waiting threads.
pub struct ParkBarrier {
    n: usize,
    state: Mutex<ParkState>,
    cv: Condvar,
}

struct ParkState {
    count: usize,
    generation: u64,
}

impl ParkBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ParkBarrier {
            n,
            state: Mutex::new(ParkState {
                count: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

impl Barrier for ParkBarrier {
    fn wait(&self) -> bool {
        let mut st = lock_recover(&self.state);
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            true
        } else {
            let gen = st.generation;
            let _st = self
                .cv
                .wait_while(st, |s| s.generation == gen)
                .unwrap_or_else(PoisonError::into_inner);
            false
        }
    }

    fn wait_deadline(&self, deadline: Duration) -> Result<bool, SpiralError> {
        let mut st = lock_recover(&self.state);
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(true);
        }
        let gen = st.generation;
        let limit = Instant::now() + deadline;
        loop {
            if st.generation != gen {
                return Ok(false);
            }
            let now = Instant::now();
            if now >= limit {
                // Retract our arrival (we hold the lock; the phase is
                // still open because the generation has not advanced).
                st.count = st.count.saturating_sub(1);
                return Err(SpiralError::BarrierTimeout {
                    parties: self.n,
                    waited: deadline,
                });
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(st, limit - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    fn parties(&self) -> usize {
        self.n
    }

    fn reset(&self) {
        let mut st = lock_recover(&self.state);
        st.count = 0;
        // Advance the generation and wake any straggler still parked
        // from a failed phase; it observes the new generation and leaves
        // as a non-leader.
        st.generation += 1;
        self.cv.notify_all();
    }
}

/// Which barrier implementation the executor should use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// Sense-reversing busy-wait barrier (lowest latency, needs a core
    /// per thread).
    Spin,
    /// Mutex/condvar barrier that parks waiters (oversubscription-safe).
    Park,
}

impl BarrierKind {
    /// Construct a barrier of this kind for `n` participants.
    pub fn build(self, n: usize) -> Box<dyn Barrier> {
        match self {
            BarrierKind::Spin => Box::new(SpinBarrier::new(n)),
            BarrierKind::Park => Box::new(ParkBarrier::new(n)),
        }
    }

    /// Sensible default for this host: spin when every thread can have a
    /// core, park when oversubscribed.
    pub fn auto(n: usize) -> BarrierKind {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if n <= cores {
            BarrierKind::Spin
        } else {
            BarrierKind::Park
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn exercise(barrier: Arc<dyn Barrier>, n: usize) {
        const ROUNDS: usize = 200;
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&barrier);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut leader_count = 0u64;
                for round in 0..ROUNDS {
                    // Everyone must observe the same count at each round.
                    let before = c.load(Ordering::SeqCst);
                    assert!(usize::try_from(before).unwrap() >= round * n);
                    c.fetch_add(1, Ordering::SeqCst);
                    if b.wait() {
                        leader_count += 1;
                    }
                    // After the barrier all n increments of this round
                    // are visible.
                    let after = c.load(Ordering::SeqCst);
                    assert!(
                        usize::try_from(after).unwrap() >= (round + 1) * n,
                        "{after} round {round}"
                    );
                    b.wait();
                }
                leader_count
            }));
        }
        let leaders: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly one leader per phase (two waits per round).
        assert_eq!(leaders, ROUNDS as u64);
        assert_eq!(counter.load(Ordering::SeqCst), (ROUNDS * n) as u64);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        exercise(Arc::new(SpinBarrier::new(4)), 4);
    }

    #[test]
    fn park_barrier_synchronizes() {
        exercise(Arc::new(ParkBarrier::new(4)), 4);
    }

    #[test]
    fn single_party_barrier_is_trivial() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
        let p = ParkBarrier::new(1);
        for _ in 0..10 {
            assert!(p.wait());
        }
    }

    #[test]
    fn kind_builders() {
        assert_eq!(BarrierKind::Spin.build(3).parties(), 3);
        assert_eq!(BarrierKind::Park.build(2).parties(), 2);
        // auto never panics
        let _ = BarrierKind::auto(2);
        let _ = BarrierKind::auto(64);
    }

    fn timeout_then_recover(barrier: Arc<dyn Barrier>) {
        // A lone waiter at a 2-party barrier must time out in bounded
        // time (its peer is "dead")...
        let err = barrier
            .wait_deadline(Duration::from_millis(30))
            .unwrap_err();
        assert!(matches!(
            err,
            SpiralError::BarrierTimeout { parties: 2, .. }
        ));
        // ...and the retraction must leave the barrier consistent: a
        // full 2-party round on the same instance completes.
        for _ in 0..3 {
            let b2 = Arc::clone(&barrier);
            let peer = std::thread::spawn(move || b2.wait_deadline(Duration::from_secs(5)));
            let mine = barrier.wait_deadline(Duration::from_secs(5)).unwrap();
            let theirs = peer.join().unwrap().unwrap();
            // Exactly one leader.
            assert!(mine ^ theirs);
        }
    }

    #[test]
    fn spin_barrier_timeout_retracts_arrival() {
        timeout_then_recover(Arc::new(SpinBarrier::new(2)));
    }

    #[test]
    fn park_barrier_timeout_retracts_arrival() {
        timeout_then_recover(Arc::new(ParkBarrier::new(2)));
    }

    fn reset_restores(barrier: Arc<dyn Barrier>) {
        let _ = barrier.wait_deadline(Duration::from_millis(10));
        barrier.reset();
        let b2 = Arc::clone(&barrier);
        let peer = std::thread::spawn(move || b2.wait());
        barrier.wait();
        peer.join().unwrap();
    }

    #[test]
    fn reset_after_failure_restores_both_kinds() {
        reset_restores(Arc::new(SpinBarrier::new(2)));
        reset_restores(Arc::new(ParkBarrier::new(2)));
    }

    #[test]
    fn wait_deadline_succeeds_when_all_arrive() {
        let b = Arc::new(SpinBarrier::new(3));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let b2 = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                b2.wait_deadline(Duration::from_secs(5)).unwrap()
            }));
        }
        let mine = b.wait_deadline(Duration::from_secs(5)).unwrap();
        let leaders = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&l| l)
            .count()
            + usize::from(mine);
        assert_eq!(leaders, 1);
    }
}
