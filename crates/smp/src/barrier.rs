//! Thread barriers.
//!
//! The paper's generated programs synchronize only between algorithm
//! stages, and stress *low-latency, minimal-overhead* synchronization for
//! in-cache problem sizes (§3.2). Two implementations are provided:
//!
//! * [`SpinBarrier`] — sense-reversing spin barrier: lowest latency when
//!   every thread has its own core (the paper's machines);
//! * [`ParkBarrier`] — parks waiting threads in the OS: the right choice
//!   on oversubscribed hosts (e.g. more threads than cores).
//!
//! The barrier-overhead ablation bench (`ABL-BAR`) compares them.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Common interface so the executor can switch implementations.
pub trait Barrier: Send + Sync {
    /// Block until all `n` participants arrive. Returns `true` on exactly
    /// one participant (the "leader") per phase.
    fn wait(&self) -> bool;
    /// Number of participants.
    fn parties(&self) -> usize;
}

/// Sense-reversing centralized spin barrier.
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }
}

impl Barrier for SpinBarrier {
    fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n {
            self.count.store(0, Ordering::Relaxed);
            // Release the others; publishes all pre-barrier writes.
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(1024) {
                    // Be polite on oversubscribed machines.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
            false
        }
    }

    fn parties(&self) -> usize {
        self.n
    }
}

/// Mutex/condvar barrier that parks waiting threads.
pub struct ParkBarrier {
    n: usize,
    state: Mutex<ParkState>,
    cv: Condvar,
}

struct ParkState {
    count: usize,
    generation: u64,
}

impl ParkBarrier {
    /// Barrier for `n` participants.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        ParkBarrier {
            n,
            state: Mutex::new(ParkState {
                count: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

impl Barrier for ParkBarrier {
    fn wait(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        st.count += 1;
        if st.count == self.n {
            st.count = 0;
            st.generation += 1;
            self.cv.notify_all();
            true
        } else {
            let gen = st.generation;
            let _st = self.cv.wait_while(st, |s| s.generation == gen).unwrap();
            false
        }
    }

    fn parties(&self) -> usize {
        self.n
    }
}

/// Which barrier implementation the executor should use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BarrierKind {
    /// Sense-reversing busy-wait barrier (lowest latency, needs a core
    /// per thread).
    Spin,
    /// Mutex/condvar barrier that parks waiters (oversubscription-safe).
    Park,
}

impl BarrierKind {
    /// Construct a barrier of this kind for `n` participants.
    pub fn build(self, n: usize) -> Box<dyn Barrier> {
        match self {
            BarrierKind::Spin => Box::new(SpinBarrier::new(n)),
            BarrierKind::Park => Box::new(ParkBarrier::new(n)),
        }
    }

    /// Sensible default for this host: spin when every thread can have a
    /// core, park when oversubscribed.
    pub fn auto(n: usize) -> BarrierKind {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        if n <= cores {
            BarrierKind::Spin
        } else {
            BarrierKind::Park
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn exercise(barrier: Arc<dyn Barrier>, n: usize) {
        const ROUNDS: usize = 200;
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..n {
            let b = Arc::clone(&barrier);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut leader_count = 0u64;
                for round in 0..ROUNDS {
                    // Everyone must observe the same count at each round.
                    let before = c.load(Ordering::SeqCst);
                    assert!(before as usize >= round * n);
                    c.fetch_add(1, Ordering::SeqCst);
                    if b.wait() {
                        leader_count += 1;
                    }
                    // After the barrier all n increments of this round
                    // are visible.
                    let after = c.load(Ordering::SeqCst);
                    assert!(after as usize >= (round + 1) * n, "{after} round {round}");
                    b.wait();
                }
                leader_count
            }));
        }
        let leaders: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Exactly one leader per phase (two waits per round).
        assert_eq!(leaders, ROUNDS as u64);
        assert_eq!(counter.load(Ordering::SeqCst), (ROUNDS * n) as u64);
    }

    #[test]
    fn spin_barrier_synchronizes() {
        exercise(Arc::new(SpinBarrier::new(4)), 4);
    }

    #[test]
    fn park_barrier_synchronizes() {
        exercise(Arc::new(ParkBarrier::new(4)), 4);
    }

    #[test]
    fn single_party_barrier_is_trivial() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
        let p = ParkBarrier::new(1);
        for _ in 0..10 {
            assert!(p.wait());
        }
    }

    #[test]
    fn kind_builders() {
        assert_eq!(BarrierKind::Spin.build(3).parties(), 3);
        assert_eq!(BarrierKind::Park.build(2).parties(), 2);
        // auto never panics
        let _ = BarrierKind::auto(2);
        let _ = BarrierKind::auto(64);
    }
}
