//! Persistent worker-thread pool.
//!
//! FFTW's experimental "thread pooling" (which the paper found broken on
//! 4 processors) exists to avoid paying thread-creation cost per
//! transform; Spiral-generated code assumes the same. This pool keeps
//! `p-1` workers parked between calls; [`Pool::run`] executes a closure
//! on all `p` logical threads (the caller participates as thread 0) and
//! returns when every thread has finished.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Type-erased job pointer. Valid only while the publishing `run` call is
/// blocked, which the completion protocol guarantees.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}
// Safety: the pointee is Sync and outlives all uses (see `run`).
unsafe impl Send for Job {}

struct Slot {
    generation: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    start: Condvar,
    /// Number of workers still running the current job.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// A pool of `p` logical threads: `p - 1` parked workers plus the caller.
pub struct Pool {
    p: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Create a pool presenting `p ≥ 1` logical threads.
    pub fn new(p: usize) -> Pool {
        assert!(p >= 1, "pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let handles = (1..p)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spiral-worker-{tid}"))
                    .spawn(move || worker_loop(tid, sh))
                    .expect("failed to spawn worker")
            })
            .collect();
        Pool { p, shared, handles }
    }

    /// Number of logical threads.
    pub fn size(&self) -> usize {
        self.p
    }

    /// Run `f(tid)` for every `tid` in `0..p` concurrently; the caller
    /// executes `f(0)`. Returns after all threads complete.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.p == 1 {
            f(0);
            return;
        }
        // Publish the job.
        {
            let mut slot = self.shared.slot.lock().unwrap();
            debug_assert!(slot.job.is_none(), "pool is not reentrant");
            self.shared.remaining.store(self.p - 1, Ordering::Release);
            slot.generation += 1;
            // Safety: erase the borrow's lifetime; `run` blocks until all
            // workers finish with the pointer, then clears the slot.
            let erased: *const (dyn Fn(usize) + Sync + 'static) =
                unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
            slot.job = Some(Job { f: erased });
            self.shared.start.notify_all();
        }
        // Participate as thread 0.
        f(0);
        // Wait for the workers.
        let mut guard = self.shared.done_lock.lock().unwrap();
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            guard = self.shared.done.wait(guard).unwrap();
        }
        // Clear the job so the pointer cannot be observed after return.
        self.shared.slot.lock().unwrap().job = None;
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            slot.generation += 1;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, sh: Arc<Shared>) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut slot = sh.slot.lock().unwrap();
            while slot.generation == seen_generation && !slot.shutdown {
                slot = sh.start.wait(slot).unwrap();
            }
            if slot.shutdown {
                return;
            }
            seen_generation = slot.generation;
            match &slot.job {
                Some(j) => Job { f: j.f },
                None => continue,
            }
        };
        // Safety: the publisher blocks in `run` until `remaining` hits 0,
        // so the closure outlives this call.
        let f = unsafe { &*job.f };
        f(tid);
        if sh.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = sh.done_lock.lock().unwrap();
            sh.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::{Barrier, BarrierKind};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_threads() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.run(&|tid| {
            assert!(tid < 4);
            hits.fetch_add(1 << (tid * 8), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0x01010101);
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(&|_tid| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let hit = AtomicU64::new(0);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            hit.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn threads_can_synchronize_with_barriers() {
        // The executor pattern: shared barrier between pipeline stages.
        let p = 4;
        let pool = Pool::new(p);
        let barrier = BarrierKind::Park.build(p);
        let barrier: &dyn Barrier = &*barrier;
        let stage_data: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
        pool.run(&|tid| {
            stage_data[tid].store((tid + 1) as u64, Ordering::SeqCst);
            barrier.wait();
            // After the barrier every thread sees all stage-1 writes.
            let sum: u64 = stage_data.iter().map(|a| a.load(Ordering::SeqCst)).sum();
            assert_eq!(sum, (1..=p as u64).sum::<u64>());
        });
    }

    #[test]
    fn writes_are_visible_after_run() {
        let pool = Pool::new(4);
        let data: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(&|tid| {
            for i in (tid..64).step_by(4) {
                data[i].store(i as u64, Ordering::Relaxed);
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), i as u64);
        }
    }
}
