//! Persistent worker-thread pool with panic isolation.
//!
//! FFTW's experimental "thread pooling" (which the paper found broken on
//! 4 processors) exists to avoid paying thread-creation cost per
//! transform; Spiral-generated code assumes the same. This pool keeps
//! `p-1` workers parked between calls; [`Pool::run`] executes a closure
//! on all `p` logical threads (the caller participates as thread 0) and
//! returns when every thread has finished.
//!
//! ## Failure model
//!
//! Every job invocation is wrapped in `catch_unwind`: a panicking job
//! *always* decrements the completion counter (no deadlocked `run`), the
//! payload is recorded, and [`Pool::try_run`] re-surfaces the first
//! recorded panic as [`SpiralError::WorkerPanic`]. Workers survive
//! panics, so the same pool instance runs subsequent healthy jobs. A
//! configurable watchdog bounds how long `try_run` credits the job: if
//! workers have not drained by the deadline the run is reported as
//! [`SpiralError::WatchdogTimeout`]. For memory safety `try_run` still
//! waits for stragglers before returning (the job closure borrows the
//! caller's stack); bounded termination is guaranteed by construction
//! because every blocking primitive reachable from a job (the stage
//! barriers) is itself deadline-bounded and stage compute is finite.

use crate::error::{lock_recover, panic_payload, SpiralError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default pool watchdog: generous, so healthy long transforms never
/// trip it; executors layer tighter stage-level deadlines underneath.
pub const DEFAULT_POOL_WATCHDOG: Duration = Duration::from_secs(60);

/// Type-erased job pointer. Valid only while the publishing `run` call is
/// blocked, which the completion protocol guarantees.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}
// Safety: the pointee is Sync and outlives all uses (see `run`).
unsafe impl Send for Job {}

struct Slot {
    generation: u64,
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<Slot>,
    start: Condvar,
    /// Number of workers still running the current job.
    remaining: AtomicUsize,
    done_lock: Mutex<()>,
    done: Condvar,
    /// Panics caught during the current job, in completion order.
    panics: Mutex<Vec<(usize, String)>>,
}

/// A pool of `p` logical threads: `p - 1` parked workers plus the caller.
pub struct Pool {
    p: usize,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    watchdog: Duration,
}

impl Pool {
    /// Create a pool presenting `p ≥ 1` logical threads with the default
    /// watchdog.
    pub fn new(p: usize) -> Pool {
        Pool::with_watchdog(p, DEFAULT_POOL_WATCHDOG)
    }

    /// Create a pool with an explicit job-drain watchdog.
    pub fn with_watchdog(p: usize, watchdog: Duration) -> Pool {
        assert!(p >= 1, "pool needs at least one thread");
        let shared = Arc::new(Shared {
            slot: Mutex::new(Slot {
                generation: 0,
                job: None,
                shutdown: false,
            }),
            start: Condvar::new(),
            remaining: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        });
        let handles = (1..p)
            .map(|tid| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("spiral-worker-{tid}"))
                    .spawn(move || worker_loop(tid, sh))
                    .expect("failed to spawn worker")
            })
            .collect();
        Pool {
            p,
            shared,
            handles,
            watchdog,
        }
    }

    /// Number of logical threads.
    pub fn size(&self) -> usize {
        self.p
    }

    /// The configured job-drain watchdog.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// Change the job-drain watchdog.
    pub fn set_watchdog(&mut self, watchdog: Duration) {
        self.watchdog = watchdog;
    }

    /// True when every worker thread is alive. Workers survive job
    /// panics (they are caught), so this goes false only if a worker
    /// died outside the catch (a defensive signal for callers that can
    /// degrade to sequential execution).
    pub fn healthy(&self) -> bool {
        self.handles.iter().all(|h| !h.is_finished())
    }

    /// Run `f(tid)` for every `tid` in `0..p` concurrently; the caller
    /// executes `f(0)`. Returns after all threads complete. Panics if
    /// any thread's portion panicked (see [`Pool::try_run`] for the
    /// non-panicking variant).
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if let Err(e) = self.try_run(f) {
            panic!("{e}");
        }
    }

    /// Like [`Pool::try_run`], but report each thread's whole-job span
    /// to `sink` (compiled only with the `trace` feature). A panicking
    /// job reports no span — the panic unwinds past the timing point —
    /// which matches the failed run being unusable for profiling anyway.
    #[cfg(feature = "trace")]
    pub fn try_run_traced(
        &self,
        f: &(dyn Fn(usize) + Sync),
        sink: &dyn crate::trace::TraceSink,
    ) -> Result<(), SpiralError> {
        self.try_run_observed(f, Some(sink), None)
    }

    /// Like [`Pool::try_run`], but report each thread's whole-job span to
    /// an aggregate `trace` sink, a temporal `timeline` sink, or both
    /// (compiled only with the `trace` feature). With both sinks `None`
    /// this is exactly [`Pool::try_run`]. A panicking job reports
    /// nothing — the panic unwinds past the timing points.
    #[cfg(feature = "trace")]
    pub fn try_run_observed(
        &self,
        f: &(dyn Fn(usize) + Sync),
        trace: Option<&dyn crate::trace::TraceSink>,
        timeline: Option<&dyn crate::trace::TimelineSink>,
    ) -> Result<(), SpiralError> {
        if trace.is_none() && timeline.is_none() {
            return self.try_run(f);
        }
        self.try_run(&|tid| {
            let t0 = Instant::now();
            f(tid);
            let t1 = Instant::now();
            if let Some(sink) = trace {
                sink.pool_job(tid, t1 - t0);
            }
            if let Some(tl) = timeline {
                tl.span(tid, crate::trace::SpanKind::PoolJob, 0, t0, t1);
            }
        })
    }

    /// Run `f(tid)` on all `p` threads, isolating panics: a panic on any
    /// thread is caught, the run completes on the other threads, and the
    /// first recorded panic returns as [`SpiralError::WorkerPanic`]. The
    /// pool remains usable after an `Err`.
    pub fn try_run(&self, f: &(dyn Fn(usize) + Sync)) -> Result<(), SpiralError> {
        if self.p == 1 {
            return match catch_unwind(AssertUnwindSafe(|| f(0))) {
                Ok(()) => Ok(()),
                Err(p) => Err(SpiralError::WorkerPanic {
                    thread: 0,
                    payload: panic_payload(p),
                }),
            };
        }
        lock_recover(&self.shared.panics).clear();
        // Publish the job.
        {
            let mut slot = lock_recover(&self.shared.slot);
            debug_assert!(slot.job.is_none(), "pool is not reentrant");
            self.shared.remaining.store(self.p - 1, Ordering::Release);
            slot.generation += 1;
            // Safety: erase the borrow's lifetime; `try_run` blocks until
            // all workers finish with the pointer, then clears the slot.
            let erased: *const (dyn Fn(usize) + Sync + 'static) =
                unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync)) };
            slot.job = Some(Job { f: erased });
            self.shared.start.notify_all();
        }
        // Participate as thread 0, isolating our own panic so we always
        // reach the drain loop below (returning early would dangle the
        // published job pointer under running workers).
        let caller = catch_unwind(AssertUnwindSafe(|| f(0)));
        // Wait for the workers, under the watchdog.
        let start = Instant::now();
        let deadline = start + self.watchdog;
        let mut overrun = false;
        let mut guard = lock_recover(&self.shared.done_lock);
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            let now = Instant::now();
            let wait = if now < deadline {
                deadline - now
            } else {
                // Past the deadline: the run is failed, but we must not
                // return while a worker may still dereference the job
                // pointer. Stage-level deadlines below us bound how long
                // this drain can take.
                overrun = true;
                Duration::from_millis(100)
            };
            let (g, _) = self
                .shared
                .done
                .wait_timeout(guard, wait)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
        drop(guard);
        // Clear the job so the pointer cannot be observed after return.
        lock_recover(&self.shared.slot).job = None;
        // Surface failures: first recorded panic wins, then the caller's
        // own panic, then a watchdog overrun.
        let mut panics = lock_recover(&self.shared.panics);
        if let Err(p) = caller {
            panics.push((0, panic_payload(p)));
        }
        if let Some((thread, payload)) = panics.first().cloned() {
            drop(panics);
            return Err(SpiralError::WorkerPanic { thread, payload });
        }
        drop(panics);
        if overrun {
            return Err(SpiralError::WatchdogTimeout {
                waited: start.elapsed(),
            });
        }
        Ok(())
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut slot = lock_recover(&self.shared.slot);
            slot.shutdown = true;
            slot.generation += 1;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, sh: Arc<Shared>) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut slot = lock_recover(&sh.slot);
            while slot.generation == seen_generation && !slot.shutdown {
                slot = sh.start.wait(slot).unwrap_or_else(PoisonError::into_inner);
            }
            if slot.shutdown {
                return;
            }
            seen_generation = slot.generation;
            match &slot.job {
                Some(j) => Job { f: j.f },
                None => continue,
            }
        };
        // Safety: the publisher blocks in `try_run` until `remaining`
        // hits 0, so the closure outlives this call.
        let f = unsafe { &*job.f };
        // Panic isolation: catch the unwind so `remaining` is always
        // decremented (no deadlocked publisher) and the worker survives
        // to serve the next job.
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(tid))) {
            lock_recover(&sh.panics).push((tid, panic_payload(p)));
        }
        if sh.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = lock_recover(&sh.done_lock);
            sh.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::{Barrier, BarrierKind};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_all_threads() {
        let pool = Pool::new(4);
        let hits = AtomicU64::new(0);
        pool.run(&|tid| {
            assert!(tid < 4);
            hits.fetch_add(1 << (tid * 8), Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0x01010101);
    }

    #[test]
    fn reusable_across_many_jobs() {
        let pool = Pool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..100 {
            pool.run(&|_tid| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 300);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let hit = AtomicU64::new(0);
        pool.run(&|tid| {
            assert_eq!(tid, 0);
            hit.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn threads_can_synchronize_with_barriers() {
        // The executor pattern: shared barrier between pipeline stages.
        let p = 4;
        let pool = Pool::new(p);
        let barrier = BarrierKind::Park.build(p);
        let barrier: &dyn Barrier = &*barrier;
        let stage_data: Vec<AtomicU64> = (0..p).map(|_| AtomicU64::new(0)).collect();
        pool.run(&|tid| {
            stage_data[tid].store((tid + 1) as u64, Ordering::SeqCst);
            barrier.wait();
            // After the barrier every thread sees all stage-1 writes.
            let sum: u64 = stage_data.iter().map(|a| a.load(Ordering::SeqCst)).sum();
            assert_eq!(sum, (1..=p as u64).sum::<u64>());
        });
    }

    #[test]
    fn writes_are_visible_after_run() {
        let pool = Pool::new(4);
        let data: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        pool.run(&|tid| {
            for i in (tid..64).step_by(4) {
                data[i].store(i as u64, Ordering::Relaxed);
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), i as u64);
        }
    }

    #[test]
    fn worker_panic_surfaces_as_err_and_pool_stays_usable() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(&|tid| {
                if tid == 2 {
                    panic!("injected worker failure");
                }
            })
            .unwrap_err();
        match err {
            SpiralError::WorkerPanic { thread, payload } => {
                assert_eq!(thread, 2);
                assert!(payload.contains("injected worker failure"));
            }
            other => panic!("expected WorkerPanic, got {other}"),
        }
        assert!(pool.healthy());
        // The same pool must run a subsequent healthy job to completion.
        let total = AtomicU64::new(0);
        pool.try_run(&|_tid| {
            total.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(total.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_panic_is_caught_and_workers_drain() {
        let pool = Pool::new(3);
        let worker_hits = AtomicU64::new(0);
        let err = pool
            .try_run(&|tid| {
                if tid == 0 {
                    panic!("thread 0 dies");
                }
                worker_hits.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        assert!(matches!(err, SpiralError::WorkerPanic { thread: 0, .. }));
        // Both workers finished their portions despite the caller panic.
        assert_eq!(worker_hits.load(Ordering::SeqCst), 2);
        assert!(pool.healthy());
    }

    #[test]
    fn single_thread_pool_catches_panics() {
        let pool = Pool::new(1);
        let err = pool.try_run(&|_tid| panic!("inline boom")).unwrap_err();
        assert!(matches!(err, SpiralError::WorkerPanic { thread: 0, .. }));
        pool.try_run(&|_tid| {}).unwrap();
    }

    #[test]
    #[should_panic(expected = "injected worker failure")]
    fn run_repanics_on_worker_panic() {
        let pool = Pool::new(2);
        pool.run(&|tid| {
            if tid == 1 {
                panic!("injected worker failure");
            }
        });
    }

    #[test]
    fn watchdog_reports_late_jobs() {
        let pool = Pool::with_watchdog(2, Duration::from_millis(40));
        let err = pool
            .try_run(&|tid| {
                if tid == 1 {
                    std::thread::sleep(Duration::from_millis(250));
                }
            })
            .unwrap_err();
        match err {
            SpiralError::WatchdogTimeout { waited } => {
                assert!(waited >= Duration::from_millis(40));
            }
            other => panic!("expected WatchdogTimeout, got {other}"),
        }
        // The straggler drained before return; the pool is reusable.
        assert!(pool.healthy());
        pool.try_run(&|_tid| {}).unwrap();
    }
}
