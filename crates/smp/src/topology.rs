//! Host topology discovery: processor count and the cache-line parameter
//! `µ` (measured in complex numbers, per the paper §3.1).

/// Size of one interleaved complex double, in bytes.
pub const COMPLEX_BYTES: usize = 16;

/// Number of hardware threads available on this host.
pub fn processors() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Cache-line size in bytes, read from sysfs on Linux; falls back to 64.
pub fn cache_line_bytes() -> usize {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) =
            std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
        {
            if let Ok(v) = s.trim().parse::<usize>() {
                if v.is_power_of_two() && (16..=1024).contains(&v) {
                    return v;
                }
            }
        }
    }
    64
}

/// The paper's `µ`: cache-line length measured in complex numbers.
/// 64-byte lines with `double` data give µ = 4.
pub fn mu() -> usize {
    (cache_line_bytes() / COMPLEX_BYTES).max(1)
}

/// Names of the optional instrumentation features compiled into this
/// build of the substrate, in a fixed order (`"trace"`, `"faults"`).
/// Recorded into profile/bench artifacts so a reader can tell an
/// instrumented measurement from a bare one.
pub fn enabled_features() -> Vec<String> {
    let mut v = Vec::new();
    if cfg!(feature = "trace") {
        v.push("trace".to_string());
    }
    if cfg!(feature = "faults") {
        v.push("faults".to_string());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processors_at_least_one() {
        assert!(processors() >= 1);
    }

    #[test]
    fn cache_line_is_sane_power_of_two() {
        let c = cache_line_bytes();
        assert!(c.is_power_of_two());
        assert!((16..=1024).contains(&c));
    }

    #[test]
    fn mu_matches_paper_for_64_byte_lines() {
        // On any 64-byte-line machine µ must be 4.
        if cache_line_bytes() == 64 {
            assert_eq!(mu(), 4);
        }
        assert!(mu() >= 1);
    }

    #[test]
    fn enabled_features_reflect_compilation() {
        let f = enabled_features();
        assert_eq!(f.contains(&"trace".to_string()), cfg!(feature = "trace"));
        assert_eq!(f.contains(&"faults".to_string()), cfg!(feature = "faults"));
        // Fixed order keeps serialized artifacts stable.
        assert!(f.windows(2).all(|w| w[0] == "trace" && w[1] == "faults"));
    }
}
