//! Host topology discovery: processor count and the cache-line parameter
//! `µ` (measured in complex numbers, per the paper §3.1), plus the
//! canonical [`HostFingerprint`] every timing or tuning artifact is
//! keyed by.

use serde::Serialize;

/// Size of one interleaved complex double, in bytes.
pub const COMPLEX_BYTES: usize = 16;

/// The hardware identity a measurement or tuned plan is only valid on:
/// core count, the paper's µ, the raw cache-line size, and which
/// instrumentation features were compiled in. This is the single
/// host-identity struct of the workspace — bench history
/// (`spiral-bench`), run profiles (`spiral-trace`), and persisted wisdom
/// (`spiral-serve`) all embed it rather than re-deriving host facts ad
/// hoc, so their artifacts agree on what "same machine" means.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct HostFingerprint {
    /// Hardware threads available ([`processors`]).
    pub cores: u64,
    /// The paper's µ: cache-line length in complex numbers ([`mu`]).
    pub mu: u64,
    /// Cache-line size in bytes ([`cache_line_bytes`]).
    pub cache_line_bytes: u64,
    /// Runtime-detected SIMD lane width in complex doubles
    /// ([`simd_width`]): 1 = scalar-only hardware. Artifacts produced by
    /// the short-vector backend are only valid on hosts at least this
    /// wide; consumers (wisdom, bench history) compare against their own
    /// host's width.
    pub simd_width: u64,
    /// Worker-process budget of the host ([`process_budget`]): how many
    /// `dist(q)` worker processes the multi-process tier may usefully
    /// run. Part of the identity on purpose — wisdom tuned under one
    /// budget must be re-keyed (discarded and re-tuned) when the budget
    /// changes, because the tuner's `dist(q)` verdicts depend on it.
    pub process_budget: u64,
    /// Optional instrumentation features compiled into the build
    /// (`"trace"`, `"faults"`) plus the detected `"simdN"` token, in
    /// fixed order ([`enabled_features`]).
    pub features: Vec<String>,
}

// Hand-written (not derived) so legacy artifacts written before the
// `simd_width` field existed still load: an absent width defaults to 1,
// the conservative scalar claim.
impl serde::Deserialize for HostFingerprint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(v.get(name).unwrap_or(&serde::Value::Null))
                .map_err(|e| serde::Error(format!("HostFingerprint.{name}: {}", e.0)))
        }
        Ok(HostFingerprint {
            cores: field(v, "cores")?,
            mu: field(v, "mu")?,
            cache_line_bytes: field(v, "cache_line_bytes")?,
            simd_width: match v.get("simd_width") {
                None | Some(serde::Value::Null) => 1,
                Some(_) => field(v, "simd_width")?,
            },
            // Absent budget defaults to 1: no multi-process claim. A
            // current host with a larger budget then mismatches, which
            // is the staleness re-key the dist tier wants.
            process_budget: match v.get("process_budget") {
                None | Some(serde::Value::Null) => 1,
                Some(_) => field(v, "process_budget")?,
            },
            features: field(v, "features")?,
        })
    }
}

impl HostFingerprint {
    /// Fingerprint of the current host/build (cached after the first
    /// call — topology discovery reads sysfs).
    pub fn current() -> HostFingerprint {
        static CACHE: std::sync::OnceLock<HostFingerprint> = std::sync::OnceLock::new();
        CACHE
            .get_or_init(|| HostFingerprint {
                cores: processors() as u64,
                mu: mu() as u64,
                cache_line_bytes: cache_line_bytes() as u64,
                simd_width: simd_width() as u64,
                process_budget: process_budget() as u64,
                features: enabled_features(),
            })
            .clone()
    }

    /// Compact single-token rendering (`"4c-mu4-l64-v4-q4"`), for file
    /// names and log lines.
    pub fn compact(&self) -> String {
        format!(
            "{}c-mu{}-l{}-v{}-q{}",
            self.cores, self.mu, self.cache_line_bytes, self.simd_width, self.process_budget
        )
    }
}

impl std::fmt::Display for HostFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cores, µ={}, {}-byte lines, {}-wide SIMD, {}-process budget, features [{}]",
            self.cores,
            self.mu,
            self.cache_line_bytes,
            self.simd_width,
            self.process_budget,
            self.features.join(", ")
        )
    }
}

/// Number of hardware threads available on this host.
pub fn processors() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Cache-line size in bytes, read from sysfs on Linux; falls back to 64.
pub fn cache_line_bytes() -> usize {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) =
            std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
        {
            if let Ok(v) = s.trim().parse::<usize>() {
                if v.is_power_of_two() && (16..=1024).contains(&v) {
                    return v;
                }
            }
        }
    }
    64
}

/// The paper's `µ`: cache-line length measured in complex numbers.
/// 64-byte lines with `double` data give µ = 4.
pub fn mu() -> usize {
    (cache_line_bytes() / COMPLEX_BYTES).max(1)
}

/// Runtime-detected short-vector width, measured in complex doubles
/// (one complex double = 128 bits). This is a *hardware* fact — what the
/// host's widest usable vector unit can hold — independent of whether
/// the codegen backend was built with its scalar fallback; the backend
/// caps its own lane count against this. x86-64 with AVX holds four
/// complex doubles in a pair of 256-bit registers (width 4), baseline
/// SSE2 holds two (width 2); AArch64 NEON holds two; anything else is
/// scalar-only (width 1).
pub fn simd_width() -> usize {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            4
        } else {
            2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        2
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        1
    }
}

/// Worker-process budget: how many `dist(q)` worker processes the
/// multi-process execution tier may usefully run on this host. A shard
/// fleet wider than the hardware thread count can only add exchange
/// cost, never compute, so the budget is exactly [`processors`].
/// `SPIRAL_PROCESS_BUDGET` overrides it (clamped to ≥ 1) for operators
/// who reserve cores for other tenants — the fingerprint records the
/// effective value, so wisdom tuned under one budget is re-keyed when
/// the budget changes.
pub fn process_budget() -> usize {
    if let Ok(s) = std::env::var("SPIRAL_PROCESS_BUDGET") {
        if let Ok(v) = s.trim().parse::<usize>() {
            return v.max(1);
        }
    }
    processors()
}

/// Names of the optional instrumentation features compiled into this
/// build of the substrate, in a fixed order (`"trace"`, `"faults"`),
/// followed by the runtime-detected `"simdN"` capability token.
/// Recorded into profile/bench artifacts so a reader can tell an
/// instrumented measurement from a bare one, and a vector-backend
/// measurement from a scalar-only host's.
pub fn enabled_features() -> Vec<String> {
    let mut v = Vec::new();
    if cfg!(feature = "trace") {
        v.push("trace".to_string());
    }
    if cfg!(feature = "faults") {
        v.push("faults".to_string());
    }
    v.push(format!("simd{}", simd_width()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processors_at_least_one() {
        assert!(processors() >= 1);
    }

    #[test]
    fn cache_line_is_sane_power_of_two() {
        let c = cache_line_bytes();
        assert!(c.is_power_of_two());
        assert!((16..=1024).contains(&c));
    }

    #[test]
    fn mu_matches_paper_for_64_byte_lines() {
        // On any 64-byte-line machine µ must be 4.
        if cache_line_bytes() == 64 {
            assert_eq!(mu(), 4);
        }
        assert!(mu() >= 1);
    }

    #[test]
    fn enabled_features_reflect_compilation() {
        let f = enabled_features();
        assert_eq!(f.contains(&"trace".to_string()), cfg!(feature = "trace"));
        assert_eq!(f.contains(&"faults".to_string()), cfg!(feature = "faults"));
        // Fixed order keeps serialized artifacts stable: optional
        // instrumentation features first, the simdN capability last.
        let order = ["trace", "faults"];
        let idx = |name: &str| order.iter().position(|o| *o == name);
        assert!(f.windows(2).all(|w| match (idx(&w[0]), idx(&w[1])) {
            (Some(a), Some(b)) => a < b,
            (Some(_), None) => true,
            _ => false,
        }));
        assert_eq!(
            f.last().map(String::as_str),
            Some(format!("simd{}", simd_width()).as_str())
        );
    }

    #[test]
    fn simd_width_is_detected_and_sane() {
        let w = simd_width();
        assert!(w.is_power_of_two());
        assert!((1..=8).contains(&w));
        #[cfg(target_arch = "x86_64")]
        assert!(w >= 2, "x86-64 guarantees SSE2");
        assert_eq!(
            HostFingerprint::current().simd_width,
            w as u64,
            "fingerprint records the detected width"
        );
    }

    #[test]
    fn legacy_fingerprint_without_simd_width_deserializes_as_scalar() {
        let legacy = r#"{"cores":4,"mu":4,"cache_line_bytes":64,"features":[]}"#;
        let fp: HostFingerprint = serde_json::from_str(legacy).expect("legacy JSON still loads");
        assert_eq!(
            fp.simd_width, 1,
            "absent width defaults to the scalar claim"
        );
        assert_eq!(
            fp.process_budget, 1,
            "absent budget defaults to the single-process claim"
        );
        assert!(fp.compact().ends_with("-v1-q1"));
    }

    #[test]
    fn process_budget_is_detected_and_recorded() {
        let q = process_budget();
        assert!(q >= 1);
        // Without the env override the budget is exactly the hardware
        // thread count — a wider fleet only adds exchange cost.
        if std::env::var("SPIRAL_PROCESS_BUDGET").is_err() {
            assert_eq!(q, processors());
        }
        assert_eq!(HostFingerprint::current().process_budget, q as u64);
    }
}
