//! Host topology discovery: processor count and the cache-line parameter
//! `µ` (measured in complex numbers, per the paper §3.1), plus the
//! canonical [`HostFingerprint`] every timing or tuning artifact is
//! keyed by.

use serde::{Deserialize, Serialize};

/// Size of one interleaved complex double, in bytes.
pub const COMPLEX_BYTES: usize = 16;

/// The hardware identity a measurement or tuned plan is only valid on:
/// core count, the paper's µ, the raw cache-line size, and which
/// instrumentation features were compiled in. This is the single
/// host-identity struct of the workspace — bench history
/// (`spiral-bench`), run profiles (`spiral-trace`), and persisted wisdom
/// (`spiral-serve`) all embed it rather than re-deriving host facts ad
/// hoc, so their artifacts agree on what "same machine" means.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostFingerprint {
    /// Hardware threads available ([`processors`]).
    pub cores: u64,
    /// The paper's µ: cache-line length in complex numbers ([`mu`]).
    pub mu: u64,
    /// Cache-line size in bytes ([`cache_line_bytes`]).
    pub cache_line_bytes: u64,
    /// Optional instrumentation features compiled into the build
    /// (`"trace"`, `"faults"`), in fixed order ([`enabled_features`]).
    pub features: Vec<String>,
}

impl HostFingerprint {
    /// Fingerprint of the current host/build (cached after the first
    /// call — topology discovery reads sysfs).
    pub fn current() -> HostFingerprint {
        static CACHE: std::sync::OnceLock<HostFingerprint> = std::sync::OnceLock::new();
        CACHE
            .get_or_init(|| HostFingerprint {
                cores: processors() as u64,
                mu: mu() as u64,
                cache_line_bytes: cache_line_bytes() as u64,
                features: enabled_features(),
            })
            .clone()
    }

    /// Compact single-token rendering (`"4c-mu4-l64"`), for file names
    /// and log lines.
    pub fn compact(&self) -> String {
        format!("{}c-mu{}-l{}", self.cores, self.mu, self.cache_line_bytes)
    }
}

impl std::fmt::Display for HostFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cores, µ={}, {}-byte lines, features [{}]",
            self.cores,
            self.mu,
            self.cache_line_bytes,
            self.features.join(", ")
        )
    }
}

/// Number of hardware threads available on this host.
pub fn processors() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Cache-line size in bytes, read from sysfs on Linux; falls back to 64.
pub fn cache_line_bytes() -> usize {
    #[cfg(target_os = "linux")]
    {
        if let Ok(s) =
            std::fs::read_to_string("/sys/devices/system/cpu/cpu0/cache/index0/coherency_line_size")
        {
            if let Ok(v) = s.trim().parse::<usize>() {
                if v.is_power_of_two() && (16..=1024).contains(&v) {
                    return v;
                }
            }
        }
    }
    64
}

/// The paper's `µ`: cache-line length measured in complex numbers.
/// 64-byte lines with `double` data give µ = 4.
pub fn mu() -> usize {
    (cache_line_bytes() / COMPLEX_BYTES).max(1)
}

/// Names of the optional instrumentation features compiled into this
/// build of the substrate, in a fixed order (`"trace"`, `"faults"`).
/// Recorded into profile/bench artifacts so a reader can tell an
/// instrumented measurement from a bare one.
pub fn enabled_features() -> Vec<String> {
    let mut v = Vec::new();
    if cfg!(feature = "trace") {
        v.push("trace".to_string());
    }
    if cfg!(feature = "faults") {
        v.push("faults".to_string());
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processors_at_least_one() {
        assert!(processors() >= 1);
    }

    #[test]
    fn cache_line_is_sane_power_of_two() {
        let c = cache_line_bytes();
        assert!(c.is_power_of_two());
        assert!((16..=1024).contains(&c));
    }

    #[test]
    fn mu_matches_paper_for_64_byte_lines() {
        // On any 64-byte-line machine µ must be 4.
        if cache_line_bytes() == 64 {
            assert_eq!(mu(), 4);
        }
        assert!(mu() >= 1);
    }

    #[test]
    fn enabled_features_reflect_compilation() {
        let f = enabled_features();
        assert_eq!(f.contains(&"trace".to_string()), cfg!(feature = "trace"));
        assert_eq!(f.contains(&"faults".to_string()), cfg!(feature = "faults"));
        // Fixed order keeps serialized artifacts stable.
        assert!(f.windows(2).all(|w| w[0] == "trace" && w[1] == "faults"));
    }
}
