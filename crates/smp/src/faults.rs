//! Deterministic fault injection (compiled only with the `faults`
//! feature).
//!
//! The failure model of the execution layer — panic isolation in the
//! pool, barrier watchdogs, NaN guards — is only trustworthy if it can
//! be *exercised*. This registry lets tests inject worker panics,
//! artificial stage delays, and NaN corruption of plan output at chosen
//! `(stage, thread)` points, deterministically (seeded) so failures are
//! reproducible.
//!
//! The executor queries [`at`] once per `(stage, thread)` pair per run;
//! it calls [`begin_run`] at the start of every parallel execution so
//! specs can target a specific run in a sequence (e.g. "fail only the
//! second candidate the tuner measures"). Installation returns a guard
//! holding a global session lock, so concurrent tests serialize instead
//! of observing each other's faults.

use crate::error::lock_recover;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A fault to inject at a matched site.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Panic on the matched thread at the start of the matched stage.
    Panic,
    /// Sleep for the given duration before running the stage portion
    /// (models a descheduled or wedged peer).
    Delay(Duration),
    /// Overwrite one element of the thread's output portion with NaN
    /// after the stage portion runs (models silent data corruption).
    CorruptNan,
}

/// Matcher + fault. `None` fields match everything.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Match a specific plan stage index (`None` = any stage).
    pub stage: Option<usize>,
    /// Match a specific logical thread (`None` = any thread).
    pub thread: Option<usize>,
    /// Match a specific run index since installation (`None` = any run).
    /// Runs are counted by [`begin_run`].
    pub run: Option<usize>,
    /// Fire probability in `[0, 1]`, decided by a hash of
    /// `(seed, stage, thread, run)` — deterministic per site.
    pub probability: f64,
    /// The fault to inject when the matcher fires.
    pub fault: Fault,
}

impl FaultSpec {
    /// A spec that always fires at exactly `(stage, thread)`, every run.
    pub fn always(stage: usize, thread: usize, fault: Fault) -> FaultSpec {
        FaultSpec {
            stage: Some(stage),
            thread: Some(thread),
            run: None,
            probability: 1.0,
            fault,
        }
    }

    /// Restrict this spec to the given run index.
    pub fn on_run(mut self, run: usize) -> FaultSpec {
        self.run = Some(run);
        self
    }
}

/// A seeded set of fault specs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic specs.
    pub seed: u64,
    /// Specs checked in order; the first match fires.
    pub specs: Vec<FaultSpec>,
}

struct Registry {
    plan: FaultPlan,
    runs: AtomicUsize,
}

static ACTIVE: Mutex<Option<Registry>> = Mutex::new(None);
static SESSION: Mutex<()> = Mutex::new(());

/// Guard returned by [`install`]; clears the registry on drop and holds
/// the session lock so concurrent installers serialize.
pub struct FaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *lock_recover(&ACTIVE) = None;
    }
}

/// Install a fault plan for the duration of the returned guard.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let session = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_recover(&ACTIVE) = Some(Registry {
        plan,
        runs: AtomicUsize::new(0),
    });
    FaultGuard { _session: session }
}

/// True when a fault plan is installed.
pub fn active() -> bool {
    lock_recover(&ACTIVE).is_some()
}

/// Mark the start of a new run (called by the executor once per
/// `try_execute`). Returns the index of the run that just started.
pub fn begin_run() -> usize {
    match lock_recover(&ACTIVE).as_ref() {
        Some(reg) => reg.runs.fetch_add(1, Ordering::SeqCst),
        None => 0,
    }
}

/// Query the registry at a `(stage, thread)` site of the current run.
pub fn at(stage: usize, thread: usize) -> Option<Fault> {
    let guard = lock_recover(&ACTIVE);
    let reg = guard.as_ref()?;
    let run = reg.runs.load(Ordering::SeqCst).saturating_sub(1);
    for spec in &reg.plan.specs {
        if spec.stage.is_some_and(|s| s != stage)
            || spec.thread.is_some_and(|t| t != thread)
            || spec.run.is_some_and(|r| r != run)
        {
            continue;
        }
        if spec.probability < 1.0 {
            let h = splitmix64(
                reg.plan
                    .seed
                    .wrapping_add((stage as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((thread as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add((run as u64).wrapping_mul(0x94D0_49BB_1331_11EB)),
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= spec.probability {
                continue;
            }
        }
        return Some(spec.fault.clone());
    }
    None
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matchers_select_sites() {
        let _g = install(FaultPlan {
            seed: 7,
            specs: vec![FaultSpec::always(2, 1, Fault::Panic)],
        });
        begin_run();
        assert!(matches!(at(2, 1), Some(Fault::Panic)));
        assert!(at(2, 0).is_none());
        assert!(at(1, 1).is_none());
    }

    #[test]
    fn run_matcher_counts_runs() {
        let _g = install(FaultPlan {
            seed: 0,
            specs: vec![FaultSpec::always(0, 0, Fault::CorruptNan).on_run(1)],
        });
        begin_run(); // run 0
        assert!(at(0, 0).is_none());
        begin_run(); // run 1
        assert!(matches!(at(0, 0), Some(Fault::CorruptNan)));
        begin_run(); // run 2
        assert!(at(0, 0).is_none());
    }

    #[test]
    fn probability_is_deterministic() {
        let spec = FaultSpec {
            stage: None,
            thread: None,
            run: None,
            probability: 0.5,
            fault: Fault::Panic,
        };
        let _g = install(FaultPlan {
            seed: 42,
            specs: vec![spec],
        });
        begin_run();
        let first: Vec<bool> = (0..32).map(|s| at(s, 0).is_some()).collect();
        let second: Vec<bool> = (0..32).map(|s| at(s, 0).is_some()).collect();
        assert_eq!(first, second);
        // With p = 0.5 over 32 sites, both outcomes must occur.
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn uninstalled_registry_is_silent() {
        // Hold the session lock so a concurrently running test's
        // installation cannot be observed.
        let _s = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!active());
        assert!(at(0, 0).is_none());
        assert_eq!(begin_run(), 0);
    }
}
