//! Deterministic fault injection (compiled only with the `faults`
//! feature).
//!
//! The failure model of the execution layer — panic isolation in the
//! pool, barrier watchdogs, NaN guards — is only trustworthy if it can
//! be *exercised*. This registry lets tests inject worker panics,
//! artificial stage delays, and NaN corruption of plan output at chosen
//! `(stage, thread)` points, deterministically (seeded) so failures are
//! reproducible.
//!
//! The executor queries [`at`] once per `(stage, thread)` pair per run;
//! it calls [`begin_run`] at the start of every parallel execution so
//! specs can target a specific run in a sequence (e.g. "fail only the
//! second candidate the tuner measures"). Installation returns a guard
//! holding a global session lock, so concurrent tests serialize instead
//! of observing each other's faults.

use crate::error::lock_recover;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A fault to inject at a matched site.
#[derive(Clone, Debug)]
pub enum Fault {
    /// Panic on the matched thread at the start of the matched stage.
    Panic,
    /// Sleep for the given duration before running the stage portion
    /// (models a descheduled or wedged peer).
    Delay(Duration),
    /// Overwrite one element of the thread's output portion with NaN
    /// after the stage portion runs (models silent data corruption).
    CorruptNan,
}

/// Matcher + fault. `None` fields match everything.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Match a specific plan stage index (`None` = any stage).
    pub stage: Option<usize>,
    /// Match a specific logical thread (`None` = any thread).
    pub thread: Option<usize>,
    /// Match a specific run index since installation (`None` = any run).
    /// Runs are counted by [`begin_run`].
    pub run: Option<usize>,
    /// Fire probability in `[0, 1]`, decided by a hash of
    /// `(seed, stage, thread, run)` — deterministic per site.
    pub probability: f64,
    /// The fault to inject when the matcher fires.
    pub fault: Fault,
}

impl FaultSpec {
    /// A spec that always fires at exactly `(stage, thread)`, every run.
    pub fn always(stage: usize, thread: usize, fault: Fault) -> FaultSpec {
        FaultSpec {
            stage: Some(stage),
            thread: Some(thread),
            run: None,
            probability: 1.0,
            fault,
        }
    }

    /// Restrict this spec to the given run index.
    pub fn on_run(mut self, run: usize) -> FaultSpec {
        self.run = Some(run);
        self
    }
}

/// A seeded set of fault specs.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic specs.
    pub seed: u64,
    /// Specs checked in order; the first match fires.
    pub specs: Vec<FaultSpec>,
}

struct Registry {
    plan: FaultPlan,
    runs: AtomicUsize,
}

static ACTIVE: Mutex<Option<Registry>> = Mutex::new(None);
static SESSION: Mutex<()> = Mutex::new(());

/// Guard returned by [`install`]; clears the registry on drop and holds
/// the session lock so concurrent installers serialize.
pub struct FaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *lock_recover(&ACTIVE) = None;
    }
}

/// Install a fault plan for the duration of the returned guard.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let session = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    *lock_recover(&ACTIVE) = Some(Registry {
        plan,
        runs: AtomicUsize::new(0),
    });
    FaultGuard { _session: session }
}

/// True when a fault plan is installed.
pub fn active() -> bool {
    lock_recover(&ACTIVE).is_some()
}

/// Mark the start of a new run (called by the executor once per
/// `try_execute`). Returns the index of the run that just started.
pub fn begin_run() -> usize {
    match lock_recover(&ACTIVE).as_ref() {
        Some(reg) => reg.runs.fetch_add(1, Ordering::SeqCst),
        None => 0,
    }
}

/// Query the registry at a `(stage, thread)` site of the current run.
pub fn at(stage: usize, thread: usize) -> Option<Fault> {
    let guard = lock_recover(&ACTIVE);
    let reg = guard.as_ref()?;
    let run = reg.runs.load(Ordering::SeqCst).saturating_sub(1);
    for spec in &reg.plan.specs {
        if spec.stage.is_some_and(|s| s != stage)
            || spec.thread.is_some_and(|t| t != thread)
            || spec.run.is_some_and(|r| r != run)
        {
            continue;
        }
        if spec.probability < 1.0 {
            let h = splitmix64(
                reg.plan
                    .seed
                    .wrapping_add((stage as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((thread as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add((run as u64).wrapping_mul(0x94D0_49BB_1331_11EB)),
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= spec.probability {
                continue;
            }
        }
        return Some(spec.fault.clone());
    }
    None
}

// --- request-path fault registry (serving tier) ----------------------
//
// The execution-layer registry above matches `(stage, thread, run)`
// sites inside one parallel run. The serving tier's failure surface is
// different — connections, frames, deadlines, persistence — so it gets
// a *sibling* registry with its own site vocabulary, its own static,
// and its own session lock. Keeping them separate means a chaos test
// can hold a pool-fault plan and a request-path plan simultaneously,
// and neither extends `FaultPlan` (whose struct literals appear in
// tests across the workspace).

/// A request-path fault site in the serving tier. Sites are *queried*
/// by the component that would misbehave (client writers, the server's
/// request loop, the wisdom store, the plan service); the registry only
/// answers "does this site fire now?".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeSite {
    /// Client stalls mid-frame (server's read timeout must reap it).
    SlowClient,
    /// Client closes the socket mid-frame (torn frame on the wire).
    TornFrame,
    /// Client disconnects after sending, before reading the response.
    Disconnect,
    /// Server treats the request's deadline as already expired.
    ExpireDeadline,
    /// Wisdom persistence tears: partial temp-file write, no rename.
    WisdomSaveFail,
    /// The tuner fails for a cold key (single-flight error path).
    TunerFail,
    /// A batch dispatch behaves as if the pool watchdog tripped.
    BatchWedge,
}

impl ServeSite {
    fn code(self) -> u64 {
        match self {
            ServeSite::SlowClient => 0,
            ServeSite::TornFrame => 1,
            ServeSite::Disconnect => 2,
            ServeSite::ExpireDeadline => 3,
            ServeSite::WisdomSaveFail => 4,
            ServeSite::TunerFail => 5,
            ServeSite::BatchWedge => 6,
        }
    }
}

/// Matcher for one request-path site: which site, how often, and for at
/// most how many firings.
#[derive(Clone, Debug)]
pub struct ServeFaultSpec {
    /// The site this spec arms.
    pub site: ServeSite,
    /// Fire probability in `[0, 1]`, decided by a hash of
    /// `(seed, site, index)` — deterministic per queried index.
    pub probability: f64,
    /// Stop firing after this many hits (`None` = unlimited).
    pub max_fires: Option<usize>,
}

impl ServeFaultSpec {
    /// A spec that always fires, with no firing limit.
    pub fn always(site: ServeSite) -> ServeFaultSpec {
        ServeFaultSpec {
            site,
            probability: 1.0,
            max_fires: None,
        }
    }

    /// A spec that fires exactly once, on the first query of its site.
    pub fn once(site: ServeSite) -> ServeFaultSpec {
        ServeFaultSpec {
            site,
            probability: 1.0,
            max_fires: Some(1),
        }
    }

    /// A seeded probabilistic spec (the chaos grid's workhorse).
    pub fn with_probability(site: ServeSite, probability: f64) -> ServeFaultSpec {
        ServeFaultSpec {
            site,
            probability,
            max_fires: None,
        }
    }
}

/// A seeded set of request-path fault specs.
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    /// Seed for probabilistic specs.
    pub seed: u64,
    /// Specs checked in order; the first one that fires wins.
    pub specs: Vec<ServeFaultSpec>,
}

struct ServeRegistry {
    plan: ServeFaultPlan,
    /// Firing count per spec (aligned with `plan.specs`), enforcing
    /// `max_fires`.
    fired: Vec<usize>,
}

static SERVE_ACTIVE: Mutex<Option<ServeRegistry>> = Mutex::new(None);
static SERVE_SESSION: Mutex<()> = Mutex::new(());

/// Guard returned by [`install_serve`]; clears the request-path
/// registry on drop and holds its session lock so concurrent installers
/// serialize.
pub struct ServeFaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for ServeFaultGuard {
    fn drop(&mut self) {
        *lock_recover(&SERVE_ACTIVE) = None;
    }
}

/// Install a request-path fault plan for the duration of the guard.
pub fn install_serve(plan: ServeFaultPlan) -> ServeFaultGuard {
    let session = SERVE_SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    let fired = vec![0; plan.specs.len()];
    *lock_recover(&SERVE_ACTIVE) = Some(ServeRegistry { plan, fired });
    ServeFaultGuard { _session: session }
}

/// True when a request-path fault plan is installed.
pub fn serve_active() -> bool {
    lock_recover(&SERVE_ACTIVE).is_some()
}

/// Query the request-path registry: does `site` fire for this `index`?
///
/// `index` is whatever uniqueness the caller has — a request counter, a
/// connection id — so probabilistic specs draw independently per query
/// while staying deterministic for a fixed seed.
pub fn serve_at(site: ServeSite, index: usize) -> bool {
    let mut guard = lock_recover(&SERVE_ACTIVE);
    let Some(reg) = guard.as_mut() else {
        return false;
    };
    for (i, spec) in reg.plan.specs.iter().enumerate() {
        if spec.site != site {
            continue;
        }
        if spec.max_fires.is_some_and(|m| reg.fired[i] >= m) {
            continue;
        }
        if spec.probability < 1.0 {
            let h = splitmix64(
                reg.plan
                    .seed
                    .wrapping_add(site.code().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)),
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= spec.probability {
                continue;
            }
        }
        reg.fired[i] += 1;
        return true;
    }
    false
}

// --- process-fleet fault registry (dist tier) -------------------------
//
// The multi-process `dist(q)` tier has a third failure surface: worker
// processes die, shared-memory slab handoffs tear, control frames drop,
// heartbeats stall. Same sibling-registry pattern as the serving tier —
// its own site vocabulary, static, and session lock — so a chaos test
// can arm all three layers at once and none of the existing plan
// structs change shape.

/// A process-fleet fault site in the dist tier. Queried by the fleet
/// manager per `(site, shard, batch)` so a spec can target one worker
/// of one batch deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistSite {
    /// The worker is killed mid-batch (after reading its input slab,
    /// before publishing its output).
    WorkerKill,
    /// The worker's output slab publish tears: payload half-written,
    /// seqlock left odd.
    SlabTornWrite,
    /// The worker's completion frame is dropped on the control socket
    /// (work done, manager never hears).
    ControlFrameDrop,
    /// The worker stalls past the heartbeat deadline before replying.
    HeartbeatStall,
}

impl DistSite {
    fn code(self) -> u64 {
        match self {
            DistSite::WorkerKill => 0,
            DistSite::SlabTornWrite => 1,
            DistSite::ControlFrameDrop => 2,
            DistSite::HeartbeatStall => 3,
        }
    }
}

/// Matcher for one dist site: which site, which shard, how often, for
/// at most how many firings.
#[derive(Clone, Debug)]
pub struct DistFaultSpec {
    /// The site this spec arms.
    pub site: DistSite,
    /// Match a specific shard index (`None` = any shard).
    pub shard: Option<usize>,
    /// Fire probability in `[0, 1]`, decided by a hash of
    /// `(seed, site, shard, batch)` — deterministic per queried site.
    pub probability: f64,
    /// Stop firing after this many hits (`None` = unlimited).
    pub max_fires: Option<usize>,
}

impl DistFaultSpec {
    /// A spec that always fires on one shard, with no firing limit.
    pub fn always(site: DistSite, shard: usize) -> DistFaultSpec {
        DistFaultSpec {
            site,
            shard: Some(shard),
            probability: 1.0,
            max_fires: None,
        }
    }

    /// A spec that fires exactly once, on the first query of its site
    /// for the given shard.
    pub fn once(site: DistSite, shard: usize) -> DistFaultSpec {
        DistFaultSpec {
            site,
            shard: Some(shard),
            probability: 1.0,
            max_fires: Some(1),
        }
    }

    /// A seeded probabilistic spec over all shards (chaos grid).
    pub fn with_probability(site: DistSite, probability: f64) -> DistFaultSpec {
        DistFaultSpec {
            site,
            shard: None,
            probability,
            max_fires: None,
        }
    }
}

/// A seeded set of dist fault specs.
#[derive(Clone, Debug, Default)]
pub struct DistFaultPlan {
    /// Seed for probabilistic specs.
    pub seed: u64,
    /// Specs checked in order; the first one that fires wins.
    pub specs: Vec<DistFaultSpec>,
}

struct DistRegistry {
    plan: DistFaultPlan,
    fired: Vec<usize>,
}

static DIST_ACTIVE: Mutex<Option<DistRegistry>> = Mutex::new(None);
static DIST_SESSION: Mutex<()> = Mutex::new(());

/// Guard returned by [`install_dist`]; clears the dist registry on drop
/// and holds its session lock so concurrent installers serialize.
pub struct DistFaultGuard {
    _session: MutexGuard<'static, ()>,
}

impl Drop for DistFaultGuard {
    fn drop(&mut self) {
        *lock_recover(&DIST_ACTIVE) = None;
    }
}

/// Install a dist fault plan for the duration of the guard.
pub fn install_dist(plan: DistFaultPlan) -> DistFaultGuard {
    let session = DIST_SESSION.lock().unwrap_or_else(PoisonError::into_inner);
    let fired = vec![0; plan.specs.len()];
    *lock_recover(&DIST_ACTIVE) = Some(DistRegistry { plan, fired });
    DistFaultGuard { _session: session }
}

/// True when a dist fault plan is installed.
pub fn dist_active() -> bool {
    lock_recover(&DIST_ACTIVE).is_some()
}

/// Query the dist registry: does `site` fire for `(shard, batch)`?
pub fn dist_at(site: DistSite, shard: usize, batch: usize) -> bool {
    let mut guard = lock_recover(&DIST_ACTIVE);
    let Some(reg) = guard.as_mut() else {
        return false;
    };
    for (i, spec) in reg.plan.specs.iter().enumerate() {
        if spec.site != site || spec.shard.is_some_and(|s| s != shard) {
            continue;
        }
        if spec.max_fires.is_some_and(|m| reg.fired[i] >= m) {
            continue;
        }
        if spec.probability < 1.0 {
            let h = splitmix64(
                reg.plan
                    .seed
                    .wrapping_add(site.code().wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add((shard as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                    .wrapping_add((batch as u64).wrapping_mul(0x94D0_49BB_1331_11EB)),
            );
            let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
            if unit >= spec.probability {
                continue;
            }
        }
        reg.fired[i] += 1;
        return true;
    }
    false
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matchers_select_sites() {
        let _g = install(FaultPlan {
            seed: 7,
            specs: vec![FaultSpec::always(2, 1, Fault::Panic)],
        });
        begin_run();
        assert!(matches!(at(2, 1), Some(Fault::Panic)));
        assert!(at(2, 0).is_none());
        assert!(at(1, 1).is_none());
    }

    #[test]
    fn run_matcher_counts_runs() {
        let _g = install(FaultPlan {
            seed: 0,
            specs: vec![FaultSpec::always(0, 0, Fault::CorruptNan).on_run(1)],
        });
        begin_run(); // run 0
        assert!(at(0, 0).is_none());
        begin_run(); // run 1
        assert!(matches!(at(0, 0), Some(Fault::CorruptNan)));
        begin_run(); // run 2
        assert!(at(0, 0).is_none());
    }

    #[test]
    fn probability_is_deterministic() {
        let spec = FaultSpec {
            stage: None,
            thread: None,
            run: None,
            probability: 0.5,
            fault: Fault::Panic,
        };
        let _g = install(FaultPlan {
            seed: 42,
            specs: vec![spec],
        });
        begin_run();
        let first: Vec<bool> = (0..32).map(|s| at(s, 0).is_some()).collect();
        let second: Vec<bool> = (0..32).map(|s| at(s, 0).is_some()).collect();
        assert_eq!(first, second);
        // With p = 0.5 over 32 sites, both outcomes must occur.
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn uninstalled_registry_is_silent() {
        // Hold the session lock so a concurrently running test's
        // installation cannot be observed.
        let _s = SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!active());
        assert!(at(0, 0).is_none());
        assert_eq!(begin_run(), 0);
    }

    #[test]
    fn dist_registry_matches_shards_and_clears() {
        {
            let _g = install_dist(DistFaultPlan {
                seed: 0,
                specs: vec![DistFaultSpec::once(DistSite::WorkerKill, 1)],
            });
            assert!(dist_active());
            assert!(!dist_at(DistSite::WorkerKill, 0, 0));
            assert!(dist_at(DistSite::WorkerKill, 1, 0));
            // once: second query of the same shard stays silent.
            assert!(!dist_at(DistSite::WorkerKill, 1, 1));
            assert!(!dist_at(DistSite::SlabTornWrite, 1, 0));
        }
        let _s = DIST_SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!dist_active());
        assert!(!dist_at(DistSite::WorkerKill, 1, 0));
    }

    #[test]
    fn dist_probability_is_deterministic_per_batch() {
        let plan = DistFaultPlan {
            seed: 11,
            specs: vec![DistFaultSpec::with_probability(
                DistSite::HeartbeatStall,
                0.5,
            )],
        };
        let draw = |plan: DistFaultPlan| -> Vec<bool> {
            let _g = install_dist(plan);
            (0..64)
                .map(|b| dist_at(DistSite::HeartbeatStall, b % 4, b))
                .collect()
        };
        let first = draw(plan.clone());
        let second = draw(plan);
        assert_eq!(first, second);
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }

    #[test]
    fn serve_registry_fires_and_clears() {
        {
            let _g = install_serve(ServeFaultPlan {
                seed: 0,
                specs: vec![ServeFaultSpec::always(ServeSite::TornFrame)],
            });
            assert!(serve_active());
            assert!(serve_at(ServeSite::TornFrame, 0));
            assert!(serve_at(ServeSite::TornFrame, 1));
            // Other sites stay silent.
            assert!(!serve_at(ServeSite::Disconnect, 0));
        }
        // Guard drop clears the registry.
        let _s = SERVE_SESSION.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!serve_active());
        assert!(!serve_at(ServeSite::TornFrame, 0));
    }

    #[test]
    fn serve_once_spec_fires_exactly_once() {
        let _g = install_serve(ServeFaultPlan {
            seed: 0,
            specs: vec![ServeFaultSpec::once(ServeSite::TunerFail)],
        });
        assert!(serve_at(ServeSite::TunerFail, 0));
        assert!(!serve_at(ServeSite::TunerFail, 1));
        assert!(!serve_at(ServeSite::TunerFail, 0));
    }

    #[test]
    fn serve_probability_is_deterministic_per_index() {
        let plan = ServeFaultPlan {
            seed: 7,
            specs: vec![ServeFaultSpec::with_probability(ServeSite::Disconnect, 0.5)],
        };
        let first: Vec<bool> = {
            let _g = install_serve(plan.clone());
            (0..64)
                .map(|i| serve_at(ServeSite::Disconnect, i))
                .collect()
        };
        let second: Vec<bool> = {
            let _g = install_serve(plan);
            (0..64)
                .map(|i| serve_at(ServeSite::Disconnect, i))
                .collect()
        };
        assert_eq!(first, second);
        // With p = 0.5 over 64 indices, both outcomes must occur.
        assert!(first.iter().any(|&b| b) && first.iter().any(|&b| !b));
    }
}
