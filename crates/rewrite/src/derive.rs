//! End-to-end derivation of the multicore Cooley–Tukey FFT (paper §3.2).
//!
//! Given `N`, the processor count `p`, and the cache-line length `µ`, this
//! module tags `smp(p,µ)[CT(m, n)]` and lets the Table 1 rules rewrite it
//! into the fully optimized formula (14), then expands the remaining
//! `DFT_m`/`DFT_n` non-terminals with a sequential rule tree.

use crate::check::{check_fully_optimized, Violation};
use crate::ruletree::RuleTree;
use crate::smp_rules::{parallelize, RewriteError, Rewritten};
use spiral_spl::builder::*;
use spiral_spl::diag::DiagSpec;
use spiral_spl::num::divisors;
use spiral_spl::perm::Perm;
use spiral_spl::Spl;

/// Derivation failure.
#[derive(Debug)]
pub enum DeriveError {
    /// `N` has no factorization `N = m·n` with `pµ | m` and `pµ | n`
    /// (the paper's existence condition `(pµ)² | N`).
    NoValidSplit {
        /// The transform size.
        n: usize,
        /// Processor count.
        p: usize,
        /// Cache-line length.
        mu: usize,
    },
    /// The rewriting engine got stuck (should not happen for valid splits).
    Rewrite(RewriteError),
    /// The result failed the Definition 1 checker (would be a bug).
    NotOptimized(Violation),
}

impl std::fmt::Display for DeriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeriveError::NoValidSplit { n, p, mu } => write!(
                f,
                "DFT_{n} admits no multicore split for p={p}, µ={mu}: need (pµ)² | N"
            ),
            DeriveError::Rewrite(e) => write!(f, "rewriting failed: {e}"),
            DeriveError::NotOptimized(v) => {
                write!(f, "derived formula violates Definition 1: {v}")
            }
        }
    }
}

impl std::error::Error for DeriveError {}

/// Pick the default split `N = m·n`: the `m` closest to `√N` among those
/// with `pµ | m` and `pµ | (N/m)` (balanced halves keep both compute
/// stages similar in size, which the DP search then refines).
pub fn default_split(n: usize, p: usize, mu: usize) -> Option<usize> {
    let pmu = p * mu;
    divisors(n)
        .into_iter()
        .filter(|&m| m > 1 && m < n && m % pmu == 0 && (n / m).is_multiple_of(pmu))
        .min_by_key(|&m| {
            let k = n / m;
            m.abs_diff(k)
        })
}

/// Derive the multicore Cooley–Tukey FFT for `DFT_n` on `p` processors
/// with cache-line length `µ`, splitting at `m` (or the default split).
///
/// The returned formula still contains `DFT_m` and `DFT_{n/m}`
/// non-terminals — formula (14) holds *independently of their further
/// decomposition*. It is verified against Definition 1 before returning.
pub fn multicore_dft(
    n: usize,
    p: usize,
    mu: usize,
    split: Option<usize>,
) -> Result<Rewritten, DeriveError> {
    assert!(p >= 1 && mu >= 1);
    if p == 1 {
        // Single processor: no parallelization; return DFT_n unchanged.
        return Ok(Rewritten {
            formula: dft(n),
            trace: vec![],
        });
    }
    let m = split
        .or_else(|| default_split(n, p, mu))
        .ok_or(DeriveError::NoValidSplit { n, p, mu })?;
    let k = n / m;
    let pmu = p * mu;
    if m % pmu != 0 || !k.is_multiple_of(pmu) {
        return Err(DeriveError::NoValidSplit { n, p, mu });
    }
    let tagged = smp(p, mu, cooley_tukey(m, k));
    let rewritten = parallelize(&tagged).map_err(DeriveError::Rewrite)?;
    check_fully_optimized(&rewritten.formula, p, mu).map_err(DeriveError::NotOptimized)?;
    Ok(rewritten)
}

/// The multicore Cooley–Tukey FFT, formula (14) of the paper, built by
/// hand. Used to cross-check that the rewriting system derives exactly
/// this structure. Requires `pµ | m` and `pµ | n`.
pub fn formula_14(m: usize, n: usize, p: usize, mu: usize) -> Spl {
    assert!(
        m.is_multiple_of(p * mu) && n.is_multiple_of(p * mu),
        "need pµ|m and pµ|n"
    );
    let bar = |perm: Perm, blocks: usize| -> Spl {
        let q = if blocks == 1 {
            perm
        } else {
            Perm::TensorId(Box::new(perm), blocks)
        };
        perm_bar(q, mu)
    };
    let twiddles: Vec<Spl> = DiagSpec::twiddle(m, n)
        .split(p)
        .into_iter()
        .map(Spl::Diag)
        .collect();
    compose(vec![
        bar(Perm::stride(m * p, m), n / (p * mu)),
        tensor_par(p, tensor(dft(m), i(n / p))),
        bar(Perm::stride(m * p, p), n / (p * mu)),
        dsum_par(twiddles),
        tensor_par(p, tensor(i(m / p), dft(n))),
        tensor_par(p, stride(m * n / p, m / p)),
        bar(Perm::stride(p * n, p), m / (p * mu)),
    ])
}

/// Replace every `DFT_k` non-terminal by its sequential expansion from
/// `strategy(k)`. Leaves of the strategy's rule trees remain as `DFT`
/// codelet markers (or `F_2`).
pub fn expand_dfts(f: &Spl, strategy: &dyn Fn(usize) -> RuleTree) -> Spl {
    match f {
        Spl::Dft(k) => {
            let t = strategy(*k);
            assert_eq!(t.size(), *k, "strategy returned tree of wrong size");
            match t {
                RuleTree::Leaf(_) => f.clone(), // already terminal
                tree => expand_dfts(&tree.expand(), strategy),
            }
        }
        other => other.map_children(&mut |c| expand_dfts(c, strategy)),
    }
}

/// Full pipeline: derive formula (14) for `DFT_n`, then expand the
/// sub-DFTs with balanced rule trees whose codelet leaves have size at
/// most `max_leaf`.
pub fn multicore_dft_expanded(
    n: usize,
    p: usize,
    mu: usize,
    split: Option<usize>,
    max_leaf: usize,
) -> Result<Spl, DeriveError> {
    let r = multicore_dft(n, p, mu, split)?;
    Ok(expand_dfts(&r.formula, &|k| RuleTree::balanced(k, max_leaf)).normalized())
}

/// Sequential pipeline for comparison: plain Cooley–Tukey recursion, no
/// parallel constructs.
pub fn sequential_dft(n: usize, max_leaf: usize) -> Spl {
    RuleTree::balanced(n, max_leaf).expand().normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::Cplx;
    use spiral_spl::matrix::assert_formula_eq;

    #[test]
    fn default_split_balanced_and_valid() {
        // N = 64, p = 2, µ = 4: pµ = 8 ⇒ m = n = 8.
        assert_eq!(default_split(64, 2, 4), Some(8));
        // N = 256, pµ = 8: candidates m ∈ {8, 16, 32}; balanced is 16.
        assert_eq!(default_split(256, 2, 4), Some(16));
        // No valid split when (pµ)² ∤ N.
        assert_eq!(default_split(32, 2, 4), None);
        assert_eq!(default_split(100, 2, 4), None);
    }

    #[test]
    fn derivation_matches_formula_14_structurally() {
        // The rewriting system must reproduce (14) *exactly*.
        let r = multicore_dft(64, 2, 4, None).unwrap();
        let hand = formula_14(8, 8, 2, 4);
        assert_eq!(
            r.formula.to_string(),
            hand.normalized().to_string(),
            "\nderived: {}\nhand:    {}",
            r.formula,
            hand
        );
    }

    #[test]
    fn derivation_is_correct_fft() {
        for (n, p, mu) in [
            (64usize, 2usize, 4usize),
            (64, 4, 2),
            (256, 2, 4),
            (256, 4, 2),
        ] {
            let r = multicore_dft(n, p, mu, None).unwrap();
            assert_formula_eq(&dft(n), &r.formula, 1e-7);
        }
    }

    #[test]
    fn formula_14_is_correct_fft() {
        for (m, n, p, mu) in [
            (8usize, 8usize, 2usize, 4usize),
            (8, 8, 4, 2),
            (16, 8, 2, 4),
        ] {
            assert_formula_eq(&dft(m * n), &formula_14(m, n, p, mu), 1e-7);
        }
    }

    #[test]
    fn derived_formula_is_fully_optimized() {
        for (n, p, mu) in [
            (64usize, 2usize, 4usize),
            (256, 4, 2),
            (1024, 2, 4),
            (4096, 4, 4),
        ] {
            let r = multicore_dft(n, p, mu, None).unwrap();
            check_fully_optimized(&r.formula, p, mu)
                .unwrap_or_else(|v| panic!("N={n} p={p} µ={mu}: {v}"));
        }
    }

    #[test]
    fn derived_formula_is_perfectly_load_balanced() {
        use crate::check::load_balance_ratio;
        for p in [2usize, 4] {
            let r = multicore_dft(256, p, 4, None).unwrap();
            let ratio = load_balance_ratio(&r.formula, p);
            assert!((ratio - 1.0).abs() < 1e-9, "p={p}: ratio {ratio}");
        }
    }

    #[test]
    fn invalid_sizes_rejected() {
        assert!(matches!(
            multicore_dft(32, 2, 4, None),
            Err(DeriveError::NoValidSplit { .. })
        ));
        // Explicit bad split also rejected.
        assert!(matches!(
            multicore_dft(64, 2, 4, Some(4)),
            Err(DeriveError::NoValidSplit { .. })
        ));
    }

    #[test]
    fn p1_falls_back_to_sequential() {
        let r = multicore_dft(64, 1, 4, None).unwrap();
        assert_eq!(r.formula, dft(64));
        assert!(r.trace.is_empty());
    }

    #[test]
    fn expansion_keeps_correctness() {
        let f = multicore_dft_expanded(64, 2, 4, None, 4).unwrap();
        assert!(!f.has_smp_tag());
        assert_formula_eq(&dft(64), &f, 1e-7);
        // After expansion, no DFT larger than max_leaf remains.
        fn max_dft(f: &Spl) -> usize {
            let own = if let Spl::Dft(k) = f { *k } else { 0 };
            f.children()
                .iter()
                .map(|c| max_dft(c))
                .fold(own, usize::max)
        }
        assert!(max_dft(&f) <= 4, "{f}");
    }

    #[test]
    fn expansion_preserves_definition_1() {
        let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
        check_fully_optimized(&f, 2, 4).unwrap();
    }

    #[test]
    fn sequential_pipeline_correct() {
        let f = sequential_dft(32, 4);
        assert_formula_eq(&dft(32), &f, 1e-8);
        let x: Vec<Cplx> = (0..32).map(|k| Cplx::new(k as f64, 0.0)).collect();
        let y = f.eval(&x);
        assert_eq!(y.len(), 32);
    }

    #[test]
    fn trace_is_nonempty_and_explains() {
        let r = multicore_dft(64, 2, 4, None).unwrap();
        assert!(
            r.trace.len() >= 8,
            "expected a real derivation, got {}",
            r.trace.len()
        );
        // The derivation must use every rule class of Table 1.
        let all: String = r.trace.iter().map(|s| s.rule).collect::<Vec<_>>().join(";");
        for tag in ["(6)", "(7)", "(8", "(9)", "(10)", "(11)"] {
            assert!(all.contains(tag), "missing {tag} in {all}");
        }
    }
}
