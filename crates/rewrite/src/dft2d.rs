//! Multidimensional transforms (paper §2.2: "multi-dimensional
//! transforms … are just tensor products of their one-dimensional
//! counterparts").
//!
//! The 2-D DFT on an `rows × cols` array is `DFT_rows ⊗ DFT_cols`. Its
//! row-column factorization `(DFT_r ⊗ I_c)(I_r ⊗ DFT_c)` feeds directly
//! into Table 1: rule (7) tiles the column stage, rule (9) blocks the row
//! stage — no Cooley–Tukey twiddles needed, which makes the 2-D case a
//! clean exercise of the parallelization rules on their own.

use crate::check::check_fully_optimized;
use crate::derive::DeriveError;
use crate::ruletree::RuleTree;
use crate::smp_rules::{parallelize, Rewritten};
use spiral_spl::builder::*;
use spiral_spl::Spl;

/// The sequential row-column formula for `DFT_{r×c}` (row-major data):
/// `(DFT_r ⊗ I_c) · (I_r ⊗ DFT_c)`.
pub fn dft2d(rows: usize, cols: usize) -> Spl {
    compose(vec![tensor(dft(rows), i(cols)), tensor(i(rows), dft(cols))])
}

/// Derive the parallel 2-D DFT for `p` processors, cache-line length `µ`.
/// Preconditions (from rules (7), (9), (10)): `p | rows`, `p | cols`,
/// and `µ | cols/p` — all satisfied when `pµ | cols` and `p | rows`.
pub fn multicore_dft2d(
    rows: usize,
    cols: usize,
    p: usize,
    mu: usize,
) -> Result<Rewritten, DeriveError> {
    if p == 1 {
        return Ok(Rewritten {
            formula: dft2d(rows, cols),
            trace: vec![],
        });
    }
    if !rows.is_multiple_of(p) || !cols.is_multiple_of(p * mu) {
        return Err(DeriveError::NoValidSplit {
            n: rows * cols,
            p,
            mu,
        });
    }
    let tagged = smp(p, mu, dft2d(rows, cols));
    let rewritten = parallelize(&tagged).map_err(DeriveError::Rewrite)?;
    check_fully_optimized(&rewritten.formula, p, mu).map_err(DeriveError::NotOptimized)?;
    Ok(rewritten)
}

/// Full pipeline: parallel 2-D derivation with the row/column DFTs
/// expanded by balanced rule trees.
pub fn multicore_dft2d_expanded(
    rows: usize,
    cols: usize,
    p: usize,
    mu: usize,
    max_leaf: usize,
) -> Result<Spl, DeriveError> {
    let r = multicore_dft2d(rows, cols, p, mu)?;
    Ok(crate::derive::expand_dfts(&r.formula, &|k| RuleTree::balanced(k, max_leaf)).normalized())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::{assert_slices_close, Cplx};
    use spiral_spl::matrix::assert_formula_eq;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(0.3 * k as f64, 1.0 - 0.2 * k as f64))
            .collect()
    }

    /// Reference 2-D DFT: transform columns then rows (naively).
    fn reference_2d(rows: usize, cols: usize, x: &[Cplx]) -> Vec<Cplx> {
        use spiral_spl::apply::naive_dft;
        // Rows first (contiguous), then columns.
        let mut mid = vec![Cplx::ZERO; rows * cols];
        for r in 0..rows {
            naive_dft(
                cols,
                &x[r * cols..(r + 1) * cols],
                &mut mid[r * cols..(r + 1) * cols],
            );
        }
        let mut out = vec![Cplx::ZERO; rows * cols];
        let mut col_in = vec![Cplx::ZERO; rows];
        let mut col_out = vec![Cplx::ZERO; rows];
        for c in 0..cols {
            for r in 0..rows {
                col_in[r] = mid[r * cols + c];
            }
            naive_dft(rows, &col_in, &mut col_out);
            for r in 0..rows {
                out[r * cols + c] = col_out[r];
            }
        }
        out
    }

    #[test]
    fn row_column_formula_is_the_2d_dft() {
        for (r, c) in [(2usize, 3usize), (4, 4), (3, 5), (8, 4)] {
            let x = ramp(r * c);
            let got = dft2d(r, c).eval(&x);
            let want = reference_2d(r, c, &x);
            assert_slices_close(&got, &want, 1e-8 * (r * c) as f64);
        }
    }

    #[test]
    fn parallel_2d_matches_sequential() {
        for (r, c, p, mu) in [
            (8usize, 16usize, 2usize, 4usize),
            (16, 16, 4, 2),
            (4, 32, 2, 4),
        ] {
            let derived = multicore_dft2d(r, c, p, mu)
                .unwrap_or_else(|e| panic!("{r}x{c} p={p} µ={mu}: {e}"));
            assert_formula_eq(&dft2d(r, c), &derived.formula, 1e-8);
        }
    }

    #[test]
    fn parallel_2d_is_fully_optimized() {
        let derived = multicore_dft2d(8, 16, 2, 4).unwrap();
        check_fully_optimized(&derived.formula, 2, 4).unwrap();
        // Perfect load balance.
        let ratio = crate::check::load_balance_ratio(&derived.formula, 2);
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_2d_sizes_rejected() {
        assert!(multicore_dft2d(7, 16, 2, 4).is_err()); // p ∤ rows
        assert!(multicore_dft2d(8, 12, 2, 4).is_err()); // pµ ∤ cols
    }

    #[test]
    fn expansion_compiles_and_matches() {
        let f = multicore_dft2d_expanded(8, 16, 2, 4, 8).unwrap();
        let x = ramp(128);
        let want = reference_2d(8, 16, &x);
        assert_slices_close(&f.eval(&x), &want, 1e-7);
    }

    #[test]
    fn trace_uses_rules_7_and_9() {
        let derived = multicore_dft2d(8, 16, 2, 4).unwrap();
        let rules: String = derived
            .trace
            .iter()
            .map(|s| s.rule)
            .collect::<Vec<_>>()
            .join(";");
        assert!(rules.contains("(7)"), "{rules}");
        assert!(rules.contains("(9)"), "{rules}");
        assert!(rules.contains("(10)"), "{rules}");
        // No twiddles in the 2-D factorization → rule (11) unused.
        assert!(!rules.contains("(11)"), "{rules}");
    }
}
