//! # spiral-rewrite — the rewriting system of the SC'06 paper
//!
//! This crate is the paper's primary contribution in code:
//!
//! * [`ruletree`] — recursion strategies (factorization trees) for the
//!   Cooley–Tukey breakdown rule (1), the space the autotuner searches;
//! * [`smp_rules`] — the Table 1 shared-memory parallelization rules
//!   (6)–(11) and the engine driving them to a fixpoint;
//! * [`derive`] — the end-to-end derivation producing the *multicore
//!   Cooley–Tukey FFT*, formula (14), plus a hand-built (14) used to
//!   cross-check the derivation;
//! * [`check`] — Definition 1 (*load-balanced*, *avoids false sharing*,
//!   *fully optimized*) as an executable checker, with per-processor
//!   work accounting.
//!
//! ## Example: derive formula (14)
//!
//! ```
//! use spiral_rewrite::derive::multicore_dft;
//! use spiral_rewrite::check::check_fully_optimized;
//!
//! let r = multicore_dft(64, 2, 4, None).unwrap();
//! check_fully_optimized(&r.formula, 2, 4).unwrap();
//! println!("{}", r.formula.pretty());
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod derive;
pub mod dft2d;
pub mod ruletree;
pub mod smp_rules;
pub mod wht;

pub use check::{check_fully_optimized, load_balance_ratio, Violation};
pub use derive::{
    default_split, expand_dfts, formula_14, multicore_dft, multicore_dft_expanded, sequential_dft,
    DeriveError,
};
pub use dft2d::{dft2d, multicore_dft2d, multicore_dft2d_expanded};
pub use ruletree::RuleTree;
pub use smp_rules::{parallelize, RewriteError, RewriteStep, Rewritten};
pub use wht::{multicore_wht, reference_wht, wht};
