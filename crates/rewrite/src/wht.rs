//! The Walsh–Hadamard transform — Spiral's canonical "other" transform.
//!
//! SPL expresses a large class of linear transforms (paper §2.2); the WHT
//! is the simplest: `WHT_{2^k} = (F_2 ⊗ I_{2^{k-1}}) · (I_2 ⊗ WHT_{2^{k-1}})`,
//! no twiddle factors at all. It exercises the shared-memory rules (7),
//! (9), (10) in isolation and demonstrates that the parallelization
//! framework is transform-generic, not DFT-specific.

use crate::check::{check_fully_optimized, Violation};
use crate::derive::DeriveError;
use crate::smp_rules::{parallelize, Rewritten};
use spiral_spl::builder::*;
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;

/// Fully expanded sequential `WHT_{2^k}` as an SPL formula, by the
/// iterative factorization `WHT_{2^k} = Π_i (I_{2^i} ⊗ F_2 ⊗ I_{2^{k-1-i}})`.
pub fn wht(k: u32) -> Spl {
    assert!(k >= 1, "WHT needs size ≥ 2");
    let n = 1usize << k;
    let factors: Vec<Spl> = (0..k)
        .map(|i| {
            let left = 1usize << i;
            let right = n >> (i + 1);
            tensor(i_mat(left), tensor(f2(), i_mat(right))).normalized()
        })
        .collect();
    compose(factors).normalized()
}

fn i_mat(n: usize) -> Spl {
    i(n)
}

/// Derive the `p`-processor, line-length-`µ` parallel WHT by tagging the
/// balanced split `WHT_{2^k} = (WHT_{2^a} ⊗ I_{2^b}) (I_{2^a} ⊗ WHT_{2^b})`
/// and running the Table 1 rules. Requires `pµ | 2^b` and `p | 2^a`.
pub fn multicore_wht(k: u32, p: usize, mu: usize) -> Result<Rewritten, DeriveError> {
    assert!(k >= 1);
    let n = 1usize << k;
    if p == 1 {
        return Ok(Rewritten {
            formula: wht(k),
            trace: vec![],
        });
    }
    // Balanced split with the divisibility conditions of rules (7)/(9).
    let split = (1..k)
        .map(|a| (1usize << a, 1usize << (k - a)))
        .filter(|&(m, c)| m % p == 0 && c % (p * mu) == 0)
        .min_by_key(|&(m, c)| m.abs_diff(c));
    let (m, c) = split.ok_or(DeriveError::NoValidSplit { n, p, mu })?;
    let top = compose(vec![
        tensor(wht(m.trailing_zeros()), i(c)),
        tensor(i(m), wht(c.trailing_zeros())),
    ]);
    let rewritten = parallelize(&smp(p, mu, top)).map_err(DeriveError::Rewrite)?;
    check_fully_optimized(&rewritten.formula, p, mu).map_err(DeriveError::NotOptimized)?;
    Ok(rewritten)
}

/// Direct O(n log n) reference WHT (in-place butterfly recursion) for
/// testing.
pub fn reference_wht(x: &[Cplx]) -> Vec<Cplx> {
    let n = x.len();
    assert!(n.is_power_of_two());
    let mut a = x.to_vec();
    let mut len = 1;
    while len < n {
        for base in (0..n).step_by(2 * len) {
            for j in 0..len {
                let u = a[base + j];
                let v = a[base + j + len];
                a[base + j] = u + v;
                a[base + j + len] = u - v;
            }
        }
        len *= 2;
    }
    a
}

/// Check that a `Violation` never occurs for valid WHT configurations —
/// re-exported for property tests.
pub fn wht_is_fully_optimized(k: u32, p: usize, mu: usize) -> Result<(), Violation> {
    match multicore_wht(k, p, mu) {
        Ok(r) => check_fully_optimized(&r.formula, p, mu),
        Err(_) => Ok(()), // invalid configs are allowed to not exist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;
    use spiral_spl::matrix::assert_formula_eq;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(j as f64 - 1.5, 0.5 * j as f64))
            .collect()
    }

    #[test]
    fn wht_formula_matches_reference() {
        for k in 1..=7 {
            let f = wht(k);
            let n = 1usize << k;
            assert_eq!(f.dim(), n);
            let x = ramp(n);
            assert_slices_close(&f.eval(&x), &reference_wht(&x), 1e-10 * n as f64);
        }
    }

    #[test]
    fn wht_matrix_is_hadamard() {
        // Entries of WHT_8 are all ±1.
        let m = wht(3).to_matrix();
        for z in &m.data {
            assert!(z.im.abs() < 1e-12);
            assert!((z.re.abs() - 1.0).abs() < 1e-12, "{z:?}");
        }
    }

    #[test]
    fn parallel_wht_matches_and_verifies() {
        for (k, p, mu) in [(6u32, 2usize, 4usize), (8, 2, 4), (8, 4, 2), (10, 4, 4)] {
            let r = multicore_wht(k, p, mu).unwrap_or_else(|e| panic!("k={k} p={p} µ={mu}: {e}"));
            assert_formula_eq(&wht(k), &r.formula, 1e-9);
            check_fully_optimized(&r.formula, p, mu).unwrap();
        }
    }

    #[test]
    fn parallel_wht_compiles_to_balanced_plan() {
        use spiral_codegen_check::*;
        // (Inline module below avoids a dev-dependency cycle.)
        mod spiral_codegen_check {
            pub use spiral_spl::cplx::assert_slices_close;
        }
        let r = multicore_wht(8, 2, 4).unwrap();
        let expanded =
            crate::derive::expand_dfts(&r.formula, &|k| crate::ruletree::RuleTree::balanced(k, 8));
        // WHT formulas contain no DFT nonterminals — expansion is a no-op.
        assert_eq!(expanded.to_string(), r.formula.to_string());
        let x = ramp(256);
        assert_slices_close(&r.formula.eval(&x), &reference_wht(&x), 1e-9);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(matches!(
            multicore_wht(3, 4, 4), // 8 points cannot split for pµ = 16
            Err(DeriveError::NoValidSplit { .. })
        ));
    }

    #[test]
    fn wht_is_self_inverse_up_to_n() {
        let k = 5;
        let n = 1usize << k;
        let x = ramp(n);
        let twice = reference_wht(&reference_wht(&x));
        for (a, b) in twice.iter().zip(&x) {
            assert!(a.approx_eq(*b * n as f64, 1e-9));
        }
    }
}
