//! Rule trees: the recursion strategies of the formula generator.
//!
//! A rule tree records, for each (sub)transform, which breakdown rule was
//! chosen and how the size was factored — e.g. `8 → 2×4 → 2×(2×2)` (the
//! paper's example before eq. (2)). The search engine (crate
//! `spiral-search`) explores this space; the expander turns a tree into an
//! SPL formula.

use spiral_spl::builder::*;
use spiral_spl::num::{divisors, splittings};
use spiral_spl::Spl;
use std::fmt;

/// A recursion strategy for `DFT_n`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RuleTree {
    /// Terminal: implement `DFT_n` directly (a *codelet*; `n = 2` becomes
    /// the butterfly `F_2`, other small sizes an unrolled base case).
    Leaf(usize),
    /// Cooley–Tukey rule (1) with `n = m·k`, recursing on both factors.
    Ct(Box<RuleTree>, Box<RuleTree>),
}

impl RuleTree {
    /// Transform size this tree computes.
    pub fn size(&self) -> usize {
        match self {
            RuleTree::Leaf(n) => *n,
            RuleTree::Ct(m, k) => m.size() * k.size(),
        }
    }

    /// Depth of the recursion (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            RuleTree::Leaf(_) => 1,
            RuleTree::Ct(m, k) => 1 + m.depth().max(k.depth()),
        }
    }

    /// Number of leaves (codelets) in the tree.
    pub fn leaves(&self) -> usize {
        match self {
            RuleTree::Leaf(_) => 1,
            RuleTree::Ct(m, k) => m.leaves() + k.leaves(),
        }
    }

    /// Expand into a fully sequential SPL formula: every internal node
    /// becomes one application of Cooley–Tukey rule (1), every leaf a
    /// terminal (`F_2` for size 2, `DFT_n` codelet marker otherwise).
    pub fn expand(&self) -> Spl {
        match self {
            RuleTree::Leaf(2) => f2(),
            RuleTree::Leaf(n) => dft(*n),
            RuleTree::Ct(mt, kt) => {
                let (m, k) = (mt.size(), kt.size());
                compose(vec![
                    tensor(mt.expand(), i(k)),
                    twiddle(m, k),
                    tensor(i(m), kt.expand()),
                    stride(m * k, m),
                ])
            }
        }
    }

    /// Right-expanded radix-`r` tree: `n = r × (r × (… × base))`, the
    /// classic iterative FFT schedule. Sizes not divisible keep a larger
    /// leaf at the end.
    pub fn right_radix(n: usize, r: usize) -> RuleTree {
        assert!(n >= 2 && r >= 2);
        if n.is_multiple_of(r) && n / r > 1 {
            RuleTree::Ct(
                Box::new(RuleTree::Leaf(r)),
                Box::new(RuleTree::right_radix(n / r, r)),
            )
        } else {
            RuleTree::Leaf(n)
        }
    }

    /// Balanced tree: split as close to √n as possible at every level,
    /// down to leaves of size at most `max_leaf`.
    pub fn balanced(n: usize, max_leaf: usize) -> RuleTree {
        assert!(n >= 2 && max_leaf >= 2);
        if n <= max_leaf {
            return RuleTree::Leaf(n);
        }
        // Divisor closest to √n (prefer the smaller side ≤ √n).
        let best = divisors(n)
            .into_iter()
            .filter(|&d| d > 1 && d < n)
            .min_by_key(|&d| {
                let q = n / d;
                d.abs_diff(q)
            });
        match best {
            Some(m) => RuleTree::Ct(
                Box::new(RuleTree::balanced(m, max_leaf)),
                Box::new(RuleTree::balanced(n / m, max_leaf)),
            ),
            None => RuleTree::Leaf(n), // prime
        }
    }

    /// All rule trees for size `n` with leaves of size at most `max_leaf`.
    /// Exponential in `log n`; fine for the sizes the DP search visits,
    /// guarded by `cap` (returns at most `cap` trees).
    pub fn enumerate(n: usize, max_leaf: usize, cap: usize) -> Vec<RuleTree> {
        let mut out = Vec::new();
        if n <= max_leaf {
            out.push(RuleTree::Leaf(n));
        }
        for (m, k) in splittings(n) {
            if out.len() >= cap {
                break;
            }
            for mt in RuleTree::enumerate(m, max_leaf, cap) {
                for kt in RuleTree::enumerate(k, max_leaf, cap) {
                    out.push(RuleTree::Ct(Box::new(mt.clone()), Box::new(kt)));
                    if out.len() >= cap {
                        return out;
                    }
                }
            }
        }
        // A prime larger than max_leaf still needs a terminal.
        if out.is_empty() {
            out.push(RuleTree::Leaf(n));
        }
        out
    }

    /// Number of distinct rule trees with the given leaf bound (no cap).
    pub fn count(n: usize, max_leaf: usize) -> u64 {
        fn go(n: usize, max_leaf: usize, memo: &mut std::collections::HashMap<usize, u64>) -> u64 {
            if let Some(&c) = memo.get(&n) {
                return c;
            }
            let mut c = if n <= max_leaf { 1 } else { 0 };
            for (m, k) in splittings(n) {
                c += go(m, max_leaf, memo) * go(k, max_leaf, memo);
            }
            if c == 0 {
                c = 1; // prime fallback leaf
            }
            memo.insert(n, c);
            c
        }
        go(n, max_leaf, &mut std::collections::HashMap::new())
    }
}

impl fmt::Display for RuleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleTree::Leaf(n) => write!(f, "{n}"),
            RuleTree::Ct(m, k) => write!(f, "({m} x {k})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::{assert_slices_close, Cplx};

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64, 1.0 - k as f64 * 0.25))
            .collect()
    }

    #[test]
    fn sizes_and_shape() {
        let t = RuleTree::right_radix(16, 2);
        assert_eq!(t.size(), 16);
        assert_eq!(t.to_string(), "(2 x (2 x (2 x 2)))");
        assert_eq!(t.depth(), 4);
        assert_eq!(t.leaves(), 4);
    }

    #[test]
    fn balanced_splits_near_sqrt() {
        let t = RuleTree::balanced(64, 2);
        assert_eq!(t.size(), 64);
        if let RuleTree::Ct(m, k) = &t {
            assert_eq!(m.size(), 8);
            assert_eq!(k.size(), 8);
        } else {
            panic!("expected split");
        }
    }

    #[test]
    fn balanced_respects_max_leaf() {
        let t = RuleTree::balanced(32, 8);
        fn max_leaf(t: &RuleTree) -> usize {
            match t {
                RuleTree::Leaf(n) => *n,
                RuleTree::Ct(a, b) => max_leaf(a).max(max_leaf(b)),
            }
        }
        assert!(max_leaf(&t) <= 8);
    }

    #[test]
    fn prime_becomes_leaf() {
        assert_eq!(RuleTree::balanced(7, 2), RuleTree::Leaf(7));
        assert_eq!(RuleTree::right_radix(7, 2), RuleTree::Leaf(7));
    }

    #[test]
    fn expansion_computes_the_dft() {
        use spiral_spl::builder::dft;
        for n in [4usize, 8, 12, 16, 30] {
            for t in [
                RuleTree::right_radix(n, 2),
                RuleTree::balanced(n, 2),
                RuleTree::balanced(n, 4),
            ] {
                let f = t.expand();
                assert_eq!(f.dim(), n, "tree {t}");
                let x = ramp(n);
                assert_slices_close(&dft(n).eval(&x), &f.eval(&x), 1e-8);
            }
        }
    }

    #[test]
    fn enumerate_finds_all_small_trees() {
        // DFT_8 with leaves ≤ 2: trees over factorizations of 8 into 2s:
        // (2 x (2 x 2)), ((2 x 2) x 2) ... exactly the binary trees over
        // the multiset {2,2,2}: 2 shapes... plus splits 2x4/4x2 recursions.
        let trees = RuleTree::enumerate(8, 2, 1000);
        assert!(trees.iter().all(|t| t.size() == 8));
        let count = RuleTree::count(8, 2);
        assert_eq!(trees.len() as u64, count);
        // 8 = 2*(4) with 4 = 2*2 (1 tree for 4) → via (2,4):1, (4,2):1 → 2
        assert_eq!(count, 2);
    }

    #[test]
    fn count_grows_with_leaf_bound() {
        // With leaves up to 4, DFT_8 additionally has Leaf-4 splits.
        // trees(8): (2x4leaf),(2x(2x2)),(4leaf x2),((2x2)x2), plus... = 4
        assert_eq!(RuleTree::count(8, 4), 4);
        assert!(RuleTree::count(16, 4) > RuleTree::count(16, 2));
    }

    #[test]
    fn enumerate_respects_cap() {
        let trees = RuleTree::enumerate(64, 2, 5);
        assert!(trees.len() <= 5 && !trees.is_empty());
    }
}
