//! The shared-memory parallelization rules of Table 1 and the rewriting
//! engine that drives them to a fixpoint.
//!
//! Each rule matches a tagged subformula `smp(p,µ)[…]` and replaces it by
//! semantically equal structure that is either fully parallel (the tagged
//! operators `I_p ⊗∥ A`, `⊕∥`, `P ⊗̄ I_µ`) or closer to it (products of
//! re-tagged factors). The rules replace the expensive dependence analysis
//! of a parallelizing compiler with cheap pattern matching (paper §3.1).

use spiral_spl::ast::Spl;
use spiral_spl::builder::*;
use spiral_spl::perm::Perm;

/// One recorded rewriting step, for tracing/explanation.
#[derive(Clone, Debug)]
pub struct RewriteStep {
    /// Rule name, e.g. `"(7) A⊗I tiling"`.
    pub rule: &'static str,
    /// The tagged subformula that was matched.
    pub before: String,
    /// Its replacement.
    pub after: String,
}

/// Result of a successful parallelization run.
#[derive(Clone, Debug)]
pub struct Rewritten {
    /// The fully rewritten formula (no `smp` tags remain).
    pub formula: Spl,
    /// The sequence of rule applications that produced it.
    pub trace: Vec<RewriteStep>,
}

/// Rewriting failure.
#[derive(Clone, Debug)]
pub enum RewriteError {
    /// No rule applies to a tagged subformula (typically a divisibility
    /// precondition like `pµ | n` is violated).
    Stuck {
        /// The tagged subformula no rule matched.
        subformula: String,
        /// Processor count of the tag.
        p: usize,
        /// Cache-line length of the tag.
        mu: usize,
    },
    /// Iteration guard tripped (would indicate a non-terminating rule set).
    TooManySteps(usize),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Stuck { subformula, p, mu } => write!(
                f,
                "no smp({p},{mu}) rule applies to {subformula} (divisibility precondition violated?)"
            ),
            RewriteError::TooManySteps(n) => write!(f, "rewriting exceeded {n} steps"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// Drive the Table 1 rules to a fixpoint: returns a formula without `smp`
/// tags in which all parallelism is expressed through the tagged operators.
pub fn parallelize(f: &Spl) -> Result<Rewritten, RewriteError> {
    const MAX_STEPS: usize = 100_000;
    let mut cur = f.normalized();
    let mut trace = Vec::new();
    for _ in 0..MAX_STEPS {
        match rewrite_first_tag(&cur, &mut trace)? {
            Some(next) => cur = next.normalized(),
            None => {
                return Ok(Rewritten {
                    formula: cur,
                    trace,
                })
            }
        }
    }
    Err(RewriteError::TooManySteps(MAX_STEPS))
}

/// Find the leftmost-outermost `smp` tag and apply one rule to it.
/// Returns `None` when no tags remain.
fn rewrite_first_tag(f: &Spl, trace: &mut Vec<RewriteStep>) -> Result<Option<Spl>, RewriteError> {
    if let Spl::Smp { p, mu, a } = f {
        let (name, replacement) = apply_rule(*p, *mu, a).ok_or_else(|| RewriteError::Stuck {
            subformula: a.to_string(),
            p: *p,
            mu: *mu,
        })?;
        trace.push(RewriteStep {
            rule: name,
            before: f.to_string(),
            after: replacement.to_string(),
        });
        return Ok(Some(replacement));
    }
    // Recurse into the first child containing a tag.
    if !f.has_smp_tag() {
        return Ok(None);
    }
    let mut result: Result<(), RewriteError> = Ok(());
    let mut done = false;
    let out = f.map_children(&mut |c| {
        if done || !c.has_smp_tag() || result.is_err() {
            return c.clone();
        }
        match rewrite_first_tag(c, trace) {
            Ok(Some(next)) => {
                done = true;
                next
            }
            Ok(None) => c.clone(),
            Err(e) => {
                result = Err(e);
                c.clone()
            }
        }
    });
    result?;
    Ok(if done { Some(out) } else { None })
}

/// Apply the first applicable Table 1 rule to `smp(p,µ)[a]`.
/// Returns the rule name and the replacement (which may contain new tags).
fn apply_rule(p: usize, mu: usize, a: &Spl) -> Option<(&'static str, Spl)> {
    match a {
        // Trivial: identity splits into p blocks directly.
        Spl::I(n) if n % p == 0 => Some(("(id) I_n -> Ip (x)|| I_{n/p}", tensor_par(p, i(n / p)))),

        // Rule (6): AB -> smp[A] smp[B] (factor-wise rewriting).
        Spl::Compose(fs) => Some((
            "(6) product",
            compose(fs.iter().map(|x| smp(p, mu, x.clone())).collect()),
        )),

        // Already-parallel constructs: drop the tag.
        Spl::TensorPar { .. } | Spl::DirectSumPar(_) | Spl::PermBar { .. } => {
            Some(("(drop) already parallel", a.clone()))
        }

        // Rule (8): stride permutation L^{mn}_m. The splits are vacuous
        // when the split-off factor is 1 (they would reproduce the input
        // and loop), hence the `> p` guards.
        Spl::Perm(Perm::Stride { mn, m }) => {
            let n = mn / m;
            if m % p == 0 && *m > p {
                // L^{mn}_m = (I_p ⊗ L^{mn/p}_{m/p}) (L^{pn}_p ⊗ I_{m/p})
                Some((
                    "(8a) stride split (p|m)",
                    compose(vec![
                        smp(p, mu, tensor(i(p), stride(mn / p, m / p))),
                        smp(p, mu, tensor(stride(p * n, p), i(m / p))),
                    ]),
                ))
            } else if n % p == 0 && n > p {
                // L^{mn}_m = (L^{pm}_m ⊗ I_{n/p}) (I_p ⊗ L^{mn/p}_m)
                Some((
                    "(8b) stride split (p|n)",
                    compose(vec![
                        smp(p, mu, tensor(stride(p * m, *m), i(n / p))),
                        smp(p, mu, tensor(i(p), stride(mn / p, *m))),
                    ]),
                ))
            } else if mu == 1 {
                // With single-element cache lines any permutation moves
                // whole lines; P ⊗̄ I_1 = P.
                Some((
                    "(10') bare perm, µ=1",
                    perm_bar(Perm::Stride { mn: *mn, m: *m }, 1),
                ))
            } else {
                None
            }
        }

        // Other bare permutations: only line-granular with µ = 1.
        Spl::Perm(q) if mu == 1 => Some(("(10') bare perm, µ=1", perm_bar(q.clone(), 1))),

        // Rule (9): I_m ⊗ A_n -> I_p ⊗∥ (I_{m/p} ⊗ A_n), requires p | m.
        Spl::Tensor(l, r) => {
            if let Spl::I(m) = **l {
                if m % p == 0 {
                    let inner = tensor(i(m / p), (**r).clone()).normalized();
                    return Some(("(9) I(x)A block split", tensor_par(p, inner)));
                }
                return None;
            }
            // Rule (10): P ⊗ I_n -> (P ⊗ I_{n/µ}) ⊗̄ I_µ for permutations P,
            // requires µ | n.
            if let Spl::I(n) = **r {
                if let Some(perm) = l.as_perm() {
                    if n % mu == 0 {
                        let blocks = if n / mu == 1 {
                            perm
                        } else {
                            Perm::TensorId(Box::new(perm), n / mu)
                        };
                        return Some(("(10) cacheline perm", perm_bar(blocks, mu)));
                    }
                    return None;
                }
                // Rule (7): A_m ⊗ I_n for general A, requires p | n:
                // (L^{mp}_m ⊗ I_{n/p}) (I_p ⊗ (A_m ⊗ I_{n/p})) (L^{mp}_p ⊗ I_{n/p})
                let m = l.dim();
                if n % p == 0 {
                    let q = n / p;
                    return Some((
                        "(7) A(x)I tiling",
                        compose(vec![
                            smp(p, mu, tensor(stride(m * p, m), i(q)).normalized()),
                            smp(
                                p,
                                mu,
                                tensor(i(p), tensor((**l).clone(), i(q)).normalized()),
                            ),
                            smp(p, mu, tensor(stride(m * p, p), i(q)).normalized()),
                        ]),
                    ));
                }
                return None;
            }
            // General A ⊗ B = (A ⊗ I)(I ⊗ B), both re-tagged.
            let (m, n) = (l.dim(), r.dim());
            Some((
                "(split) A(x)B -> (A(x)I)(I(x)B)",
                compose(vec![
                    smp(p, mu, tensor((**l).clone(), i(n))),
                    smp(p, mu, tensor(i(m), (**r).clone())),
                ]),
            ))
        }

        // Rule (11): diagonal D -> ⊕∥ D_i, requires p | dim.
        Spl::Diag(d) if d.len() % p == 0 => Some((
            "(11) diag split",
            dsum_par(d.split(p).into_iter().map(Spl::Diag).collect()),
        )),

        // Direct sums with p | #summands of equal size: group per processor.
        Spl::DirectSum(fs)
            if fs.len() % p == 0 && fs.windows(2).all(|w| w[0].dim() == w[1].dim()) =>
        {
            let per = fs.len() / p;
            let groups: Vec<Spl> = fs
                .chunks(per)
                .map(|c| {
                    if c.len() == 1 {
                        c[0].clone()
                    } else {
                        dsum(c.to_vec())
                    }
                })
                .collect();
            Some(("(dsum) group summands", dsum_par(groups)))
        }

        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::Cplx;
    use spiral_spl::matrix::assert_formula_eq;

    fn parallelize_ok(f: &Spl) -> Spl {
        let r = parallelize(f).unwrap_or_else(|e| panic!("rewrite failed: {e}"));
        assert!(!r.formula.has_smp_tag());
        r.formula
    }

    /// Rewriting preserves semantics — checked by matrix equality.
    fn check_preserves(f: &Spl) {
        let g = parallelize_ok(f);
        assert_formula_eq(f, &g, 1e-9);
    }

    #[test]
    fn rule6_product_splits() {
        let f = smp(2, 2, compose(vec![stride(8, 2), stride(8, 4)]));
        check_preserves(&f);
    }

    #[test]
    fn rule7_tensor_ai_matches() {
        // A_m ⊗ I_n conjugation identity, A = DFT_3 (not a permutation).
        let f = smp(2, 2, tensor(dft(3), i(4)));
        let g = parallelize_ok(&f);
        assert_formula_eq(&tensor(dft(3), i(4)), &g, 1e-9);
        // The result must contain a parallel tensor.
        assert!(format!("{g}").contains("@||"), "{g}");
    }

    #[test]
    fn rule8a_stride_split_p_divides_m() {
        let f = smp(2, 2, stride(16, 4));
        check_preserves(&f);
    }

    #[test]
    fn rule8b_stride_split_p_divides_n_only() {
        // L^{12}_3: m=3 not divisible by 2, n=4 is.
        let f = smp(2, 2, stride(12, 3));
        check_preserves(&f);
    }

    #[test]
    fn rule9_block_split() {
        let f = smp(2, 2, tensor(i(4), dft(3)));
        let g = parallelize_ok(&f);
        assert_formula_eq(&tensor(i(4), dft(3)), &g, 1e-9);
        assert_eq!(g, tensor_par(2, tensor(i(2), dft(3))));
    }

    #[test]
    fn rule10_cacheline_perm() {
        let f = smp(2, 4, tensor(stride(6, 2), i(8)));
        let g = parallelize_ok(&f);
        assert_formula_eq(&tensor(stride(6, 2), i(8)), &g, 1e-9);
        match &g {
            Spl::PermBar { mu, .. } => assert_eq!(*mu, 4),
            other => panic!("expected P (x)bar I_mu, got {other}"),
        }
    }

    #[test]
    fn rule11_diag_split() {
        let f = smp(4, 2, twiddle(4, 4));
        let g = parallelize_ok(&f);
        assert_formula_eq(&twiddle(4, 4), &g, 1e-9);
        match &g {
            Spl::DirectSumPar(parts) => assert_eq!(parts.len(), 4),
            other => panic!("expected parallel direct sum, got {other}"),
        }
    }

    #[test]
    fn full_cooley_tukey_parallelizes() {
        // smp(2,2)[CT(4,8)] — all preconditions hold (pµ=4 divides 4 and 8).
        let ct = cooley_tukey(4, 8);
        let f = smp(2, 2, ct.clone());
        let g = parallelize_ok(&f);
        assert_formula_eq(&dft(32), &g, 1e-8);
    }

    #[test]
    fn stuck_on_bad_divisibility() {
        // p = 3 cannot split DFT_2 ⊗ I_2 structures of size 4.
        let f = smp(3, 2, tensor(dft(2), i(2)));
        match parallelize(&f) {
            Err(RewriteError::Stuck { .. }) => {}
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_rules() {
        let f = smp(2, 2, cooley_tukey(4, 4));
        let r = parallelize(&f).unwrap();
        let rules: Vec<&str> = r.trace.iter().map(|s| s.rule).collect();
        assert!(rules.iter().any(|r| r.starts_with("(6)")), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("(7)")), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("(9)")), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("(10)")), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("(11)")), "{rules:?}");
        assert!(rules.iter().any(|r| r.starts_with("(8")), "{rules:?}");
    }

    #[test]
    fn untagged_formula_is_untouched() {
        let f = cooley_tukey(2, 4);
        let r = parallelize(&f).unwrap();
        assert!(r.trace.is_empty());
        assert_formula_eq(&f, &r.formula, 1e-12);
    }

    #[test]
    fn nested_tags_in_larger_formula() {
        // Tag only part of a formula; the rest stays sequential.
        let f = compose(vec![tensor(i(2), dft(4)), smp(2, 2, stride(8, 2))]);
        let g = parallelize_ok(&f);
        assert_formula_eq(&compose(vec![tensor(i(2), dft(4)), stride(8, 2)]), &g, 1e-9);
    }

    #[test]
    fn rule7_loop_schedule_matches_paper_listing() {
        // The paper's §3.1 listing: n/p consecutive iterations of
        // (A_m ⊗ I_n) run on the same processor. Structurally this means
        // the middle factor is I_p ⊗∥ (A_m ⊗ I_{n/p}).
        let f = smp(2, 1, tensor(dft(2), i(8)));
        let g = parallelize_ok(&f);
        let s = g.to_string();
        assert!(
            s.contains("(I_2 @|| (DFT_2 @ I_4))"),
            "middle factor not in consecutive-block schedule: {s}"
        );
    }

    #[test]
    fn explicit_diag_rule11() {
        let entries: Vec<Cplx> = (0..8).map(|k| Cplx::new(k as f64, -1.0)).collect();
        let f = smp(2, 2, diag(entries.clone()));
        let g = parallelize_ok(&f);
        assert_formula_eq(&diag(entries), &g, 1e-12);
    }
}
