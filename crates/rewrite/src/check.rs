//! Structural verification of the paper's Definition 1.
//!
//! A formula is *load-balanced* / *avoids false sharing* if it is built
//! from the tagged parallel operators (4) — `I_p ⊗∥ A`, `⊕∥ A_i` with
//! equal-size blocks of dimension divisible by µ, `P ⊗̄ I_µ` — closed
//! under products and `I_m ⊗ ·` (5). A formula is *fully optimized* if it
//! is both. This module implements that definition as a checker, plus a
//! quantitative per-processor work accounting used by the load-balance
//! tests and the search engine's cost model.

use spiral_spl::ast::Spl;
use spiral_spl::num::is_pow2;

/// Why a formula fails Definition 1.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// An `smp(p,µ)` tag remains — rewriting did not finish.
    TagRemains(String),
    /// A subformula does computation outside any parallel construct.
    NotParallel(String),
    /// A parallel construct is for the wrong number of processors.
    WrongWidth {
        /// The width found in the formula.
        found: usize,
        /// The expected width (p or µ).
        want: usize,
        /// The offending subformula.
        at: String,
    },
    /// A parallel block's dimension is not a multiple of µ, so a cache
    /// line could span two processors' data (false sharing).
    Misaligned {
        /// The block dimension.
        dim: usize,
        /// The cache-line length it must divide into.
        mu: usize,
        /// The offending subformula.
        at: String,
    },
    /// A parallel direct sum has blocks of unequal size (unequal work).
    UnequalBlocks(String),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::TagRemains(s) => write!(f, "smp tag remains at {s}"),
            Violation::NotParallel(s) => write!(f, "sequential computation at {s}"),
            Violation::WrongWidth { found, want, at } => {
                write!(f, "parallel width {found}, expected {want}, at {at}")
            }
            Violation::Misaligned { dim, mu, at } => {
                write!(f, "block dim {dim} not a multiple of µ={mu} at {at}")
            }
            Violation::UnequalBlocks(s) => write!(f, "unequal parallel blocks at {s}"),
        }
    }
}

/// Check that `f` is *fully optimized* for `p` processors and cache-line
/// length `µ` in the sense of Definition 1.
pub fn check_fully_optimized(f: &Spl, p: usize, mu: usize) -> Result<(), Violation> {
    match f {
        Spl::Smp { .. } => Err(Violation::TagRemains(f.to_string())),
        // vec(ν) is a backend hint, not an unfinished-rewriting tag: it is
        // transparent to the shared-memory structure underneath.
        Spl::Vec { a, .. } | Spl::Dist { a, .. } => check_fully_optimized(a, p, mu),
        Spl::Compose(fs) => fs.iter().try_for_each(|x| check_fully_optimized(x, p, mu)),
        // Definition 1 (5): I_m ⊗ A with A fully optimized.
        Spl::Tensor(l, r) if matches!(**l, Spl::I(_)) => check_fully_optimized(r, p, mu),
        Spl::TensorPar { p: pp, a } => {
            if *pp != p {
                return Err(Violation::WrongWidth {
                    found: *pp,
                    want: p,
                    at: f.to_string(),
                });
            }
            if a.dim() % mu != 0 {
                return Err(Violation::Misaligned {
                    dim: a.dim(),
                    mu,
                    at: f.to_string(),
                });
            }
            Ok(())
        }
        Spl::DirectSumPar(blocks) => {
            if blocks.len() != p {
                return Err(Violation::WrongWidth {
                    found: blocks.len(),
                    want: p,
                    at: f.to_string(),
                });
            }
            let d0 = blocks[0].dim();
            if blocks.iter().any(|b| b.dim() != d0) {
                return Err(Violation::UnequalBlocks(f.to_string()));
            }
            if d0 % mu != 0 {
                return Err(Violation::Misaligned {
                    dim: d0,
                    mu,
                    at: f.to_string(),
                });
            }
            Ok(())
        }
        Spl::PermBar { mu: m, .. } => {
            if *m == mu {
                Ok(())
            } else {
                Err(Violation::WrongWidth {
                    found: *m,
                    want: mu,
                    at: f.to_string(),
                })
            }
        }
        // Identities do no computation and touch no memory exclusively.
        Spl::I(_) => Ok(()),
        other => Err(Violation::NotParallel(other.to_string())),
    }
}

/// Estimated floating-point operations to apply `f` (real flops; a complex
/// add is 2, a complex multiply 6). Codelet leaves (`DFT_n`) are costed at
/// `5 n log2 n` when `n` is a power of two (the FFT cost the pseudo-Mflop/s
/// metric normalizes by), and `8 n²` otherwise (naive fallback).
pub fn flops(f: &Spl) -> f64 {
    match f {
        Spl::I(_) | Spl::Perm(_) | Spl::PermBar { .. } => 0.0,
        Spl::F2 => 4.0,
        Spl::Dft(n) => {
            let n = *n;
            if n == 1 {
                0.0
            } else if is_pow2(n) {
                5.0 * n as f64 * (n as f64).log2()
            } else {
                8.0 * (n * n) as f64
            }
        }
        Spl::Diag(d) => 6.0 * d.len() as f64,
        Spl::Compose(fs) => fs.iter().map(flops).sum(),
        Spl::Tensor(a, b) => a.dim() as f64 * flops(b) + b.dim() as f64 * flops(a),
        Spl::DirectSum(fs) | Spl::DirectSumPar(fs) => fs.iter().map(flops).sum(),
        Spl::TensorPar { p, a } => *p as f64 * flops(a),
        Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => flops(a),
    }
}

/// Per-processor work assignment implied by the parallel structure.
/// Sequential computation is charged to processor 0 (worst case), which
/// makes imbalance visible.
pub fn per_processor_flops(f: &Spl, p: usize) -> Vec<f64> {
    let mut acc = vec![0.0; p];
    accumulate(f, p, 1.0, &mut acc);
    acc
}

fn accumulate(f: &Spl, p: usize, mult: f64, acc: &mut [f64]) {
    match f {
        Spl::Compose(fs) => {
            for x in fs {
                accumulate(x, p, mult, acc);
            }
        }
        Spl::TensorPar { p: pp, a } => {
            let w = mult * flops(a);
            for (i, slot) in acc.iter_mut().enumerate().take(*pp) {
                if i < p {
                    *slot += w;
                }
            }
        }
        Spl::DirectSumPar(blocks) => {
            for (i, b) in blocks.iter().enumerate() {
                if i < p {
                    acc[i] += mult * flops(b);
                }
            }
        }
        Spl::Tensor(l, r) if matches!(**l, Spl::I(_)) => {
            let m = l.dim() as f64;
            accumulate(r, p, mult * m, acc);
        }
        Spl::I(_) | Spl::Perm(_) | Spl::PermBar { .. } => {}
        Spl::Smp { a, .. } | Spl::Vec { a, .. } | Spl::Dist { a, .. } => {
            accumulate(a, p, mult, acc)
        }
        other => acc[0] += mult * flops(other),
    }
}

/// Load-balance ratio `max / mean` of the per-processor work (1.0 is
/// perfect). Returns `f64::INFINITY` if some processor does all the work
/// while others idle entirely with nonzero total.
pub fn load_balance_ratio(f: &Spl, p: usize) -> f64 {
    let w = per_processor_flops(f, p);
    let total: f64 = w.iter().sum();
    if total == 0.0 {
        return 1.0;
    }
    let mean = total / p as f64;
    w.iter().cloned().fold(0.0, f64::max) / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::builder::*;
    use spiral_spl::perm::Perm;

    #[test]
    fn accepts_parallel_forms() {
        let p = 2;
        let mu = 4;
        assert!(check_fully_optimized(&tensor_par(2, dft(8)), p, mu).is_ok());
        assert!(check_fully_optimized(&dsum_par(vec![dft(8), dft(8)]), p, mu).is_ok());
        assert!(check_fully_optimized(&perm_bar(Perm::stride(4, 2), 4), p, mu).is_ok());
        // Products and I_m ⊗ (…) of those.
        let f = compose(vec![
            tensor(i(4), tensor_par(2, dft(8))),
            perm_bar(Perm::stride(16, 2), 4),
        ]);
        assert!(check_fully_optimized(&f, p, mu).is_ok());
    }

    #[test]
    fn rejects_sequential_compute() {
        assert!(matches!(
            check_fully_optimized(&dft(8), 2, 4),
            Err(Violation::NotParallel(_))
        ));
        assert!(matches!(
            check_fully_optimized(&tensor(dft(2), i(4)), 2, 4),
            Err(Violation::NotParallel(_))
        ));
    }

    #[test]
    fn rejects_wrong_width_and_misalignment() {
        assert!(matches!(
            check_fully_optimized(&tensor_par(4, dft(8)), 2, 4),
            Err(Violation::WrongWidth {
                found: 4,
                want: 2,
                ..
            })
        ));
        // Block of dim 6 with µ=4: cache line would straddle processors.
        assert!(matches!(
            check_fully_optimized(&tensor_par(2, dft(6)), 2, 4),
            Err(Violation::Misaligned { dim: 6, mu: 4, .. })
        ));
        assert!(matches!(
            check_fully_optimized(&perm_bar(Perm::stride(4, 2), 2), 2, 4),
            Err(Violation::WrongWidth { .. })
        ));
    }

    #[test]
    fn rejects_unequal_blocks_and_tags() {
        assert!(matches!(
            check_fully_optimized(&dsum_par(vec![dft(4), dft(8)]), 2, 4),
            Err(Violation::UnequalBlocks(_))
        ));
        assert!(matches!(
            check_fully_optimized(&smp(2, 4, dft(8)), 2, 4),
            Err(Violation::TagRemains(_))
        ));
    }

    #[test]
    fn flop_model_basics() {
        assert_eq!(flops(&f2()), 4.0);
        assert_eq!(flops(&i(64)), 0.0);
        assert_eq!(flops(&stride(8, 2)), 0.0);
        // DFT_8 codelet: 5·8·3 = 120
        assert_eq!(flops(&dft(8)), 120.0);
        // I_4 ⊗ DFT_8: 4 copies
        assert_eq!(flops(&tensor(i(4), dft(8))), 480.0);
        // tensor symmetric
        assert_eq!(flops(&tensor(dft(8), i(4))), 480.0);
        assert_eq!(flops(&twiddle(2, 4)), 48.0);
    }

    #[test]
    fn parallel_constructs_balance_perfectly() {
        let f = compose(vec![
            tensor_par(2, tensor(dft(4), i(8))),
            dsum_par(vec![twiddle(2, 4), twiddle(2, 4)]),
        ]);
        let w = per_processor_flops(&f, 2);
        assert_eq!(w[0], w[1]);
        assert!((load_balance_ratio(&f, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_compute_shows_imbalance() {
        let f = dft(16); // all work on processor 0
        let w = per_processor_flops(&f, 4);
        assert!(w[0] > 0.0);
        assert_eq!(w[1], 0.0);
        assert_eq!(load_balance_ratio(&f, 4), 4.0);
    }

    #[test]
    fn im_tensor_multiplies_inner_work() {
        let f = tensor(i(4), tensor_par(2, dft(8)));
        let w = per_processor_flops(&f, 2);
        assert_eq!(w[0], 4.0 * 120.0);
        assert_eq!(w[0], w[1]);
    }
}
