//! §3.2 composability claim: "the fact that (14) breaks down to smaller
//! DFTs with alignment guarantees for their input and output vectors
//! makes it possible to use (14) in tandem with the efficient short
//! vector Cooley–Tukey FFT on machines with SIMD extensions."
//!
//! These tests verify the alignment guarantees structurally: every
//! sub-DFT inside the parallel operators of a derived formula (14) reads
//! and writes at offsets and strides that are multiples of µ — i.e. each
//! would hand a ν-aligned, contiguous-lane view to a short-vector kernel
//! with ν | µ.

use spiral_rewrite::multicore_dft;
use spiral_spl::Spl;

/// Walk a fully-optimized formula and collect, for every parallel block
/// `I_p ⊗∥ A` / `⊕∥ A_i`, the block dimension (the per-processor working
/// vector each sub-DFT runs on).
fn parallel_block_dims(f: &Spl, out: &mut Vec<usize>) {
    match f {
        Spl::TensorPar { a, .. } => out.push(a.dim()),
        Spl::DirectSumPar(blocks) => out.extend(blocks.iter().map(|b| b.dim())),
        _ => {}
    }
    for c in f.children() {
        parallel_block_dims(c, out);
    }
}

/// Collect the sizes of the tensor-with-identity contexts the sub-DFT
/// non-terminals sit in: for `DFT_m ⊗ I_k` and `I_k ⊗ DFT_m`, record `k`.
fn dft_context_identities(f: &Spl, out: &mut Vec<usize>) {
    if let Spl::Tensor(a, b) = f {
        match (&**a, &**b) {
            (Spl::Dft(_), Spl::I(k)) | (Spl::I(k), Spl::Dft(_)) => out.push(*k),
            _ => {}
        }
    }
    for c in f.children() {
        dft_context_identities(c, out);
    }
}

#[test]
fn parallel_blocks_are_line_aligned_for_all_valid_configs() {
    for (n, p, mu) in [
        (64usize, 2usize, 4usize),
        (256, 2, 4),
        (256, 4, 2),
        (1024, 2, 4),
        (1024, 4, 4),
        (4096, 4, 4),
    ] {
        let r = multicore_dft(n, p, mu, None).unwrap();
        let mut dims = Vec::new();
        parallel_block_dims(&r.formula, &mut dims);
        assert!(!dims.is_empty(), "no parallel blocks in n={n}?");
        for d in dims {
            assert_eq!(
                d % mu,
                0,
                "n={n} p={p} µ={mu}: parallel block of dim {d} not µ-aligned"
            );
        }
    }
}

#[test]
fn sub_dfts_keep_vectorizable_identity_context() {
    // In (14) the two compute factors are DFT_m ⊗ I_{n/p} and
    // I_{m/p} ⊗ DFT_n. The short-vector CT of [10,13] needs the
    // DFT_m ⊗ I_k factor to have ν | k; with ν ≤ µ and pµ | n this holds
    // by construction. Verify k ≡ 0 (mod µ) on the ⊗-with-identity side.
    for (n, p, mu) in [(256usize, 2usize, 4usize), (1024, 2, 4), (4096, 4, 4)] {
        let r = multicore_dft(n, p, mu, None).unwrap();
        let mut ks = Vec::new();
        dft_context_identities(&r.formula, &mut ks);
        // At least the DFT_m ⊗ I_{n/p} factor must be present.
        assert!(
            ks.iter().any(|&k| k > 1),
            "n={n}: no tensor-with-identity context found"
        );
        for k in ks {
            if k > 1 {
                assert_eq!(
                    k % mu,
                    0,
                    "n={n} p={p} µ={mu}: DFT ⊗ I_{k} lane count not ν-compatible"
                );
            }
        }
    }
}

#[test]
fn chunk_boundaries_are_cache_line_boundaries_in_compiled_plans() {
    use spiral_codegen::plan::{Plan, Step};
    use spiral_rewrite::multicore_dft_expanded;
    for (n, p, mu) in [(256usize, 2usize, 4usize), (1024, 4, 4)] {
        let f = multicore_dft_expanded(n, p, mu, None, 8).unwrap();
        let plan = Plan::from_formula(&f, p, mu).unwrap();
        for step in &plan.steps {
            if let Step::Par { chunk, .. } = step {
                assert_eq!(
                    chunk % mu,
                    0,
                    "n={n}: chunk {chunk} not a multiple of µ={mu}"
                );
            }
        }
    }
}
