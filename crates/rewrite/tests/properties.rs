//! Property tests for the rewriting system: rule soundness on random
//! shapes, derivation invariants, and rule-tree algebra.

use proptest::prelude::*;
use spiral_rewrite::{
    check_fully_optimized, load_balance_ratio, multicore_dft, parallelize, RuleTree,
};
use spiral_spl::builder::*;
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;

fn cplx_vec(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec(
        (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(re, im)| Cplx::new(re, im)),
        n,
    )
}

/// Random taggable formulas of dimension 16: the shapes Table 1 matches.
fn taggable() -> BoxedStrategy<Spl> {
    prop::sample::select(vec![
        tensor(dft(2), i(8)),
        tensor(dft(4), i(4)),
        tensor(i(8), dft(2)),
        tensor(i(4), dft(4)),
        tensor(i(2), tensor(dft(2), i(4))),
        stride(16, 2),
        stride(16, 4),
        stride(16, 8),
        twiddle(4, 4),
        twiddle(2, 8),
        i(16),
        cooley_tukey(4, 4),
        compose(vec![stride(16, 4), twiddle(4, 4)]),
    ])
    .prop_recursive(2, 8, 3, |inner| {
        prop::collection::vec(inner, 1..4).prop_map(compose).boxed()
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the input shape, parallelization either succeeds with a
    /// semantics-preserving, Definition-1-compliant formula, or reports
    /// Stuck — it never silently corrupts.
    #[test]
    fn parallelize_sound_or_stuck(f in taggable(), x in cplx_vec(16)) {
        let tagged = smp(2, 2, f.clone());
        // Stuck (Err) on a violated precondition is correct; only a
        // successful rewrite carries proof obligations.
        if let Ok(r) = parallelize(&tagged) {
            prop_assert!(!r.formula.has_smp_tag());
            let want = f.eval(&x);
            let got = r.formula.eval(&x);
            for (a, b) in got.iter().zip(&want) {
                prop_assert!(a.approx_eq(*b, 1e-7), "{a:?} vs {b:?}");
            }
        }
    }

    /// When parallelization succeeds on a *pure tensor/perm/diag* shape,
    /// the result also passes the Definition 1 checker.
    #[test]
    fn successful_rewrites_are_fully_optimized(f in taggable()) {
        let (p, mu) = (2usize, 2usize);
        if let Ok(r) = parallelize(&smp(p, mu, f)) {
            // The checker can still reject shapes with nested sequential
            // residue (e.g. I_m ⊗ A where A isn't parallel) — those count
            // as engine incompleteness, not unsoundness; assert only that
            // a checker-accepted formula is balanced.
            if check_fully_optimized(&r.formula, p, mu).is_ok() {
                let ratio = load_balance_ratio(&r.formula, p);
                prop_assert!(ratio < 1.0 + 1e-9, "ratio {ratio}");
            }
        }
    }

    /// Derivations across the whole valid lattice are correct FFTs.
    #[test]
    fn derivation_lattice_correct(
        pe in 1usize..=2,
        me in 0usize..=2,
        extra in 0usize..=3,
        x_seed in any::<u64>(),
    ) {
        let p = 1usize << pe;
        let mu = 1usize << me;
        let n = ((p * mu) * (p * mu)) << extra;
        if n > 2048 {
            return Ok(());
        }
        let r = multicore_dft(n, p, mu, None).unwrap();
        check_fully_optimized(&r.formula, p, mu).unwrap();
        let mut s = x_seed | 1;
        let x: Vec<Cplx> = (0..n)
            .map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                Cplx::new((s as f64 / u64::MAX as f64) - 0.5, 0.3)
            })
            .collect();
        let got = r.formula.eval(&x);
        let want = dft(n).eval(&x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-7 * n as f64));
        }
    }

    /// Rule-tree expansion always computes the DFT, for arbitrary random
    /// trees over smooth sizes.
    #[test]
    fn all_rule_trees_compute_dft(
        n in prop::sample::select(vec![8usize, 12, 16, 24, 30, 32, 48, 64]),
        seed in any::<u64>(),
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        // random tree via the search crate's sampler would add a dep;
        // use balanced/radix trees varied by seed instead.
        let tree = match seed % 3 {
            0 => RuleTree::balanced(n, 2),
            1 => RuleTree::balanced(n, 8),
            _ => RuleTree::right_radix(n, 2),
        };
        let _ = &mut rng;
        prop_assert_eq!(tree.size(), n);
        let f = tree.expand().normalized();
        let x: Vec<Cplx> = (0..n).map(|k| Cplx::new(k as f64, -0.5)).collect();
        let got = f.eval(&x);
        let want = dft(n).eval(&x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-7 * n as f64));
        }
    }

    /// WHT parallelization is transform-generic soundness: any valid
    /// (k, p, µ) either derives fully optimized or reports NoValidSplit.
    #[test]
    fn wht_lattice_sound(k in 2u32..=10, pe in 1usize..=2, me in 0usize..=2) {
        let p = 1usize << pe;
        let mu = 1usize << me;
        spiral_rewrite::wht::wht_is_fully_optimized(k, p, mu).unwrap();
    }
}
