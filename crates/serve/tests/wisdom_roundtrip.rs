//! Wisdom persistence round-trip: a plan loaded from disk must be the
//! same executable object a fresh tuning run produces, corrupt entries
//! must be rejected individually with reasons, and a stale host
//! fingerprint must discard the whole file.

use spiral_search::{CostModel, Tuner};
use spiral_serve::{
    compile_entry, PlanService, PlanSource, WisdomEntry, WisdomFile, WisdomStore,
    WISDOM_SCHEMA_VERSION,
};
use spiral_smp::topology::HostFingerprint;
use spiral_spl::cplx::Cplx;

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spiral-serve-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(0.25 + j as f64, -(j as f64) * 0.75))
        .collect()
}

/// The acceptance bound from the issue: wisdom-loaded and freshly tuned
/// plans must agree elementwise to 1e-10.
#[test]
fn wisdom_loaded_plan_matches_freshly_tuned_output() {
    let path = tmp_path("roundtrip.json");
    let _ = std::fs::remove_file(&path);
    let threads = 2;
    let mu = 4;

    // Cold service: tune, which also writes wisdom.
    let (cold, report) = PlanService::with_wisdom(threads, mu, &path);
    assert!(report.discarded.is_none() && report.loaded == 0);
    for n in [64usize, 256, 1024] {
        cold.plan(n).unwrap();
        cold.sequential_plan(n).unwrap();
    }
    let cold_tunes = cold.tuner_invocations();
    assert!(cold_tunes >= 6, "every cold key must tune");

    // Warm service: every plan comes back from wisdom.
    let (warm, report) = PlanService::with_wisdom(threads, mu, &path);
    assert!(report.discarded.is_none(), "{:?}", report.discarded);
    assert_eq!(report.loaded, 6, "rejected: {:?}", report.rejected);

    for n in [64usize, 256, 1024] {
        let loaded = warm.plan(n).unwrap();
        assert_eq!(loaded.source, PlanSource::Wisdom);

        // Freshly tuned reference, bypassing wisdom entirely.
        let tuner = Tuner::new(threads, mu, CostModel::Analytic);
        let fresh = match tuner.tune_parallel(n).unwrap() {
            Some(t) => t,
            None => tuner.tune_sequential(n).unwrap(),
        };

        let x = ramp(n);
        let got = warm.serve_one(n, &x).unwrap();
        let want = fresh.plan.execute(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a.re - b.re).abs() <= 1e-10 && (a.im - b.im).abs() <= 1e-10,
                "n={n}: wisdom-loaded {a:?} vs freshly tuned {b:?}"
            );
        }
    }
    assert_eq!(
        warm.tuner_invocations(),
        0,
        "a warm wisdom file must serve without tuning"
    );
}

#[test]
fn warm_service_survives_concurrent_requests_without_tuning() {
    let path = tmp_path("warm_concurrent.json");
    let _ = std::fs::remove_file(&path);
    let (cold, _) = PlanService::with_wisdom(2, 4, &path);
    cold.sequential_plan(64).unwrap();
    cold.sequential_plan(256).unwrap();

    let (warm, report) = PlanService::with_wisdom(2, 4, &path);
    assert_eq!(report.loaded, 2);
    std::thread::scope(|s| {
        for k in 0..8 {
            let warm = &warm;
            s.spawn(move || {
                let n = if k % 2 == 0 { 64 } else { 256 };
                let xs: Vec<Vec<Cplx>> = (0..4).map(|_| ramp(n)).collect();
                warm.serve_batch(n, &xs).unwrap();
            });
        }
    });
    assert_eq!(warm.tuner_invocations(), 0);
    assert_eq!(warm.cached_plans(), 2);
}

#[test]
fn corrupt_entries_are_rejected_individually_with_reasons() {
    let host = HostFingerprint::current();
    let good = WisdomEntry {
        n: 16,
        threads: 1,
        mu: 4,
        plan_threads: 1,
        formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
        choice: "test".to_string(),
        cost: 100.0,
        vec_width: 1,
        dist_procs: 1,
    };
    let bad_parse = WisdomEntry {
        formula: "DFT_oops".to_string(),
        n: 32,
        ..good.clone()
    };
    let bad_dim = WisdomEntry {
        n: 64, // formula is 16-dimensional
        ..good.clone()
    };
    let bad_cost = WisdomEntry {
        n: 16,
        threads: 2,
        cost: -3.0,
        ..good.clone()
    };
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: host.clone(),
        entries: vec![good.clone(), bad_parse, bad_dim, bad_cost],
    };
    let path = tmp_path("corrupt_entries.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();

    let (store, report) = WisdomStore::open_for_host(&path, host);
    assert!(report.discarded.is_none());
    assert_eq!(report.loaded, 1);
    assert_eq!(report.rejected.len(), 3);
    assert!(store.get(16, 1, 4).is_some());
    assert!(store.get(64, 1, 4).is_none());
    let reasons: Vec<&str> = report.rejected.iter().map(|r| r.reason.as_str()).collect();
    assert!(reasons.iter().any(|r| r.contains("parse")), "{reasons:?}");
    assert!(
        reasons.iter().any(|r| r.contains("dimension")),
        "{reasons:?}"
    );
    assert!(reasons.iter().any(|r| r.contains("cost")), "{reasons:?}");
}

#[test]
fn stale_host_fingerprint_discards_the_whole_file() {
    let mut other = HostFingerprint::current();
    other.cores += 1; // a different machine
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: other,
        entries: vec![WisdomEntry {
            n: 16,
            threads: 1,
            mu: 4,
            plan_threads: 1,
            formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
            choice: "test".to_string(),
            cost: 100.0,
            vec_width: 1,
            dist_procs: 1,
        }],
    };
    let path = tmp_path("stale_host.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();

    let (store, report) = WisdomStore::open_for_host(&path, HostFingerprint::current());
    assert!(store.is_empty());
    let reason = report.discarded.expect("stale file must be discarded");
    assert!(reason.contains("stale host"), "{reason}");
}

/// A file whose fingerprint matches this host field-for-field can still
/// contain an individually stale entry: one tuned with a short-vector
/// width the host cannot execute (hand-merged wisdom, edited files).
/// Such entries are rejected entry-by-entry; the rest of the file loads.
#[test]
fn entries_wider_than_host_simd_are_rejected_as_stale() {
    let mut host = HostFingerprint::current();
    host.simd_width = 2; // pretend this host tops out at two lanes
    let good = WisdomEntry {
        n: 16,
        threads: 1,
        mu: 4,
        plan_threads: 1,
        formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
        choice: "test".to_string(),
        cost: 100.0,
        vec_width: 1,
        dist_procs: 1,
    };
    let too_wide = WisdomEntry {
        n: 64,
        formula: "vec(4)[(DFT_8 @ I_8) * T^64_8 * (I_8 @ DFT_8) * L^64_8]".to_string(),
        choice: "test + vec(4)".to_string(),
        vec_width: 4,
        dist_procs: 1,
        ..good.clone()
    };
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: host.clone(),
        entries: vec![good, too_wide],
    };
    let path = tmp_path("stale_simd_width.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();

    let (store, report) = WisdomStore::open_for_host(&path, host);
    assert!(report.discarded.is_none(), "{:?}", report.discarded);
    assert_eq!(report.loaded, 1, "the scalar entry still loads");
    assert_eq!(report.rejected.len(), 1);
    let reason = &report.rejected[0].reason;
    assert!(
        reason.contains("stale host") && reason.contains("vec(4)"),
        "reason names the width gate: {reason}"
    );
    assert!(store.get(16, 1, 4).is_some());
    assert!(store.get(64, 1, 4).is_none());
}

/// Hosts that differ only in detected SIMD width are different machines
/// as far as wisdom is concerned: the fingerprint comparison discards
/// the whole file.
#[test]
fn fingerprint_simd_width_mismatch_discards_the_whole_file() {
    let mut other = HostFingerprint::current();
    other.simd_width *= 2;
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: other,
        entries: Vec::new(),
    };
    let path = tmp_path("stale_simd_host.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();
    let (store, report) = WisdomStore::open_for_host(&path, HostFingerprint::current());
    assert!(store.is_empty());
    let reason = report.discarded.expect("wider-host file must be discarded");
    assert!(reason.contains("stale host"), "{reason}");
}

/// The v3 re-key: a host whose worker-process budget changed (cores
/// reserved for another tenant, or freed back) is a different tuning
/// target — the tuner's `dist(q)` verdicts depend on the budget — so
/// the whole file is discarded and everything re-tunes.
#[test]
fn process_budget_change_discards_the_whole_file() {
    let mut other = HostFingerprint::current();
    other.process_budget += 2;
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: other,
        entries: Vec::new(),
    };
    let path = tmp_path("stale_process_budget.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();
    let (store, report) = WisdomStore::open_for_host(&path, HostFingerprint::current());
    assert!(store.is_empty());
    let reason = report.discarded.expect("re-keyed file must be discarded");
    assert!(reason.contains("stale host"), "{reason}");
}

/// Entry-level budget gate: even in a fingerprint-matched file, an
/// entry demanding more worker processes than this host's budget is
/// individually stale; the rest of the file loads.
#[test]
fn entries_exceeding_the_process_budget_are_rejected_as_stale() {
    let mut host = HostFingerprint::current();
    host.process_budget = 2;
    let good = WisdomEntry {
        n: 16,
        threads: 1,
        mu: 4,
        plan_threads: 1,
        formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
        choice: "test".to_string(),
        cost: 100.0,
        vec_width: 1,
        dist_procs: 1,
    };
    let too_many_procs = WisdomEntry {
        n: 4096,
        threads: 2,
        plan_threads: 2,
        formula: "dist(4)[smp(2,4)[DFT_4096]]".to_string(),
        choice: "multicore + dist(4)".to_string(),
        dist_procs: 4,
        ..good.clone()
    };
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: host.clone(),
        entries: vec![good, too_many_procs],
    };
    let path = tmp_path("stale_dist_procs.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();

    let (store, report) = WisdomStore::open_for_host(&path, host);
    assert!(report.discarded.is_none(), "{:?}", report.discarded);
    assert_eq!(report.loaded, 1, "the single-process entry still loads");
    assert_eq!(report.rejected.len(), 1);
    let reason = &report.rejected[0].reason;
    assert!(
        reason.contains("stale host") && reason.contains("dist(4)"),
        "reason names the budget gate: {reason}"
    );
    assert!(store.get(16, 1, 4).is_some());
    assert!(store.get(4096, 2, 4).is_none());
}

/// A `dist(q)`-tagged winner round-trips through the ASCII rendering:
/// the tag parses back, the recompiled plan records the same process
/// count, and a mismatched `dist_procs` claim is caught by the loader's
/// cross-check.
#[test]
fn dist_tagged_formula_round_trips_through_ascii() {
    use spiral_spl::builder::dist_tag;
    let tuner = Tuner::new(2, 4, CostModel::Analytic);
    let par = tuner.tune_parallel(1024).unwrap().expect("2^10 admits p=2");
    let tagged = dist_tag(2, par.formula.clone());
    let ascii = tagged.to_string();
    assert!(
        ascii.starts_with("dist(2)["),
        "tag renders outermost: {ascii}"
    );
    assert_eq!(spiral_spl::parse(&ascii).unwrap().to_string(), ascii);

    let entry = WisdomEntry {
        n: 1024,
        threads: 2,
        mu: 4,
        plan_threads: 2,
        formula: ascii,
        choice: format!("{} + dist(2)", par.choice),
        cost: par.cost,
        vec_width: par.plan.vec_width.max(1) as u64,
        dist_procs: 2,
    };
    let compiled = compile_entry(&entry).expect("dist-tagged winner recompiles");
    assert_eq!(compiled.plan.dist_procs, 2);

    let lying = WisdomEntry {
        dist_procs: 1,
        ..entry
    };
    let err = compile_entry(&lying).unwrap_err();
    assert!(err.contains("dist_procs"), "{err}");
}

#[test]
fn wrong_schema_version_discards_the_whole_file() {
    let file = WisdomFile {
        schema: WISDOM_SCHEMA_VERSION + 1,
        host: HostFingerprint::current(),
        entries: Vec::new(),
    };
    let path = tmp_path("wrong_schema.json");
    std::fs::write(&path, serde_json::to_string_pretty(&file).unwrap()).unwrap();
    let (store, report) = WisdomStore::open_for_host(&path, HostFingerprint::current());
    assert!(store.is_empty());
    assert!(report.discarded.unwrap().contains("schema version"));
}

#[test]
fn unparseable_file_discards_and_serves_fresh() {
    let path = tmp_path("garbage.json");
    std::fs::write(&path, "{ not json").unwrap();
    let (store, report) = WisdomStore::open_for_host(&path, HostFingerprint::current());
    assert!(store.is_empty());
    assert!(report.discarded.unwrap().contains("unparseable"));
}

/// A plan the static analyzer rejects must not load: hand-craft an
/// entry whose formula compiles but whose recompilation is checked —
/// here via a plan_threads value outside the valid range, the cheapest
/// deterministic rejection the validator owns.
#[test]
fn invalid_plan_threads_is_rejected() {
    let entry = WisdomEntry {
        n: 16,
        threads: 2,
        mu: 4,
        plan_threads: 3, // > threads
        formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
        choice: "test".to_string(),
        cost: 10.0,
        vec_width: 1,
        dist_procs: 1,
    };
    let err = compile_entry(&entry).unwrap_err();
    assert!(err.contains("plan_threads"), "{err}");
}

/// The tuner's winning formulas — sequential and parallel — round-trip
/// through the ASCII rendering and recompile to plans of the right
/// shape via `compile_entry` (the loader's pipeline).
#[test]
fn tuner_winners_round_trip_through_ascii() {
    let tuner = Tuner::new(2, 4, CostModel::Analytic);
    let seq = tuner.tune_sequential(256).unwrap();
    let par = tuner.tune_parallel(256).unwrap().expect("2^8 admits p=2");
    for (tuned, threads, plan_threads) in [(&seq, 1u64, 1u64), (&par, 2, 2)] {
        let entry = WisdomEntry {
            n: 256,
            threads,
            mu: 4,
            plan_threads,
            formula: tuned.formula.to_string(),
            choice: tuned.choice.clone(),
            cost: tuned.cost,
            vec_width: tuned.plan.vec_width.max(1) as u64,
            dist_procs: 1,
        };
        let compiled = compile_entry(&entry).unwrap_or_else(|e| {
            panic!(
                "winner must recompile (p={plan_threads}): {e}\n{}",
                entry.formula
            )
        });
        assert_eq!(compiled.plan.n, 256);
        assert_eq!(
            compiled.plan.threads,
            usize::try_from(plan_threads).unwrap()
        );
        let x = ramp(256);
        let want = tuned.plan.execute(&x);
        let got = compiled.plan.execute(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!(
                (a.re - b.re).abs() <= 1e-10 && (a.im - b.im).abs() <= 1e-10,
                "p={plan_threads}: {a:?} vs {b:?}"
            );
        }
    }
}
