//! End-to-end routing of large-n requests through the worker-process
//! fleet: correctness, fallback behavior, counters, and teardown
//! hygiene, all over real spawned processes.

use spiral_serve::{DistPolicy, PlanService};
use spiral_spl::builder::dft;
use spiral_spl::cplx::{assert_slices_close, Cplx};
use std::sync::Mutex;

/// Serializes tests that touch the `SPIRAL_DIST_WORKER` environment
/// variable (read once per fleet construction).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_worker_env<T>(path: &str, f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK.lock().unwrap();
    // SAFETY-adjacent note: set_var is fine here — the lock serializes
    // every reader in this test binary.
    std::env::set_var("SPIRAL_DIST_WORKER", path);
    let out = f();
    std::env::remove_var("SPIRAL_DIST_WORKER");
    out
}

fn ramp(n: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(1.0 + j as f64 * 0.5, -(j as f64) * 0.25))
        .collect()
}

#[test]
fn large_requests_route_to_the_fleet_and_come_back_correct() {
    with_worker_env(env!("CARGO_BIN_EXE_serve-dist-worker"), || {
        let svc = PlanService::new(2, 4).with_dist(DistPolicy {
            budget: 2,
            min_n: 1024,
        });
        let n = 1024;
        let x = ramp(n);
        for _ in 0..3 {
            let y = svc.serve_one(n, &x).unwrap();
            assert_slices_close(&y, &dft(n).eval(&x), 1e-8 * n as f64);
        }
        assert_eq!(
            svc.dist_served(),
            3,
            "all three requests routed to the fleet"
        );
        assert_eq!(svc.dist_fallbacks(), 0);
        assert!(svc.dist_active());

        // Below the floor: in-process, no fleet involvement.
        let y = svc.serve_one(64, &ramp(64)).unwrap();
        assert_slices_close(&y, &dft(64).eval(&ramp(64)), 1e-7);
        assert_eq!(svc.dist_served(), 3);

        let report = svc.shutdown_fleet().expect("a fleet was live");
        assert!(report.accounting.is_exact(), "{:?}", report.accounting);
        assert_eq!(report.accounting.quarantines.len(), 0);
        assert!(!svc.dist_active());
    });
}

#[test]
fn fleet_result_is_bitwise_identical_to_the_in_process_plan() {
    with_worker_env(env!("CARGO_BIN_EXE_serve-dist-worker"), || {
        let n = 1024;
        let x = ramp(n);
        let routed = PlanService::new(2, 4).with_dist(DistPolicy {
            budget: 2,
            min_n: n,
        });
        let y_fleet = routed.serve_one(n, &x).unwrap();
        assert_eq!(
            routed.dist_served(),
            1,
            "request must have gone to the fleet"
        );

        // The same service without a policy answers in-process from the
        // same cached plan family.
        let local = PlanService::new(2, 4);
        let y_local = local.serve_one(n, &x).unwrap();
        for (a, b) in y_fleet.iter().zip(&y_local) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    });
}

#[test]
fn missing_worker_binary_falls_back_in_process_without_respawn_storms() {
    with_worker_env("/nonexistent/really-not-a-worker", || {
        let svc = PlanService::new(2, 4).with_dist(DistPolicy {
            budget: 2,
            min_n: 1024,
        });
        let n = 1024;
        let x = ramp(n);
        for _ in 0..3 {
            let y = svc.serve_one(n, &x).unwrap();
            assert_slices_close(&y, &dft(n).eval(&x), 1e-8 * n as f64);
        }
        assert_eq!(svc.dist_served(), 0);
        assert_eq!(svc.dist_fallbacks(), 3, "every eligible request counted");
        assert!(
            !svc.dist_active(),
            "failed construction is cached, not retried"
        );
        assert!(svc.shutdown_fleet().is_none());
    });
}

#[test]
fn inert_policy_and_default_service_never_touch_the_fleet() {
    // No env var needed: these paths must not even look for a worker.
    let plain = PlanService::new(2, 4);
    let y = plain.serve_one(256, &ramp(256)).unwrap();
    assert_slices_close(&y, &dft(256).eval(&ramp(256)), 1e-7);
    assert_eq!(plain.dist_served() + plain.dist_fallbacks(), 0);

    let inert = PlanService::new(2, 4).with_dist(DistPolicy {
        budget: 1,
        min_n: 256,
    });
    let y = inert.serve_one(256, &ramp(256)).unwrap();
    assert_slices_close(&y, &dft(256).eval(&ramp(256)), 1e-7);
    assert_eq!(inert.dist_served() + inert.dist_fallbacks(), 0);
    assert!(!inert.dist_active());
}

#[cfg(feature = "faults")]
#[test]
fn worker_death_mid_request_is_rescued_and_the_answer_stays_correct() {
    use spiral_smp::faults::{DistFaultPlan, DistFaultSpec, DistSite};
    with_worker_env(env!("CARGO_BIN_EXE_serve-dist-worker"), || {
        let _guard = spiral_smp::faults::install_dist(DistFaultPlan {
            seed: 7,
            specs: vec![DistFaultSpec::once(DistSite::WorkerKill, 0)],
        });
        let svc = PlanService::new(2, 4).with_dist(DistPolicy {
            budget: 2,
            min_n: 1024,
        });
        let n = 1024;
        let x = ramp(n);
        for _ in 0..2 {
            let y = svc.serve_one(n, &x).unwrap();
            assert_slices_close(&y, &dft(n).eval(&x), 1e-8 * n as f64);
        }
        assert_eq!(svc.dist_served(), 2, "rescue is invisible to the caller");
        let report = svc.shutdown_fleet().expect("fleet still attached");
        assert!(report.accounting.is_exact(), "{:?}", report.accounting);
        assert_eq!(
            report.accounting.quarantines.len(),
            1,
            "exactly the killed worker was quarantined: {:?}",
            report.accounting
        );
        assert!(report.accounting.rescued_shards >= 1);
    });
}
