//! Live-telemetry contract of the serving tier: the metrics snapshot is
//! a *view* over the exact accounting surface (so live == exact at
//! drain, by construction, and this suite pins it), the `SS01` stats
//! exchange serves both exposition formats over a real socket without
//! perturbing request accounting, and the JSON layout is frozen by a
//! golden under `results/serve_metrics_schema.json`.

use serde_json::Value;
use spiral_serve::client::{request_from_inputs, Client};
use spiral_serve::wire::Response;
use spiral_serve::{GaugeReadings, PlanService, ServeMetrics, Server, ServerConfig, StatsKind};
use spiral_spl::cplx::Cplx;
use spiral_trace::metrics::{
    lint_prometheus, BucketCount, CounterSample, GaugeSample, HistogramSample, HistogramSnapshot,
    MetricsSnapshot, METRICS_SCHEMA_VERSION,
};
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        conn_backlog: 16,
        queue_bound: 16,
        read_timeout: Duration::from_millis(25),
        default_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn ramp(n: usize, k: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(j as f64 * 0.25 - k as f64, k as f64 * 0.5))
        .collect()
}

#[test]
fn drained_metrics_snapshot_equals_exact_accounting() {
    let service = Arc::new(PlanService::new(2, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    for rid in 0..5u64 {
        let req = request_from_inputs(rid, 0, &[ramp(32, 0)]);
        assert!(matches!(
            client.request(&req).expect("response arrives"),
            Response::Ok { .. }
        ));
    }
    let report = server.shutdown();
    assert_eq!(report.thread_panics, 0);
    assert!(report.counters.accounted());

    // The live snapshot and the exact drain accounting are the same
    // numbers — the counters are views over one set of atomics.
    let m = &report.metrics;
    let c = &report.counters;
    assert_eq!(m.counter("serve_requests_total"), Some(c.requests));
    assert_eq!(m.counter("serve_ok_total"), Some(c.ok));
    assert_eq!(m.counter("serve_overloaded_total"), Some(c.overloaded));
    assert_eq!(m.counter("serve_expired_total"), Some(c.expired));
    assert_eq!(m.counter("serve_errors_total"), Some(c.errors));
    assert_eq!(m.counter("serve_shed_expired_total"), Some(c.shed_expired));
    assert_eq!(m.counter("serve_dispatches_total"), Some(c.dispatches));
    assert_eq!(
        m.counter("serve_protocol_errors_total"),
        Some(c.protocol_errors)
    );
    // Conservation holds *inside* the snapshot exactly when it holds in
    // the accounting (Counters::accounted()).
    assert_eq!(
        m.counter("serve_requests_total").unwrap(),
        m.counter("serve_ok_total").unwrap()
            + m.counter("serve_overloaded_total").unwrap()
            + m.counter("serve_expired_total").unwrap()
            + m.counter("serve_errors_total").unwrap()
    );
    // Queues are empty after drain.
    assert_eq!(m.gauge("serve_conn_queue_depth"), Some(0));
    assert_eq!(m.gauge("serve_exec_queue_depth"), Some(0));
    assert_eq!(m.gauge("serve_degraded"), Some(0));
}

#[test]
fn ss01_stats_serve_both_formats_without_counting_as_requests() {
    let service = Arc::new(PlanService::new(2, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let req = request_from_inputs(1, 0, &[ramp(32, 1)]);
    assert!(matches!(
        client.request(&req).expect("response arrives"),
        Response::Ok { .. }
    ));

    // JSON: parses as a schema-versioned snapshot mirroring the live
    // counters; the stats exchange itself must not appear in them.
    let json = client.stats(StatsKind::Json).expect("json stats");
    let snap = MetricsSnapshot::from_json(&json).expect("snapshot parses");
    assert_eq!(snap.schema, METRICS_SCHEMA_VERSION);
    assert_eq!(snap.counter("serve_requests_total"), Some(1));
    assert_eq!(snap.counter("serve_ok_total"), Some(1));

    // Prometheus: lints clean and carries the counter series.
    let prom = client.stats(StatsKind::Prom).expect("prom stats");
    lint_prometheus(&prom).expect("exposition lints clean");
    assert!(prom.contains("# TYPE serve_requests_total counter"));
    assert!(prom.contains("serve_requests_total 1"));
    assert!(prom.contains("# TYPE serve_exec_queue_depth gauge"));

    // Dump: valid Perfetto/Chrome JSON (empty without the trace
    // feature, populated rings with it — either way it must parse).
    let dump = client.stats(StatsKind::Dump).expect("dump stats");
    let doc: Value = serde_json::from_str(&dump).expect("dump parses as JSON");
    assert!(matches!(doc.get("traceEvents"), Some(Value::Arr(_))));

    // A later request still gets served and the accounting never saw
    // the three stats exchanges.
    let req = request_from_inputs(2, 0, &[ramp(32, 2)]);
    assert!(matches!(
        client.request(&req).expect("response arrives"),
        Response::Ok { .. }
    ));
    let report = server.shutdown();
    assert_eq!(report.counters.requests, 2);
    assert!(report.counters.accounted());
    assert_eq!(report.metrics.counter("serve_requests_total"), Some(2));
}

#[cfg(feature = "trace")]
#[test]
fn warm_histograms_populate_and_forced_breach_persists_a_flight_record() {
    let dir = std::env::temp_dir().join(format!("spiral-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let record = dir.join("flight_record.json");
    let service = Arc::new(PlanService::new(2, 4));
    let cfg = ServerConfig {
        // Every completed request "breaches": zero tolerance forces the
        // first response to latch and persist the recorder export.
        slo_fraction: 0.0,
        flight_record_path: Some(record.clone()),
        ..test_config()
    };
    let server = Server::start(service, cfg).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    for rid in 0..4u64 {
        let req = request_from_inputs(rid, 0, &[ramp(32, 0)]);
        assert!(matches!(
            client.request(&req).expect("response arrives"),
            Response::Ok { .. }
        ));
    }
    let report = server.shutdown();
    assert!(report.counters.accounted());

    // The per-phase histograms saw the traffic.
    let m = &report.metrics;
    let e2e = m.histogram("serve_request_seconds").expect("e2e histogram");
    assert_eq!(e2e.count, 4);
    e2e.validate().expect("valid layout");
    assert!(m.histogram("serve_parse_seconds").expect("parse").count >= 4);
    assert!(
        m.histogram("serve_pool_execute_seconds")
            .expect("pool execute")
            .count
            >= 1
    );
    assert!(m.histogram("serve_coalesce_size").expect("coalesce").count >= 1);
    assert_eq!(m.counter("serve_slo_breaches_total"), Some(4));

    // The forced breach persisted a valid Perfetto trace with the
    // triggering request's span and the breach mark on it.
    let dumped = std::fs::read_to_string(&record).expect("flight record written");
    let doc: Value = serde_json::from_str(&dumped).expect("flight record parses");
    assert!(matches!(doc.get("traceEvents"), Some(Value::Arr(_))));
    assert!(dumped.contains("SLO BREACH request 0"));
    assert!(dumped.contains("\"request 0\""));
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "trace")]
#[test]
fn metrics_disabled_records_nothing_but_keeps_counter_views() {
    let service = Arc::new(PlanService::new(2, 4));
    let cfg = ServerConfig {
        metrics_enabled: false,
        ..test_config()
    };
    let server = Server::start(service, cfg).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let req = request_from_inputs(9, 0, &[ramp(32, 0)]);
    assert!(matches!(
        client.request(&req).expect("response arrives"),
        Response::Ok { .. }
    ));
    let report = server.shutdown();
    let m = &report.metrics;
    assert_eq!(m.counter("serve_ok_total"), Some(1));
    assert_eq!(
        m.histogram("serve_request_seconds").map_or(0, |h| h.count),
        0,
        "disabled telemetry must not record"
    );
}

// --- golden schema ----------------------------------------------------

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/serve_metrics_schema.json")
}

/// Fixed literals — identical on every machine and under every feature
/// set, so the golden pins the interchange layout itself.
fn fixture() -> MetricsSnapshot {
    let mut snap = ServeMetrics::new(1).snapshot(
        &spiral_serve::CounterSnapshot {
            conns_accepted: 3,
            conns_rejected: 1,
            requests: 8,
            ok: 5,
            overloaded: 1,
            expired: 1,
            errors: 1,
            shed_expired: 1,
            coalesced: 2,
            dispatches: 4,
            degraded_dispatches: 1,
            protocol_errors: 2,
        },
        &GaugeReadings {
            conn_queue_depth: 1,
            exec_queue_depth: 2,
            degraded: true,
        },
    );
    // One histogram with fixed contents, attached by hand so the golden
    // is feature-independent (a default build has no live histograms).
    snap.histograms = vec![HistogramSample {
        name: "serve_request_seconds".to_string(),
        help: "End-to-end served request latency".to_string(),
        histogram: HistogramSnapshot {
            buckets: vec![
                BucketCount {
                    index: 79,
                    count: 3,
                },
                BucketCount {
                    index: 80,
                    count: 2,
                },
            ],
            count: 5,
            sum: 5120,
            min: 980,
            max: 1090,
        },
    }];
    snap
}

#[test]
fn metrics_json_matches_golden_snapshot() {
    let got = fixture().to_json();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        ),
    };
    assert_eq!(
        got.trim(),
        want.trim(),
        "metrics JSON schema drifted from results/serve_metrics_schema.json.\n\
         If intentional: bump METRICS_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1."
    );
}

#[test]
fn golden_snapshot_round_trips_and_lints() {
    let want = fixture();
    if let Ok(s) = std::fs::read_to_string(golden_path()) {
        let parsed = MetricsSnapshot::from_json(&s).expect("golden snapshot must parse");
        assert_eq!(parsed, want);
        assert_eq!(parsed.schema, METRICS_SCHEMA_VERSION);
    }
    // The fixture's Prometheus rendering obeys the exposition lints the
    // registry enforces at construction time.
    lint_prometheus(&want.to_prometheus()).expect("fixture exposition lints clean");
}

#[test]
fn fresh_server_serves_stats_before_any_request() {
    // An SS01 exchange on a cold server must work (monitoring attaches
    // before traffic does).
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");
    let json = client.stats(StatsKind::Json).expect("cold stats");
    let snap = MetricsSnapshot::from_json(&json).expect("parses");
    assert_eq!(snap.counter("serve_requests_total"), Some(0));
    let report = server.shutdown();
    assert_eq!(report.counters.requests, 0);
    assert!(snap
        .counters
        .iter()
        .any(|c: &CounterSample| c.name == "serve_ok_total"));
    assert!(snap
        .gauges
        .iter()
        .any(|g: &GaugeSample| g.name == "serve_degraded"));
}
