//! Chaos acceptance suite (compiled only with the `faults` feature):
//! the server must stay *available* — no thread deaths, bounded queues,
//! every request accounted exactly once — under a randomized grid of
//! request-path faults, injected on both sides of the wire:
//!
//! * client-side: torn frames, slow writers, mid-conversation
//!   disconnects (driven by the misbehaving writers in
//!   `spiral_serve::client`);
//! * server-side: forced deadline expiry, injected tuner failures,
//!   batch-dispatch wedges, and wisdom save failures (driven by the
//!   `ServeFaultPlan` registry in `spiral-smp`).
#![cfg(feature = "faults")]

use spiral_serve::client::{request_from_inputs, Client};
use spiral_serve::wire::Response;
use spiral_serve::{PlanService, Server, ServerConfig};
use spiral_smp::faults::{install_serve, ServeFaultPlan, ServeFaultSpec, ServeSite};
use spiral_spl::builder::dft;
use spiral_spl::cplx::{assert_slices_close, Cplx};
use std::sync::Arc;
use std::time::Duration;

fn chaos_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        conn_backlog: 8,
        queue_bound: 8,
        read_timeout: Duration::from_millis(25),
        default_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn ramp(n: usize, k: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(j as f64 * 0.5 - k as f64, k as f64 * 0.25))
        .collect()
}

/// Deterministic per-(thread, request) dice for the client-side faults.
fn roll(seed: u64, cid: usize, rid: usize) -> u64 {
    let mut z = seed
        .wrapping_add((cid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((rid as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[test]
fn randomized_fault_grid_keeps_the_server_available() {
    // Server-side fault grid: ~15% of requests get their deadline
    // forcibly expired; the second dispatch wedges the batch path
    // (flipping the server into degraded mode partway through).
    let _guard = install_serve(ServeFaultPlan {
        seed: 0xC0FFEE,
        specs: vec![
            ServeFaultSpec::with_probability(ServeSite::ExpireDeadline, 0.15),
            ServeFaultSpec {
                site: ServeSite::BatchWedge,
                probability: 0.10,
                max_fires: Some(1),
            },
        ],
    });

    let service = Arc::new(PlanService::new(2, 4));
    // Warm the plan so injected chaos hits the serving path, not the
    // tuner.
    service.sequential_plan(64).expect("warms");
    let server = Server::start(service, chaos_config()).expect("server starts");
    let addr = server.local_addr();

    const CONNS: usize = 6;
    const REQS: usize = 25;
    let mut well_formed_sent = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for cid in 0..CONNS {
            handles.push(scope.spawn(move || {
                let mut sent = 0u64;
                let mut client: Option<Client> = None;
                for rid in 0..REQS {
                    if client.is_none() {
                        match Client::connect(addr) {
                            Ok(c) => client = Some(c),
                            Err(_) => continue,
                        }
                    }
                    let req =
                        request_from_inputs((cid as u64) << 32 | rid as u64, 0, &[ramp(64, rid)]);
                    let dice = roll(42, cid, rid) % 100;
                    let c = client.as_mut().expect("connected above");
                    if dice < 10 {
                        // Torn frame: server must drop this connection.
                        let _ = c.send_torn(&req);
                        client = None;
                    } else if dice < 18 {
                        // Slow writer across the read timeout.
                        let _ = c.send_slow(&req, 3, Duration::from_millis(60));
                        client = None;
                    } else if dice < 26 {
                        // Send a full request, vanish before reading.
                        let frame = spiral_serve::wire::encode_request(&req);
                        sent += 1;
                        let _ = send_raw(c, &frame);
                        client.take().expect("connected").disconnect();
                    } else {
                        sent += 1;
                        if c.request(&req).is_err() {
                            client = None;
                        }
                    }
                }
                sent
            }));
        }
        for h in handles {
            well_formed_sent += h.join().expect("chaos client threads survive");
        }
    });

    // Let in-flight requests settle, then read the live telemetry over
    // the wire (SS01) before draining.
    std::thread::sleep(Duration::from_millis(200));
    let live = {
        let mut stats_client = Client::connect(addr).expect("stats connection");
        let prom = stats_client
            .stats(spiral_serve::StatsKind::Prom)
            .expect("prom stats under chaos");
        spiral_trace::metrics::lint_prometheus(&prom).expect("exposition lints clean");
        let json = stats_client
            .stats(spiral_serve::StatsKind::Json)
            .expect("json stats under chaos");
        spiral_serve::MetricsSnapshot::from_json(&json).expect("snapshot parses")
    };
    let report = server.shutdown();
    let c = report.counters;

    // The live SS01 snapshot, taken after the grid settled, carries the
    // same exact accounting the drain reports: the counters are views
    // over one set of atomics, and no traffic ran in between.
    for (name, want) in [
        ("serve_requests_total", c.requests),
        ("serve_ok_total", c.ok),
        ("serve_overloaded_total", c.overloaded),
        ("serve_expired_total", c.expired),
        ("serve_errors_total", c.errors),
        ("serve_shed_expired_total", c.shed_expired),
        ("serve_dispatches_total", c.dispatches),
        ("serve_degraded_dispatches_total", c.degraded_dispatches),
        ("serve_protocol_errors_total", c.protocol_errors),
        ("serve_conns_accepted_total", c.conns_accepted),
    ] {
        assert_eq!(
            live.counter(name),
            Some(want),
            "live {name} diverged from drain accounting: {c:?}"
        );
    }

    // Availability: every server thread survived the grid.
    assert_eq!(report.thread_panics, 0, "server lost a thread: {c:?}");
    // Bounded memory: queue depths never exceeded their bounds.
    assert!(
        report.exec_max_depth <= 8,
        "exec queue overflowed: {report:?}"
    );
    assert!(
        report.conn_max_depth <= 8,
        "conn queue overflowed: {report:?}"
    );
    // Accounting: every well-formed request read off a socket ended in
    // exactly one terminal state.
    assert!(c.accounted(), "request accounting leaked: {c:?}");
    // The server actually read (at most) what the clients claim to have
    // fully sent — disconnected-before-read requests may or may not
    // arrive whole, torn ones never count.
    assert!(
        c.requests <= well_formed_sent,
        "{c:?} vs sent {well_formed_sent}"
    );
    assert!(c.ok > 0, "the grid should leave plenty of successes: {c:?}");
    assert!(
        c.expired > 0,
        "the 15% expiry injection should convert some requests: {c:?}"
    );
    assert!(
        c.protocol_errors > 0,
        "torn/slow writers must be detected and counted: {c:?}"
    );
}

#[test]
fn forced_expiry_sheds_before_execution() {
    let _guard = install_serve(ServeFaultPlan {
        seed: 1,
        specs: vec![ServeFaultSpec::always(ServeSite::ExpireDeadline)],
    });
    let service = Arc::new(PlanService::new(1, 4));
    service.sequential_plan(32).expect("warms");
    let server = Server::start(service, chaos_config()).expect("server starts");

    let mut client = Client::connect(server.local_addr()).expect("connects");
    for rid in 0..4u64 {
        let req = request_from_inputs(rid, 0, &[ramp(32, 0)]);
        match client.request(&req).expect("typed answer") {
            Response::Expired { id } => assert_eq!(id, rid),
            other => panic!("expected Expired, got {other:?}"),
        }
    }

    let report = server.shutdown();
    let c = report.counters;
    assert_eq!(c.expired, 4);
    assert_eq!(c.shed_expired, 4, "expiry must shed, not execute: {c:?}");
    assert_eq!(c.dispatches, 0, "nothing may reach the executor: {c:?}");
    assert!(c.accounted());
}

#[test]
fn batch_wedge_degrades_to_sequential_but_keeps_answering() {
    let _guard = install_serve(ServeFaultPlan {
        seed: 2,
        specs: vec![ServeFaultSpec::once(ServeSite::BatchWedge)],
    });
    let service = Arc::new(PlanService::new(2, 4));
    service.sequential_plan(64).expect("warms");
    let server = Server::start(service, chaos_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let n = 64;
    let x = ramp(n, 3);
    let want = dft(n).eval(&x);
    for rid in 0..3u64 {
        let req = request_from_inputs(rid, 0, std::slice::from_ref(&x));
        match client.request(&req).expect("typed answer") {
            Response::Ok { id, data } => {
                assert_eq!(id, rid);
                // Degraded answers are still *correct* answers.
                assert_slices_close(&data, &want, 1e-8 * n as f64);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    assert!(server.is_degraded(), "the wedge must flip degraded mode");

    let report = server.shutdown();
    let c = report.counters;
    assert!(report.degraded);
    assert!(
        c.degraded_dispatches >= 1,
        "wedged dispatch must be retried sequentially: {c:?}"
    );
    assert_eq!(c.ok, 3);
    assert!(c.accounted());
    assert_eq!(report.thread_panics, 0);
}

#[test]
fn injected_tuner_failure_is_a_typed_error_and_clears() {
    let _guard = install_serve(ServeFaultPlan {
        seed: 3,
        specs: vec![ServeFaultSpec::once(ServeSite::TunerFail)],
    });
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, chaos_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let req = request_from_inputs(1, 0, &[ramp(32, 0)]);
    match client.request(&req).expect("typed answer") {
        Response::Error { id, message } => {
            assert_eq!(id, 1);
            assert!(message.contains("injected"), "got: {message}");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The single-flight slot cleared: the same size now tunes and Oks.
    match client.request(&req).expect("typed answer") {
        Response::Ok { id, .. } => assert_eq!(id, 1),
        other => panic!("expected Ok on retry, got {other:?}"),
    }

    let report = server.shutdown();
    let c = report.counters;
    assert_eq!(c.errors, 1);
    assert_eq!(c.ok, 1);
    assert!(c.accounted());
}

#[test]
fn wisdom_save_failure_does_not_stop_serving() {
    let dir = std::env::temp_dir().join(format!("spiral-chaos-wisdom-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("wisdom.json");
    let _guard = install_serve(ServeFaultPlan {
        seed: 4,
        specs: vec![ServeFaultSpec::always(ServeSite::WisdomSaveFail)],
    });
    let (service, _report) = PlanService::with_wisdom(1, 4, &path);
    let service = Arc::new(service);
    let failures_probe = Arc::clone(&service);
    let server = Server::start(service, chaos_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let req = request_from_inputs(1, 0, &[ramp(32, 0)]);
    assert!(matches!(
        client.request(&req).expect("served through save failures"),
        Response::Ok { .. }
    ));
    assert!(
        failures_probe.wisdom_save_failures() >= 1,
        "the injected save failure must be counted"
    );

    let report = server.shutdown();
    assert!(
        report.wisdom_error.is_some(),
        "the drain-time save must also report the injected failure"
    );
    assert!(report.counters.accounted());
    // The torn write never left a corrupt file behind: either nothing,
    // or nothing parseable was renamed into place.
    assert!(!path.exists(), "a failed save must not materialize a file");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Write raw bytes on a client's stream (full frame, no response read).
fn send_raw(client: &mut Client, frame: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    client.stream_mut().write_all(frame)
}
