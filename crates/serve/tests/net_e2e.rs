//! End-to-end tests of the network tier over real loopback sockets:
//! warm-path correctness, typed overload, protocol hardening, and
//! drain accounting. Fault-injected behavior lives in `chaos.rs`
//! (behind the `faults` feature).

use spiral_serve::client::{drive, request_from_inputs, Client, LoadSpec};
use spiral_serve::wire::{Request, Response};
use spiral_serve::{PlanService, Server, ServerConfig};
use spiral_spl::builder::dft;
use spiral_spl::cplx::{assert_slices_close, Cplx};
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        conn_backlog: 16,
        queue_bound: 16,
        read_timeout: Duration::from_millis(25),
        default_deadline: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

fn ramp(n: usize, k: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| {
            Cplx::new(
                j as f64 * 0.25 - k as f64,
                k as f64 * 0.5 - j as f64 * 0.125,
            )
        })
        .collect()
}

#[test]
fn served_response_matches_the_dft() {
    let service = Arc::new(PlanService::new(2, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let n = 64;
    let inputs: Vec<Vec<Cplx>> = (0..3).map(|k| ramp(n, k)).collect();
    let req = request_from_inputs(7, 0, &inputs);
    match client.request(&req).expect("response arrives") {
        Response::Ok { id, data } => {
            assert_eq!(id, 7);
            assert_eq!(data.len(), 3 * n);
            for (k, x) in inputs.iter().enumerate() {
                let want = dft(n).eval(x);
                assert_slices_close(&data[k * n..(k + 1) * n], &want, 1e-8 * n as f64);
            }
        }
        other => panic!("expected Ok, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.thread_panics, 0);
    assert_eq!(report.counters.ok, 1);
    assert!(report.counters.accounted());
}

#[test]
fn sequential_requests_reuse_the_connection_and_the_plan() {
    let service = Arc::new(PlanService::new(2, 4));
    let tuner_probe = Arc::clone(&service);
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    let n = 32;
    for rid in 0..5u64 {
        let req = request_from_inputs(rid, 0, &[ramp(n, 0)]);
        match client.request(&req).expect("response arrives") {
            Response::Ok { id, .. } => assert_eq!(id, rid),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    assert_eq!(
        tuner_probe.tuner_invocations(),
        1,
        "five same-size requests must plan once"
    );

    let report = server.shutdown();
    assert_eq!(report.counters.ok, 5);
    assert_eq!(report.counters.conns_accepted, 1);
    assert!(report.counters.accounted());
}

#[test]
fn concurrent_load_is_fully_accounted() {
    let service = Arc::new(PlanService::new(2, 4));
    let server = Server::start(service, test_config()).expect("server starts");

    let spec = LoadSpec {
        addr: server.local_addr(),
        connections: 4,
        requests_per_conn: 8,
        n: 64,
        batch: 4,
        deadline_ms: 0,
        reconnect_per_request: false,
        seed: 3,
    };
    let outcome = drive(&spec);
    assert_eq!(outcome.ok, 32, "every request should succeed: {outcome:?}");
    assert_eq!(outcome.protocol_errors, 0);
    assert_eq!(outcome.conn_failures, 0);

    let report = server.shutdown();
    assert_eq!(report.thread_panics, 0);
    assert_eq!(report.counters.requests, 32);
    assert!(report.counters.accounted());
    assert!(report.exec_max_depth <= 16);
}

#[test]
fn admission_control_rejects_with_a_typed_overloaded_response() {
    // One worker, a one-slot connection queue: connection A occupies
    // the worker, connection B fills the queue, connection C must be
    // turned away with Overloaded — deterministically, no timing.
    let cfg = ServerConfig {
        workers: 1,
        conn_backlog: 1,
        ..test_config()
    };
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, cfg).expect("server starts");

    let mut held = Client::connect(server.local_addr()).expect("A connects");
    // Serve one request so the worker has definitely popped A.
    let req = request_from_inputs(1, 0, &[ramp(32, 0)]);
    assert!(matches!(
        held.request(&req).expect("A served"),
        Response::Ok { .. }
    ));

    // B parks in the connection queue (the only slot).
    let _parked = Client::connect(server.local_addr()).expect("B connects");
    // Give the acceptor a moment to enqueue B before C arrives.
    std::thread::sleep(Duration::from_millis(50));

    let mut rejected = Client::connect(server.local_addr()).expect("C connects");
    match rejected.request(&req).expect("C gets an answer") {
        Response::Overloaded { id } => assert_eq!(id, 0, "rejected before any frame is read"),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    let report = server.shutdown();
    assert_eq!(report.thread_panics, 0);
    assert!(report.counters.conns_rejected >= 1);
    assert!(report.conn_max_depth <= 1);
    assert!(report.counters.accounted());
}

#[test]
fn torn_frame_closes_the_connection_but_not_the_server() {
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, test_config()).expect("server starts");

    let req = request_from_inputs(9, 0, &[ramp(64, 1)]);
    let mut torn = Client::connect(server.local_addr()).expect("connects");
    torn.send_torn(&req).expect("half frame sent");
    drop(torn);

    // The server must keep serving fresh connections.
    let mut ok = Client::connect(server.local_addr()).expect("connects");
    assert!(matches!(
        ok.request(&req).expect("served after the torn peer"),
        Response::Ok { .. }
    ));

    // The torn connection is reaped asynchronously; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.counters().protocol_errors == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = server.shutdown();
    assert_eq!(report.counters.protocol_errors, 1);
    assert_eq!(report.thread_panics, 0);
    assert!(report.counters.accounted());
}

#[test]
fn slow_client_is_reaped_by_the_read_timeout() {
    let cfg = ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(30),
        ..test_config()
    };
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, cfg).expect("server starts");

    let req = request_from_inputs(5, 0, &[ramp(64, 0)]);
    let mut slow = Client::connect(server.local_addr()).expect("connects");
    // Dribble the frame far slower than the read timeout: the server
    // must classify the connection as stalled and drop it rather than
    // letting it hold the worker indefinitely.
    let _ = slow.send_slow(&req, 4, Duration::from_millis(120));
    drop(slow);

    let deadline = std::time::Instant::now() + Duration::from_secs(3);
    while server.counters().protocol_errors == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let report = server.shutdown();
    assert!(
        report.counters.protocol_errors >= 1,
        "stalled writer must be counted: {:?}",
        report.counters
    );
    assert_eq!(report.thread_panics, 0);
}

#[test]
fn oversized_frame_is_rejected_without_allocation() {
    use std::io::Write as _;
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, test_config()).expect("server starts");

    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connects");
    // Prefix claiming 4 GiB − 1. The server must drop the connection
    // instead of trying to buffer it.
    raw.write_all(&u32::MAX.to_le_bytes()).expect("prefix sent");
    raw.write_all(b"SQ01").expect("some payload sent");
    drop(raw);

    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while server.counters().protocol_errors == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    // And it keeps serving.
    let mut ok = Client::connect(server.local_addr()).expect("connects");
    let req = request_from_inputs(2, 0, &[ramp(32, 0)]);
    assert!(matches!(
        ok.request(&req).expect("served"),
        Response::Ok { .. }
    ));
    let report = server.shutdown();
    assert_eq!(report.counters.protocol_errors, 1);
    assert_eq!(report.thread_panics, 0);
}

#[test]
fn awkward_sizes_are_served_not_dropped() {
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("connects");

    // n = 7: no power-of-two structure for the generator to exploit,
    // but a well-formed request must still be answered — the planner
    // falls back rather than the server dropping the connection.
    let req = Request {
        id: 11,
        n: 7,
        batch: 1,
        deadline_ms: 0,
        data: vec![Cplx::ONE; 7],
    };
    match client.request(&req).expect("typed answer") {
        Response::Ok { id, data } => {
            assert_eq!(id, 11);
            assert_slices_close(&data, &dft(7).eval(&[Cplx::ONE; 7]), 1e-8);
        }
        other => panic!("expected Ok, got {other:?}"),
    }
    // The same connection stays usable for ordinary sizes.
    let ok_req = request_from_inputs(12, 0, &[ramp(32, 0)]);
    assert!(matches!(
        client.request(&ok_req).expect("served"),
        Response::Ok { .. }
    ));

    let report = server.shutdown();
    assert_eq!(report.counters.ok, 2);
    assert!(report.counters.accounted());
}

#[test]
fn drain_refuses_new_connections_and_accounts_everything() {
    let service = Arc::new(PlanService::new(1, 4));
    let server = Server::start(service, test_config()).expect("server starts");
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    let req = request_from_inputs(3, 0, &[ramp(32, 0)]);
    assert!(matches!(
        client.request(&req).expect("served"),
        Response::Ok { .. }
    ));

    let report = server.shutdown();
    assert!(report.counters.accounted());
    assert_eq!(report.thread_panics, 0);

    // The listener is gone: connects must fail (or be reset on first
    // use) — nothing may silently queue behind a drained server.
    match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
        Err(_) => {}
        Ok(s) => {
            // Connected before the OS tore the listener down; any
            // request on it must fail.
            drop(s);
        }
    }
}
