//! Wisdom entries are untrusted input: loading re-certifies each one
//! against the exact cyclotomic model of `DFT_n`, and a plan that
//! parses, lowers, and schedules cleanly but computes the *wrong
//! matrix* is rejected with a localized certifier verdict. The verdict
//! strings are an interchange surface (they land in logs and load
//! reports), so their shape is pinned as a golden snapshot under
//! `results/`. Regenerate with `UPDATE_GOLDEN=1 cargo test -p
//! spiral-serve --test wisdom_certify`.

use spiral_serve::{compile_entry, WisdomEntry};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/certify_reasons.golden")
}

/// A formula that is well-formed, 16-dimensional, lowers to a
/// dataflow-clean plan — and is **not** `DFT_16`: the Cooley–Tukey
/// twiddle diagonal `T^16_4` is missing. Only the exact symbolic pass
/// can tell.
fn wrong_matrix_entry() -> WisdomEntry {
    WisdomEntry {
        n: 16,
        threads: 1,
        mu: 1,
        plan_threads: 1,
        formula: "(DFT_4 @ I_4) * (I_4 @ DFT_4) * L^16_4".to_string(),
        choice: "test".to_string(),
        cost: 100.0,
        vec_width: 1,
        dist_procs: 1,
    }
}

#[test]
fn wrong_matrix_entry_rejected_with_certifier_verdict() {
    let reason = compile_entry(&wrong_matrix_entry()).expect_err("must be rejected");
    assert!(
        reason.contains("certification rejected"),
        "reason names the gate: {reason}"
    );
    assert!(
        reason.contains("symbolic pass"),
        "reason names the failing pass: {reason}"
    );
    assert!(
        reason.contains("DFT_16"),
        "reason names the transform it fails to equal: {reason}"
    );
}

#[test]
fn correct_entry_passes_certification() {
    let entry = WisdomEntry {
        formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
        ..wrong_matrix_entry()
    };
    compile_entry(&entry).expect("the true DFT_16 factorization certifies");
}

/// The rejection reason is deterministic (exact arithmetic, fixed sweep
/// order), so its exact text is pinned: tooling greps these strings.
/// The golden file is line-keyed (`key: reason`) and shared with the
/// vector-IR rejection reasons pinned by `spiral-verify`'s certify
/// suite; this test owns the `wisdom-wrong-matrix` line.
#[test]
fn rejection_reason_matches_golden_snapshot() {
    let got = compile_entry(&wrong_matrix_entry()).expect_err("must be rejected");
    let path = golden_path();
    let key = "wisdom-wrong-matrix";
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let mut lines: Vec<String> = existing
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with(&format!("{key}: ")))
            .map(str::to_string)
            .collect();
        lines.push(format!("{key}: {got}"));
        lines.sort();
        std::fs::write(&path, lines.join("\n") + "\n").expect("write golden snapshot");
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        ),
    };
    let line = want
        .lines()
        .find(|l| l.starts_with(&format!("{key}: ")))
        .unwrap_or_else(|| panic!("no `{key}:` line in {}", path.display()));
    assert_eq!(
        line,
        format!("{key}: {got}"),
        "certifier verdict strings drifted from results/certify_reasons.golden.\n\
         If intentional: regenerate with UPDATE_GOLDEN=1."
    );
}
