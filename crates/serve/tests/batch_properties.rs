//! Property: batched execution is exactly sequential execution. For
//! any batch size B ∈ [1, 64] and transform size n ∈ {2^4 … 2^10},
//! `BatchExecutor` output is elementwise equal to running the same plan
//! sequentially over the inputs — the batch path may not perturb a
//! single bit of the arithmetic.

use proptest::prelude::*;
use spiral_codegen::plan::Plan;
use spiral_codegen::BatchExecutor;
use spiral_rewrite::sequential_dft;
use spiral_spl::cplx::Cplx;

fn inputs(b: usize, n: usize, seed: u64) -> Vec<Vec<Cplx>> {
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s % 4096) as f64 / 2048.0 - 1.0
    };
    (0..b)
        .map(|_| (0..n).map(|_| Cplx::new(next(), next())).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batch_equals_sequential_elementwise(
        b in 1usize..=64,
        log2n in 4u32..=10,
        threads in 1usize..=4,
        seed in any::<u64>(),
    ) {
        let n = 1usize << log2n;
        let plan = Plan::from_formula(&sequential_dft(n, 8), 1, 4).unwrap();
        let xs = inputs(b, n, seed);
        let exec = BatchExecutor::new(threads);
        let got = exec.try_execute_batch(&plan, &xs).unwrap();
        prop_assert_eq!(got.len(), b);
        for (y, x) in got.iter().zip(&xs) {
            // Bitwise: both paths run the same interpreter.
            prop_assert_eq!(y, &plan.execute(x));
        }
    }
}
