//! Single-flight *failure* paths of `PlanService` (compiled only with
//! the `faults` feature, which provides the injected tuner failure):
//! a tuner error for a cold key must reach every waiter without
//! deadlock, must not be cached, and must leave the counters
//! consistent so a later request retries cleanly.
#![cfg(feature = "faults")]

use spiral_serve::PlanService;
use spiral_smp::faults::{install_serve, ServeFaultPlan, ServeFaultSpec, ServeSite};

#[test]
fn tuner_error_reaches_all_waiters_without_deadlock_or_caching() {
    let svc = PlanService::new(2, 4);
    let failed_invocations;
    {
        let _guard = install_serve(ServeFaultPlan {
            seed: 0,
            specs: vec![ServeFaultSpec::always(ServeSite::TunerFail)],
        });

        // Eight concurrent cold requests for one key: a leader runs the
        // (failing) tuner, followers wait on the flight slot; a thread
        // arriving after the slot cleared becomes a fresh leader and
        // fails again. All eight must see the error — promptly, not
        // via deadlock or timeout.
        let results: Vec<Result<(), String>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| svc.plan(128).map(|_| ()).map_err(|e| e.to_string())))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("waiter threads survive"))
                .collect()
        });
        for r in &results {
            let e = r.as_ref().expect_err("the injected failure must propagate");
            assert!(e.contains("injected"), "got: {e}");
        }

        // Nothing was cached, and every request was a miss (never a
        // hit): failures must not be memoized.
        failed_invocations = svc.tuner_invocations();
        assert!(
            (1..=8).contains(&failed_invocations),
            "between one (perfect collapse) and eight (all leaders) runs: {failed_invocations}"
        );
        assert_eq!(svc.cached_plans(), 0);
        assert_eq!(svc.cache_misses(), 8);
        assert_eq!(svc.cache_hits(), 0);
    }

    // The injection is gone and the slot cleared: a later request
    // retries the tuner and succeeds.
    svc.plan(128).expect("retry tunes cleanly");
    assert_eq!(svc.tuner_invocations(), failed_invocations + 1);
    assert_eq!(svc.cached_plans(), 1);

    // And the now-warm key serves from cache.
    svc.plan(128).expect("cache hit");
    assert_eq!(svc.tuner_invocations(), failed_invocations + 1);
    assert!(svc.cache_hits() >= 1);
}

#[test]
fn failure_on_one_key_does_not_poison_other_keys() {
    let _guard = install_serve(ServeFaultPlan {
        seed: 0,
        specs: vec![ServeFaultSpec::once(ServeSite::TunerFail)],
    });
    let svc = PlanService::new(2, 4);

    assert!(
        svc.plan(64).is_err(),
        "first cold key must eat the injected failure"
    );
    // A *different* key is unaffected (the spec is spent).
    svc.plan(256).expect("other keys tune normally");
    // The failed key itself recovers.
    svc.plan(64).expect("failed key retries cleanly");
    assert_eq!(svc.cached_plans(), 2);
    assert_eq!(svc.tuner_invocations(), 3);
}
