//! `serve` CLI contract: strict argument handling. Unknown flags and
//! non-numeric/zero values for the counts exit 2 with the usage string;
//! the historical bare-flags invocation (CI's serve-smoke) keeps
//! working as bench mode.

use std::process::{Command, Output};

fn serve(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(args)
        .output()
        .expect("serve binary runs")
}

fn assert_usage_exit(args: &[&str]) {
    let out = serve(args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "args {args:?} must exit 2, got {:?}\nstderr: {stderr}",
        out.status.code()
    );
    assert!(
        stderr.contains("usage: serve"),
        "args {args:?} must print the usage string, got: {stderr}"
    );
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    assert_usage_exit(&["--bogus"]);
    assert_usage_exit(&["bench", "--bogus", "3"]);
    assert_usage_exit(&["listen", "--bogus"]);
    assert_usage_exit(&["load", "--bogus"]);
    assert_usage_exit(&["stats", "--bogus"]);
    assert_usage_exit(&["frobnicate"]);
}

#[test]
fn stats_strict_args_exit_2_with_usage() {
    assert_usage_exit(&["stats", "--format", "xml"]);
    assert_usage_exit(&["stats", "--format"]);
    assert_usage_exit(&["stats", "--addr"]);
    assert_usage_exit(&["stats", "--addr", "not-an-address"]);
    assert_usage_exit(&["stats", "--out"]);
    assert_usage_exit(&["stats", "extra-positional"]);
}

#[test]
fn stats_against_a_dead_server_fails_nonzero_but_cleanly() {
    let out = serve(&["stats", "--addr", "127.0.0.1:1", "--format", "prom"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("cannot connect"),
        "expected a connect diagnostic, got: {stderr}"
    );
}

#[test]
fn non_numeric_values_exit_2_with_usage() {
    assert_usage_exit(&["--threads", "two"]);
    assert_usage_exit(&["--batch", "x"]);
    assert_usage_exit(&["--requests", "1.5"]);
    assert_usage_exit(&["--sizes", "64,banana"]);
    assert_usage_exit(&["--seed", "abc"]);
}

#[test]
fn zero_values_exit_2_with_usage() {
    assert_usage_exit(&["--threads", "0"]);
    assert_usage_exit(&["--batch", "0"]);
    assert_usage_exit(&["--requests", "0"]);
    assert_usage_exit(&["--sizes", "64,0"]);
    assert_usage_exit(&["listen", "--workers", "0"]);
    assert_usage_exit(&["load", "--connections", "0"]);
}

#[test]
fn missing_values_exit_2_with_usage() {
    assert_usage_exit(&["--threads"]);
    assert_usage_exit(&["--sizes"]);
    assert_usage_exit(&["load", "--addr"]);
}

#[test]
fn bad_addresses_exit_2_with_usage() {
    assert_usage_exit(&["load", "--addr", "not-an-address", "--requests", "1"]);
}

#[test]
fn bare_flags_still_run_bench_mode() {
    // The historical CI invocation: no subcommand, just flags.
    let out = serve(&[
        "--threads",
        "1",
        "--sizes",
        "32",
        "--batch",
        "2",
        "--requests",
        "2",
        "--seed",
        "1",
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "bare-flags bench must succeed; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("served 2 requests"),
        "bench output expected, got: {stdout}"
    );
}

#[test]
fn explicit_bench_subcommand_matches_bare_flags() {
    let out = serve(&[
        "bench",
        "--threads",
        "1",
        "--sizes",
        "32",
        "--batch",
        "2",
        "--requests",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn load_against_a_dead_server_fails_nonzero_but_cleanly() {
    // Port 1 on loopback: connection refused. The load driver must
    // report the failure with a nonzero exit, not a panic.
    let out = serve(&[
        "load",
        "--addr",
        "127.0.0.1:1",
        "--connections",
        "1",
        "--requests",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no responses"),
        "expected a diagnostic, got: {stderr}"
    );
}
