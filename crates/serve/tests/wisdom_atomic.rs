//! Crash-safety of wisdom persistence: saves go through a same-
//! directory temp file + fsync + atomic rename, so no failure mode may
//! leave a corrupt wisdom file where a good one stood, and a torn file
//! (however it got there) must be rejected cleanly on load.

use spiral_serve::{PlanService, WisdomStore};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spiral-wisdom-atomic-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn save_leaves_the_file_and_no_temp_behind() {
    let dir = scratch_dir("clean");
    let path = dir.join("wisdom.json");
    let (svc, _) = PlanService::with_wisdom(1, 4, &path);
    svc.sequential_plan(32).expect("tunes and saves");

    assert!(path.exists(), "the wisdom file must exist after a save");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir listing")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|name| name.ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "a completed save must not leave temp files: {leftovers:?}"
    );

    // And the saved file loads back warm.
    let (svc2, report) = PlanService::with_wisdom(1, 4, &path);
    assert!(report.discarded.is_none(), "{report:?}");
    svc2.sequential_plan(32).expect("serves from wisdom");
    assert_eq!(svc2.tuner_invocations(), 0, "warm wisdom must not tune");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_file_on_disk_is_rejected_cleanly_not_parsed() {
    let dir = scratch_dir("torn");
    let path = dir.join("wisdom.json");

    // Produce a real wisdom file, then tear it mid-byte — the state an
    // unsafe (non-atomic) writer would leave after a crash.
    let (svc, _) = PlanService::with_wisdom(1, 4, &path);
    svc.sequential_plan(32).expect("tunes and saves");
    let whole = std::fs::read(&path).expect("wisdom bytes");
    std::fs::write(&path, &whole[..whole.len() / 2]).expect("tear the file");

    let (store, report) = WisdomStore::open(&path);
    assert!(store.is_empty(), "a torn file must load as an empty store");
    let reason = report.discarded.expect("the tear must be reported");
    assert!(
        reason.contains("unparseable"),
        "the reason should say why: {reason}"
    );

    // A service over the torn file starts cold but *works* — and its
    // first save atomically replaces the torn file with a good one.
    let (svc2, report2) = PlanService::with_wisdom(1, 4, &path);
    assert!(report2.discarded.is_some());
    svc2.sequential_plan(32)
        .expect("re-tunes over the torn file");
    let (_, report3) = WisdomStore::open(&path);
    assert!(
        report3.discarded.is_none(),
        "the re-save must heal the file: {report3:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rewriting_an_existing_file_is_all_or_nothing() {
    let dir = scratch_dir("rewrite");
    let path = dir.join("wisdom.json");

    let (svc, _) = PlanService::with_wisdom(1, 4, &path);
    svc.sequential_plan(32).expect("first entry");
    let first = std::fs::read_to_string(&path).expect("first save");

    svc.sequential_plan(64).expect("second entry, second save");
    let second = std::fs::read_to_string(&path).expect("second save");
    assert_ne!(first, second, "the file must have been replaced");

    // Whatever is on disk at any point parses completely — there is no
    // intermediate truncated state with rename-based replacement.
    let (store, report) = WisdomStore::open(&path);
    assert!(report.discarded.is_none());
    assert_eq!(store.len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The injected torn write (faults feature): the save fails, but an
/// existing good wisdom file is untouched — byte-for-byte.
#[cfg(feature = "faults")]
#[test]
fn injected_torn_write_never_corrupts_the_existing_file() {
    use spiral_smp::faults::{install_serve, ServeFaultPlan, ServeFaultSpec, ServeSite};

    let dir = scratch_dir("inject");
    let path = dir.join("wisdom.json");

    let (svc, _) = PlanService::with_wisdom(1, 4, &path);
    svc.sequential_plan(32).expect("good save");
    let good = std::fs::read(&path).expect("good bytes");

    {
        let _guard = install_serve(ServeFaultPlan {
            seed: 0,
            specs: vec![ServeFaultSpec::always(ServeSite::WisdomSaveFail)],
        });
        // The tuner records a new entry and tries to save; the save is
        // torn mid-write and must fail *without* touching the target.
        svc.sequential_plan(64).expect("serving continues");
        assert!(svc.wisdom_save_failures() >= 1, "failure must be counted");
        let err = svc.save_wisdom().expect_err("explicit save fails too");
        assert!(err.contains("injected"), "got: {err}");
    }

    let after = std::fs::read(&path).expect("file still present");
    assert_eq!(good, after, "failed saves must leave the old file intact");
    // The old file still loads — one entry, not the unsaved second.
    let (store, report) = WisdomStore::open(&path);
    assert!(report.discarded.is_none());
    assert_eq!(store.len(), 1);

    // With the injection gone, the pending state saves atomically.
    svc.save_wisdom()
        .expect("save succeeds after the fault clears");
    let (store2, _) = WisdomStore::open(&path);
    assert_eq!(store2.len(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}
