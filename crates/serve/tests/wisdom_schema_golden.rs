//! Golden snapshot of the wisdom file schema. The wisdom file is an
//! interchange surface — external tooling and future sessions read it —
//! so its JSON shape is pinned under `results/`. If this test fails
//! after an intentional schema change, bump `WISDOM_SCHEMA_VERSION` and
//! regenerate with `UPDATE_GOLDEN=1 cargo test -p spiral-serve --test
//! wisdom_schema_golden`.

use spiral_serve::{WisdomEntry, WisdomFile, WISDOM_SCHEMA_VERSION};
use spiral_smp::topology::HostFingerprint;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/wisdom_schema.json")
}

/// Fixed literals, NOT `HostFingerprint::current()`: the golden must be
/// identical on every machine that runs the suite.
fn fixture() -> WisdomFile {
    WisdomFile {
        schema: WISDOM_SCHEMA_VERSION,
        host: HostFingerprint {
            cores: 4,
            mu: 4,
            cache_line_bytes: 64,
            simd_width: 4,
            process_budget: 4,
            features: vec!["trace".to_string(), "simd4".to_string()],
        },
        entries: vec![
            WisdomEntry {
                n: 16,
                threads: 1,
                mu: 4,
                plan_threads: 1,
                formula: "(DFT_4 @ I_4) * T^16_4 * (I_4 @ DFT_4) * L^16_4".to_string(),
                choice: "sequential tree (4 x 4)".to_string(),
                cost: 512.0,
                vec_width: 1,
                dist_procs: 1,
            },
            WisdomEntry {
                n: 1024,
                threads: 2,
                mu: 4,
                plan_threads: 2,
                formula: "vec(2)[smp(2,4)[DFT_1024]]".to_string(),
                choice: "multicore split 32x32 + vec(2)".to_string(),
                cost: 65536.0,
                vec_width: 2,
                dist_procs: 1,
            },
            WisdomEntry {
                n: 4096,
                threads: 2,
                mu: 4,
                plan_threads: 2,
                formula: "dist(2)[vec(2)[smp(2,4)[DFT_4096]]]".to_string(),
                choice: "multicore split 64x64 + vec(2) + dist(2)".to_string(),
                cost: 393216.0,
                vec_width: 2,
                dist_procs: 2,
            },
        ],
    }
}

#[test]
fn wisdom_json_matches_golden_snapshot() {
    let got = serde_json::to_string_pretty(&fixture()).unwrap();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&path, &got).expect("write golden snapshot");
        return;
    }
    let want = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden snapshot {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        ),
    };
    assert_eq!(
        got.trim(),
        want.trim(),
        "wisdom JSON schema drifted from results/wisdom_schema.json.\n\
         If intentional: bump WISDOM_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1."
    );
}

#[test]
fn golden_snapshot_round_trips() {
    let want = fixture();
    if let Ok(s) = std::fs::read_to_string(golden_path()) {
        let parsed: WisdomFile = serde_json::from_str(&s).expect("golden snapshot must parse");
        assert_eq!(parsed, want);
        assert_eq!(parsed.schema, WISDOM_SCHEMA_VERSION);
    }
}
