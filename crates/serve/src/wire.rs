//! The serving tier's wire protocol: length-prefixed binary frames.
//!
//! The protocol is deliberately minimal — a `u32`-little-endian length
//! prefix followed by a fixed-layout payload — because the interesting
//! engineering is not in the encoding but in what the server does when
//! the encoding *fails*: a frame that claims an absurd length, a client
//! that stalls mid-frame, a connection torn between prefix and payload.
//! Every decode path here returns a typed [`WireError`] so the server
//! can distinguish "client went away cleanly" from "client misbehaved"
//! and account for each.
//!
//! ## Frames
//!
//! Request payload (`"SQ01"` magic):
//!
//! ```text
//! magic[4] | id u64 | n u32 | batch u32 | deadline_ms u32 | data (batch·n Cplx, f64 re/im pairs)
//! ```
//!
//! Response payload (`"SR01"` magic):
//!
//! ```text
//! magic[4] | id u64 | status u8 | body
//! ```
//!
//! where `status` is 0 = `Ok` (body: batch·n `Cplx`), 1 = `Overloaded`,
//! 2 = `Expired` (no body), 3 = `Error` (body: `u32` length + UTF-8
//! message). `deadline_ms` is a *relative* budget in milliseconds from
//! the server's arrival timestamp (0 = use the server default): wall
//! clocks on two hosts never agree, so the wire carries durations and
//! each side anchors them locally.

use spiral_spl::cplx::Cplx;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Hard ceiling on a frame's payload length (64 MiB). A length prefix
/// above this is rejected *before* any allocation, so a garbage or
/// hostile prefix cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 1 << 26;

/// Request frame magic.
pub const REQUEST_MAGIC: [u8; 4] = *b"SQ01";
/// Response frame magic.
pub const RESPONSE_MAGIC: [u8; 4] = *b"SR01";
/// Stats frame magic (same magic both directions: a stats request
/// carries only a kind byte, a stats response carries the kind byte
/// plus a length-prefixed UTF-8 body).
pub const STATS_MAGIC: [u8; 4] = *b"SS01";

/// Fixed-size portion of a request payload: magic + id + n + batch +
/// deadline.
const REQUEST_HEADER_BYTES: usize = 4 + 8 + 4 + 4 + 4;

/// One transform request as decoded from the wire.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// Transform size.
    pub n: u32,
    /// Number of independent transforms in this request.
    pub batch: u32,
    /// Relative deadline budget in milliseconds (0 = server default).
    pub deadline_ms: u32,
    /// `batch · n` complex points, transform-major.
    pub data: Vec<Cplx>,
}

/// One response as decoded from the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The transform ran; `data` holds `batch · n` output points.
    Ok {
        /// Echoed request id.
        id: u64,
        /// Transform output, transform-major.
        data: Vec<Cplx>,
    },
    /// Admission control rejected the request (queue full / draining).
    Overloaded {
        /// Echoed request id (0 when rejected before any frame parsed).
        id: u64,
    },
    /// The request's deadline passed before execution started.
    Expired {
        /// Echoed request id.
        id: u64,
    },
    /// The request was admitted but execution failed.
    Error {
        /// Echoed request id.
        id: u64,
        /// Human-readable failure description.
        message: String,
    },
}

impl Response {
    /// The echoed request id, whatever the status.
    pub fn id(&self) -> u64 {
        match self {
            Response::Ok { id, .. }
            | Response::Overloaded { id }
            | Response::Expired { id }
            | Response::Error { id, .. } => *id,
        }
    }
}

/// Which live-telemetry view an `SS01` frame asks for (or carries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatsKind {
    /// Schema-versioned JSON metrics snapshot.
    Json,
    /// Prometheus text exposition of the same snapshot.
    Prom,
    /// Flight-recorder export: the recent past as Perfetto JSON.
    Dump,
}

impl StatsKind {
    /// Wire code of this kind.
    pub fn code(self) -> u8 {
        match self {
            StatsKind::Json => 0,
            StatsKind::Prom => 1,
            StatsKind::Dump => 2,
        }
    }

    /// Decode a wire code.
    pub fn from_code(code: u8) -> Option<StatsKind> {
        match code {
            0 => Some(StatsKind::Json),
            1 => Some(StatsKind::Prom),
            2 => Some(StatsKind::Dump),
            _ => None,
        }
    }
}

/// What [`read_request`] found on the socket.
#[derive(Debug)]
pub enum ReadEvent {
    /// A complete, well-formed request frame.
    Request(Request),
    /// A complete, well-formed `SS01` stats request.
    Stats(StatsKind),
    /// Clean end-of-stream at a frame boundary (client closed).
    Eof,
    /// Read timeout with *zero* bytes consumed: the connection is idle,
    /// not stalled — the caller may loop (and check its drain flag).
    Idle,
}

/// Typed decode/transport failure.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended mid-frame: `got` of `want` bytes arrived.
    Torn {
        /// Bytes received before EOF.
        got: usize,
        /// Bytes the frame declared.
        want: usize,
    },
    /// The read timed out mid-frame (slow or wedged peer).
    Stalled {
        /// Bytes received before the timeout.
        got: usize,
        /// Bytes the frame declared.
        want: usize,
    },
    /// The payload does not start with the expected magic.
    BadMagic,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The configured ceiling it exceeded.
        max: usize,
    },
    /// Structurally invalid payload (sizes disagree, short header…).
    Malformed(String),
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Torn { got, want } => {
                write!(f, "torn frame: stream ended after {got} of {want} bytes")
            }
            WireError::Stalled { got, want } => {
                write!(f, "stalled frame: timed out after {got} of {want} bytes")
            }
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte ceiling")
            }
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Encode a request into a complete frame (prefix + payload).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let data_bytes = req.data.len() * 16;
    let payload_len = REQUEST_HEADER_BYTES + data_bytes;
    let mut buf = Vec::with_capacity(4 + payload_len);
    buf.extend_from_slice(&u32_len(payload_len).to_le_bytes());
    buf.extend_from_slice(&REQUEST_MAGIC);
    buf.extend_from_slice(&req.id.to_le_bytes());
    buf.extend_from_slice(&req.n.to_le_bytes());
    buf.extend_from_slice(&req.batch.to_le_bytes());
    buf.extend_from_slice(&req.deadline_ms.to_le_bytes());
    for c in &req.data {
        buf.extend_from_slice(&c.re.to_le_bytes());
        buf.extend_from_slice(&c.im.to_le_bytes());
    }
    buf
}

/// Encode a response into a complete frame (prefix + payload).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let (id, status, data, message): (u64, u8, &[Cplx], &str) = match resp {
        Response::Ok { id, data } => (*id, 0, data.as_slice(), ""),
        Response::Overloaded { id } => (*id, 1, &[], ""),
        Response::Expired { id } => (*id, 2, &[], ""),
        Response::Error { id, message } => (*id, 3, &[], message.as_str()),
    };
    let body_len = match status {
        0 => data.len() * 16,
        3 => 4 + message.len(),
        _ => 0,
    };
    let payload_len = 4 + 8 + 1 + body_len;
    let mut buf = Vec::with_capacity(4 + payload_len);
    buf.extend_from_slice(&u32_len(payload_len).to_le_bytes());
    buf.extend_from_slice(&RESPONSE_MAGIC);
    buf.extend_from_slice(&id.to_le_bytes());
    buf.push(status);
    match status {
        0 => {
            for c in data {
                buf.extend_from_slice(&c.re.to_le_bytes());
                buf.extend_from_slice(&c.im.to_le_bytes());
            }
        }
        3 => {
            buf.extend_from_slice(&u32_len(message.len()).to_le_bytes());
            buf.extend_from_slice(message.as_bytes());
        }
        _ => {}
    }
    buf
}

/// Read one request frame, distinguishing idle timeouts, clean EOF, and
/// mid-frame failure. `max_frame` caps the accepted payload length
/// (pass [`MAX_FRAME_BYTES`] unless the server configures tighter).
pub fn read_request(stream: &mut impl Read, max_frame: usize) -> Result<ReadEvent, WireError> {
    let payload = match read_frame(stream, max_frame)? {
        Some(p) => p,
        None => return Ok(ReadEvent::Eof),
    };
    if payload.is_empty() {
        // A timeout with zero bytes consumed surfaces from read_frame as
        // an empty marker; see read_frame's contract.
        return Ok(ReadEvent::Idle);
    }
    if payload.len() >= 4 && payload[..4] == STATS_MAGIC {
        return Ok(ReadEvent::Stats(decode_stats_request(&payload)?));
    }
    Ok(ReadEvent::Request(decode_request(&payload)?))
}

/// Encode a stats request: magic + kind byte.
pub fn encode_stats_request(kind: StatsKind) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + 5);
    buf.extend_from_slice(&5u32.to_le_bytes());
    buf.extend_from_slice(&STATS_MAGIC);
    buf.push(kind.code());
    buf
}

/// Encode a stats response: magic + kind byte + length-prefixed UTF-8
/// body (the JSON snapshot, Prometheus text, or Perfetto dump).
pub fn encode_stats_response(kind: StatsKind, body: &str) -> Vec<u8> {
    let payload_len = 4 + 1 + 4 + body.len();
    let mut buf = Vec::with_capacity(4 + payload_len);
    buf.extend_from_slice(&u32_len(payload_len).to_le_bytes());
    buf.extend_from_slice(&STATS_MAGIC);
    buf.push(kind.code());
    buf.extend_from_slice(&u32_len(body.len()).to_le_bytes());
    buf.extend_from_slice(body.as_bytes());
    buf
}

/// Read one stats response frame (client side; blocks until complete).
pub fn read_stats_response(stream: &mut impl Read) -> Result<(StatsKind, String), WireError> {
    match read_frame(stream, MAX_FRAME_BYTES)? {
        Some(p) if !p.is_empty() => decode_stats_response(&p),
        Some(_) => Err(WireError::Stalled { got: 0, want: 4 }),
        None => Err(WireError::Torn { got: 0, want: 4 }),
    }
}

fn decode_stats_request(payload: &[u8]) -> Result<StatsKind, WireError> {
    if payload.len() != 5 {
        return Err(WireError::Malformed(format!(
            "stats request payload is {} bytes, want 5",
            payload.len()
        )));
    }
    StatsKind::from_code(payload[4])
        .ok_or_else(|| WireError::Malformed(format!("unknown stats kind {}", payload[4])))
}

fn decode_stats_response(payload: &[u8]) -> Result<(StatsKind, String), WireError> {
    if payload.len() < 9 {
        return Err(WireError::Malformed(format!(
            "stats response payload is {} bytes, header alone needs 9",
            payload.len()
        )));
    }
    if payload[..4] != STATS_MAGIC {
        return Err(WireError::BadMagic);
    }
    let kind = StatsKind::from_code(payload[4])
        .ok_or_else(|| WireError::Malformed(format!("unknown stats kind {}", payload[4])))?;
    let blen = u32::from_le_bytes(payload[5..9].try_into().expect("4-byte slice")) as usize;
    let body = &payload[9..];
    if body.len() != blen {
        return Err(WireError::Malformed(format!(
            "stats body declares {blen} bytes but carries {}",
            body.len()
        )));
    }
    Ok((kind, String::from_utf8_lossy(body).into_owned()))
}

/// Read one response frame (client side; blocks until complete).
pub fn read_response(stream: &mut impl Read) -> Result<Response, WireError> {
    match read_frame(stream, MAX_FRAME_BYTES)? {
        Some(p) if !p.is_empty() => decode_response(&p),
        Some(_) => Err(WireError::Stalled { got: 0, want: 4 }),
        None => Err(WireError::Torn { got: 0, want: 4 }),
    }
}

/// Read one length-prefixed frame.
///
/// Returns `Ok(None)` on clean EOF before any prefix byte, and
/// `Ok(Some(vec![]))` — an empty marker — on a timeout before any
/// prefix byte (idle connection). Any partial progress followed by EOF
/// or timeout is [`WireError::Torn`] / [`WireError::Stalled`].
fn read_frame(stream: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    // First byte separately: zero-progress EOF/timeout is a connection
    // state, not a protocol violation.
    match stream.read(&mut prefix[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return Ok(Some(Vec::new())),
        Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {
            return Ok(Some(Vec::new()));
        }
        Err(e) => return Err(WireError::Io(e)),
    }
    read_exact_or(stream, &mut prefix[1..], 1, 4)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame {
        return Err(WireError::TooLarge {
            len,
            max: max_frame,
        });
    }
    if len == 0 {
        return Err(WireError::Malformed("zero-length frame".to_string()));
    }
    let mut payload = vec![0u8; len];
    read_exact_or(stream, &mut payload, 0, len)?;
    Ok(Some(payload))
}

/// `read_exact` that reports partial progress as `Torn`/`Stalled`
/// rather than a bare I/O error. `already` bytes of the logical unit
/// (of `want` total) were consumed before this call.
fn read_exact_or(
    stream: &mut impl Read,
    buf: &mut [u8],
    already: usize,
    want: usize,
) -> Result<(), WireError> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(WireError::Torn {
                    got: already + got,
                    want,
                })
            }
            Ok(k) => got += k,
            Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                return Err(WireError::Stalled {
                    got: already + got,
                    want,
                })
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    if payload.len() < REQUEST_HEADER_BYTES {
        return Err(WireError::Malformed(format!(
            "request payload is {} bytes, header alone needs {REQUEST_HEADER_BYTES}",
            payload.len()
        )));
    }
    if payload[..4] != REQUEST_MAGIC {
        return Err(WireError::BadMagic);
    }
    let id = u64::from_le_bytes(payload[4..12].try_into().expect("8-byte slice"));
    let n = u32::from_le_bytes(payload[12..16].try_into().expect("4-byte slice"));
    let batch = u32::from_le_bytes(payload[16..20].try_into().expect("4-byte slice"));
    let deadline_ms = u32::from_le_bytes(payload[20..24].try_into().expect("4-byte slice"));
    let points = (n as usize)
        .checked_mul(batch as usize)
        .ok_or_else(|| WireError::Malformed("n·batch overflows".to_string()))?;
    let body = &payload[REQUEST_HEADER_BYTES..];
    if body.len() != points * 16 {
        return Err(WireError::Malformed(format!(
            "request declares {points} points ({} bytes) but carries {} bytes",
            points * 16,
            body.len()
        )));
    }
    Ok(Request {
        id,
        n,
        batch,
        deadline_ms,
        data: decode_points(body),
    })
}

fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    if payload.len() < 4 + 8 + 1 {
        return Err(WireError::Malformed(format!(
            "response payload is {} bytes, header alone needs 13",
            payload.len()
        )));
    }
    if payload[..4] != RESPONSE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let id = u64::from_le_bytes(payload[4..12].try_into().expect("8-byte slice"));
    let status = payload[12];
    let body = &payload[13..];
    match status {
        0 => {
            if !body.len().is_multiple_of(16) {
                return Err(WireError::Malformed(format!(
                    "Ok body of {} bytes is not a whole number of points",
                    body.len()
                )));
            }
            Ok(Response::Ok {
                id,
                data: decode_points(body),
            })
        }
        1 => Ok(Response::Overloaded { id }),
        2 => Ok(Response::Expired { id }),
        3 => {
            if body.len() < 4 {
                return Err(WireError::Malformed(
                    "Error body shorter than its length field".to_string(),
                ));
            }
            let mlen = u32::from_le_bytes(body[..4].try_into().expect("4-byte slice")) as usize;
            if body.len() != 4 + mlen {
                return Err(WireError::Malformed(format!(
                    "Error message declares {mlen} bytes but carries {}",
                    body.len() - 4
                )));
            }
            Ok(Response::Error {
                id,
                message: String::from_utf8_lossy(&body[4..]).into_owned(),
            })
        }
        s => Err(WireError::Malformed(format!("unknown status byte {s}"))),
    }
}

fn decode_points(body: &[u8]) -> Vec<Cplx> {
    body.chunks_exact(16)
        .map(|c| Cplx {
            re: f64::from_le_bytes(c[..8].try_into().expect("8-byte slice")),
            im: f64::from_le_bytes(c[8..].try_into().expect("8-byte slice")),
        })
        .collect()
}

/// Write a whole buffer, mapping failures into [`WireError::Io`].
pub fn write_all(stream: &mut impl Write, buf: &[u8]) -> Result<(), WireError> {
    stream.write_all(buf).map_err(WireError::Io)?;
    stream.flush().map_err(WireError::Io)
}

/// Convert a duration budget to the wire's millisecond field,
/// saturating (a budget over ~49 days is indistinguishable from
/// unlimited for a request that must finish in milliseconds).
pub fn budget_to_ms(budget: Duration) -> u32 {
    u32::try_from(budget.as_millis()).unwrap_or(u32::MAX)
}

/// Frame payload lengths always fit `u32` (they are bounded by
/// [`MAX_FRAME_BYTES`] on read, and writers build from in-memory
/// vectors far below 4 GiB).
fn u32_len(len: usize) -> u32 {
    u32::try_from(len).expect("frame length fits u32")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            id: 42,
            n: 4,
            batch: 2,
            deadline_ms: 250,
            data: (0..8)
                .map(|i| Cplx::new(f64::from(i), -f64::from(i)))
                .collect(),
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        let frame = encode_request(&req);
        let mut cursor = io::Cursor::new(frame);
        match read_request(&mut cursor, MAX_FRAME_BYTES).expect("decodes") {
            ReadEvent::Request(got) => assert_eq!(got, req),
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn response_roundtrips_all_statuses() {
        let cases = vec![
            Response::Ok {
                id: 1,
                data: vec![Cplx::new(1.5, -2.5); 4],
            },
            Response::Overloaded { id: 2 },
            Response::Expired { id: 3 },
            Response::Error {
                id: 4,
                message: "tuner failed".to_string(),
            },
        ];
        for resp in cases {
            let frame = encode_response(&resp);
            let mut cursor = io::Cursor::new(frame);
            assert_eq!(read_response(&mut cursor).expect("decodes"), resp);
        }
    }

    #[test]
    fn stats_request_roundtrips_all_kinds() {
        for kind in [StatsKind::Json, StatsKind::Prom, StatsKind::Dump] {
            let frame = encode_stats_request(kind);
            let mut cursor = io::Cursor::new(frame);
            match read_request(&mut cursor, MAX_FRAME_BYTES).expect("decodes") {
                ReadEvent::Stats(got) => assert_eq!(got, kind),
                other => panic!("expected a stats request, got {other:?}"),
            }
        }
    }

    #[test]
    fn stats_response_roundtrips() {
        let body = "{\"schema\": 1}";
        let frame = encode_stats_response(StatsKind::Json, body);
        let mut cursor = io::Cursor::new(frame);
        let (kind, got) = read_stats_response(&mut cursor).expect("decodes");
        assert_eq!(kind, StatsKind::Json);
        assert_eq!(got, body);
    }

    #[test]
    fn unknown_stats_kind_is_malformed() {
        let mut frame = encode_stats_request(StatsKind::Dump);
        *frame.last_mut().expect("kind byte") = 9;
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_request(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        let mut cursor = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_request(&mut cursor, MAX_FRAME_BYTES).expect("eof"),
            ReadEvent::Eof
        ));
    }

    #[test]
    fn torn_frame_reports_progress() {
        let mut frame = encode_request(&sample_request());
        frame.truncate(frame.len() / 2);
        let mut cursor = io::Cursor::new(frame);
        match read_request(&mut cursor, MAX_FRAME_BYTES) {
            Err(WireError::Torn { got, want }) => {
                assert!(got > 0 && got < want);
            }
            other => panic!("expected Torn, got {other:?}"),
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(b"SQ01");
        let mut cursor = io::Cursor::new(frame);
        match read_request(&mut cursor, MAX_FRAME_BYTES) {
            Err(WireError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_request(&sample_request());
        frame[4..8].copy_from_slice(b"XXXX");
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_request(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn data_length_must_match_header() {
        let mut req = sample_request();
        req.data.pop();
        // encode_request writes what it's given; the *decoder* must
        // notice the header/body disagreement.
        let mut frame = encode_request(&req);
        // Fix up the prefix to match the shortened payload.
        let payload_len = frame.len() - 4;
        frame[..4].copy_from_slice(&u32_len(payload_len).to_le_bytes());
        let mut cursor = io::Cursor::new(frame);
        assert!(matches!(
            read_request(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::Malformed(_))
        ));
    }
}
