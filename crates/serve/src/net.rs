//! The network tier: a thread-per-core TCP server over [`PlanService`].
//!
//! ## Structure
//!
//! One **acceptor** thread accepts connections into a bounded queue
//! (full queue ⇒ the connection gets an `Overloaded` frame and is
//! closed — admission control starts at `accept`). A fixed pool of
//! **connection workers** each own one connection at a time: they read
//! frames, stamp every request with an absolute deadline on arrival,
//! shed requests that are already expired, and offer the rest to a
//! bounded execution queue (full ⇒ `Overloaded`). One **dispatcher**
//! thread drains that queue, coalesces same-size requests waiting
//! behind the one it popped into a single [`BatchExecutor`] dispatch,
//! sheds work whose deadline passed while queued, and posts outcomes to
//! per-request reply slots the workers block on.
//!
//! ## Failure policy
//!
//! * Protocol violations (torn/stalled/oversized frames) close the
//!   offending connection and count in `protocol_errors`; they never
//!   take a worker down.
//! * Execution failures become typed `Error` responses. A *runtime*
//!   fault (watchdog trip, worker panic, pool marked unhealthy — see
//!   [`spiral_smp::error::SpiralError::is_runtime_fault`]) additionally flips the server
//!   into **degraded mode**: all subsequent dispatches run the
//!   sequential per-transform plan on the dispatcher thread, trading
//!   parallel speed for availability. The flag is sticky — a pool that
//!   tripped its watchdog is not trusted again within the process.
//! * The dispatcher wraps execution in `catch_unwind`, so even a panic
//!   in the execution stack answers every in-flight request.
//!
//! ## Drain
//!
//! [`Server::shutdown`] stops the acceptor, answers queued-but-unserved
//! connections with `Overloaded`, lets in-flight requests finish,
//! persists wisdom (atomically — see [`crate::wisdom`]), and returns a
//! [`DrainReport`] with the final accounting. Connection workers notice
//! the drain flag within one read-timeout tick, so drain latency is
//! bounded by configuration, not by client behavior.

use crate::cache::PlanService;
use crate::metrics::{self, GaugeReadings, ServeMetrics};
use crate::overload::{BoundedQueue, CounterSnapshot, Push, ServeCounters};
use crate::wire::{self, ReadEvent, Request, Response, StatsKind, WireError, MAX_FRAME_BYTES};
use spiral_smp::topology;
use spiral_spl::cplx::Cplx;
use spiral_trace::metrics::MetricsSnapshot;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(feature = "trace")]
use spiral_smp::trace::{SpanKind, TimelineSink};

/// Server tuning knobs. `Default` is sized for tests and small hosts;
/// production callers set `workers` to the machine's core count
/// explicitly.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Connection-worker threads (thread-per-core: one blocking
    /// connection each).
    pub workers: usize,
    /// Capacity of the accepted-connection queue.
    pub conn_backlog: usize,
    /// Capacity of the execution queue (requests admitted but not yet
    /// dispatched).
    pub queue_bound: usize,
    /// Per-frame payload ceiling in bytes.
    pub max_frame_bytes: usize,
    /// Socket read timeout: bounds how long a stalled client can hold a
    /// worker, and how long drain takes to be noticed.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Deadline budget applied when a request carries `deadline_ms = 0`.
    pub default_deadline: Duration,
    /// Maximum requests coalesced into one execution dispatch.
    pub max_coalesce: usize,
    /// Hot-path telemetry toggle (the overhead-ablation knob): when
    /// false, per-phase histogram recording and flight-recorder writes
    /// are skipped. Snapshot-time counter/gauge views stay live either
    /// way. A build without the `trace` feature has no recording to
    /// toggle.
    pub metrics_enabled: bool,
    /// SLO breach threshold as a fraction of a request's deadline
    /// budget: a request whose end-to-end latency exceeds
    /// `slo_fraction × budget` (or that is shed) marks a breach in the
    /// flight recorder.
    pub slo_fraction: f64,
    /// Where to persist the flight-recorder export on the *first* SLO
    /// breach (`None` = never persist; `SS01 dump` still works).
    pub flight_record_path: Option<PathBuf>,
    /// Optional timeline sink; workers record one `RequestServe` span
    /// per served request (tid = worker index).
    #[cfg(feature = "trace")]
    pub sink: Option<Arc<dyn TimelineSink + Send + Sync>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: topology::processors().max(1),
            conn_backlog: 64,
            queue_bound: 64,
            max_frame_bytes: MAX_FRAME_BYTES,
            read_timeout: Duration::from_millis(50),
            write_timeout: Duration::from_secs(5),
            default_deadline: Duration::from_secs(1),
            max_coalesce: 8,
            metrics_enabled: true,
            slo_fraction: 1.0,
            flight_record_path: None,
            #[cfg(feature = "trace")]
            sink: None,
        }
    }
}

/// Terminal outcome of one admitted, queued request.
enum JobOutcome {
    /// Execution succeeded; one output vector per input transform,
    /// concatenated back into the response by the worker.
    Ok(Vec<Cplx>),
    /// The deadline passed while the request was queued.
    Expired,
    /// Execution failed (message goes to the client verbatim).
    Error(String),
}

/// One-shot rendezvous between a connection worker and the dispatcher.
struct ReplySlot {
    done: Mutex<Option<JobOutcome>>,
    cv: Condvar,
}

impl ReplySlot {
    fn new() -> ReplySlot {
        ReplySlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn set(&self, outcome: JobOutcome) {
        *lock(&self.done) = Some(outcome);
        self.cv.notify_all();
    }

    /// Block until the dispatcher posts an outcome, or until `grace_by`
    /// — a hard fallback so a lost dispatcher (which the design rules
    /// out, but robustness code does not trust designs) cannot wedge a
    /// worker forever.
    fn wait(&self, grace_by: Instant) -> JobOutcome {
        let mut done = lock(&self.done);
        loop {
            if let Some(outcome) = done.take() {
                return outcome;
            }
            let now = Instant::now();
            if now >= grace_by {
                return JobOutcome::Error("dispatcher unresponsive".to_string());
            }
            let (g, _) = self
                .cv
                .wait_timeout(done, grace_by - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            done = g;
        }
    }
}

/// One accepted connection waiting for a worker (the enqueue timestamp
/// feeds the conn-queue-wait histogram).
struct ConnItem {
    stream: TcpStream,
    enqueued: Instant,
}

/// One admitted request on its way to the dispatcher.
struct ExecJob {
    n: usize,
    /// One vector per transform in the request's batch.
    inputs: Vec<Vec<Cplx>>,
    deadline: Instant,
    /// When the job entered the execution queue (feeds the
    /// exec-queue-wait histogram).
    enqueued: Instant,
    reply: Arc<ReplySlot>,
}

struct Shared {
    service: Arc<PlanService>,
    cfg: ServerConfig,
    counters: ServeCounters,
    metrics: ServeMetrics,
    conn_q: BoundedQueue<ConnItem>,
    exec_q: BoundedQueue<ExecJob>,
    draining: AtomicBool,
    degraded: AtomicBool,
}

/// Build the live metrics snapshot: counter/gauge views over the
/// accounting surface and queues, plus histogram snapshots when the
/// `trace` feature records them.
fn metrics_snapshot(shared: &Shared) -> MetricsSnapshot {
    shared.metrics.snapshot(
        &shared.counters.snapshot(),
        &GaugeReadings {
            conn_queue_depth: shared.conn_q.depth() as u64,
            exec_queue_depth: shared.exec_q.depth() as u64,
            degraded: shared.degraded.load(Ordering::Relaxed),
        },
    )
}

/// Render the body of an `SS01` stats response.
fn stats_body(shared: &Shared, kind: StatsKind) -> String {
    match kind {
        StatsKind::Json => metrics_snapshot(shared).to_json(),
        StatsKind::Prom => metrics_snapshot(shared).to_prometheus(),
        StatsKind::Dump => shared.metrics.dump(),
    }
}

/// Final accounting returned by [`Server::shutdown`].
#[derive(Debug)]
pub struct DrainReport {
    /// Counter totals at drain completion (conservation must hold).
    pub counters: CounterSnapshot,
    /// High-water mark of the execution queue.
    pub exec_max_depth: u64,
    /// High-water mark of the connection queue.
    pub conn_max_depth: u64,
    /// Whether the server ended in degraded (sequential) mode.
    pub degraded: bool,
    /// Worker/dispatcher/acceptor threads that terminated by panic
    /// (must be zero; the chaos suite asserts it).
    pub thread_panics: usize,
    /// Error from the final wisdom save, if it failed.
    pub wisdom_error: Option<String>,
    /// The final metrics snapshot, taken after every thread joined. Its
    /// counter views read the same atomics as `counters`, so the two
    /// agree exactly — the live-vs-exact invariant the metrics tests
    /// pin.
    pub metrics: MetricsSnapshot,
}

/// A running server; dropping it without [`Server::shutdown`] detaches
/// the threads (tests should always drain).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the acceptor / worker / dispatcher threads, and
    /// start serving `service`.
    pub fn start(service: Arc<PlanService>, cfg: ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            conn_q: BoundedQueue::new(cfg.conn_backlog),
            exec_q: BoundedQueue::new(cfg.queue_bound),
            service,
            metrics: ServeMetrics::new(workers),
            cfg,
            counters: ServeCounters::default(),
            draining: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let mut worker_handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            let shared = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("serve-conn-{wid}"))
                .spawn(move || conn_worker(wid, &shared))
                .map_err(|e| format!("cannot spawn worker {wid}: {e}"))?;
            worker_handles.push(h);
        }
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-dispatch".to_string())
                .spawn(move || dispatch_loop(&shared))
                .map_err(|e| format!("cannot spawn dispatcher: {e}"))?
        };

        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers: worker_handles,
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (with the real port when `addr` asked for 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counter snapshot.
    pub fn counters(&self) -> CounterSnapshot {
        self.shared.counters.snapshot()
    }

    /// Live metrics snapshot — the same view an `SS01` stats request
    /// gets over the wire.
    pub fn metrics(&self) -> MetricsSnapshot {
        metrics_snapshot(&self.shared)
    }

    /// Flight-recorder export (Perfetto JSON) — the same body an
    /// `SS01 dump` request gets over the wire.
    pub fn flight_dump(&self) -> String {
        self.shared.metrics.dump()
    }

    /// True once a runtime fault has flipped the server to the
    /// sequential (degraded) execution path.
    pub fn is_degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting, turn queued connections away,
    /// finish in-flight requests, persist wisdom, join every thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect(self.addr);
        let mut thread_panics = 0;
        if let Some(h) = self.acceptor.take() {
            thread_panics += usize::from(h.join().is_err());
        }
        // No new connections can arrive; flush the queued ones through
        // the workers (they answer Overloaded while draining), then
        // release the workers.
        self.shared.conn_q.close();
        for h in self.workers.drain(..) {
            thread_panics += usize::from(h.join().is_err());
        }
        // Workers are gone, so no new jobs; let the dispatcher finish
        // the backlog and exit.
        self.shared.exec_q.close();
        if let Some(h) = self.dispatcher.take() {
            thread_panics += usize::from(h.join().is_err());
        }
        let wisdom_error = self.shared.service.save_wisdom().err();
        DrainReport {
            counters: self.shared.counters.snapshot(),
            exec_max_depth: self.shared.exec_q.max_depth(),
            conn_max_depth: self.shared.conn_q.max_depth(),
            degraded: self.shared.degraded.load(Ordering::Relaxed),
            thread_panics,
            wisdom_error,
            metrics: metrics_snapshot(&self.shared),
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            // Transient accept errors (EMFILE, aborted handshakes) must
            // not kill the acceptor.
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.draining.load(Ordering::SeqCst) {
            // The shutdown self-connection (or a late client) — either
            // way, stop accepting.
            return;
        }
        let item = ConnItem {
            stream,
            enqueued: Instant::now(),
        };
        match shared.conn_q.push(item) {
            Push::Accepted => {}
            Push::Full(item) | Push::Closed(item) => {
                shared
                    .counters
                    .conns_rejected
                    .fetch_add(1, Ordering::Relaxed);
                reject_connection(item.stream, shared.cfg.read_timeout);
            }
        }
    }
}

/// Tell a turned-away connection it hit admission control, then close.
///
/// Closing with the client's request bytes still unread would send a
/// TCP RST, which can destroy the `Overloaded` frame before the client
/// reads it — the client would see a reset where the protocol promises
/// a typed reject. So after writing the frame the socket lingers on a
/// short detached thread, draining whatever the client sent until EOF
/// or `linger` expires, and only then closes.
fn reject_connection(mut stream: TcpStream, linger: Duration) {
    let frame = wire::encode_response(&Response::Overloaded { id: 0 });
    if wire::write_all(&mut stream, &frame).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = std::thread::Builder::new()
        .name("serve-reject".to_string())
        .spawn(move || {
            use std::io::Read as _;
            let _ = stream.set_read_timeout(Some(linger));
            let deadline = Instant::now() + linger;
            let mut sink = [0u8; 512];
            loop {
                match stream.read(&mut sink) {
                    Ok(0) | Err(_) => return,
                    Ok(_) if Instant::now() >= deadline => return,
                    Ok(_) => {}
                }
            }
        });
}

fn conn_worker(wid: usize, shared: &Shared) {
    let mut request_seq: u32 = 0;
    while let Some(item) = shared.conn_q.pop() {
        if shared.draining.load(Ordering::SeqCst) {
            shared
                .counters
                .conns_rejected
                .fetch_add(1, Ordering::Relaxed);
            reject_connection(item.stream, shared.cfg.read_timeout);
            continue;
        }
        shared
            .counters
            .conns_accepted
            .fetch_add(1, Ordering::Relaxed);
        if shared.cfg.metrics_enabled {
            shared.metrics.record(
                metrics::CONN_QUEUE_WAIT_SECONDS,
                wid,
                item.enqueued.elapsed(),
            );
        }
        serve_connection(wid, shared, item.stream, &mut request_seq);
    }
}

/// Serve one connection until EOF, drain, or a protocol violation.
fn serve_connection(wid: usize, shared: &Shared, mut stream: TcpStream, request_seq: &mut u32) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let read_start = Instant::now();
        let event = wire::read_request(&mut stream, shared.cfg.max_frame_bytes);
        let request = match event {
            Ok(ReadEvent::Request(r)) => r,
            Ok(ReadEvent::Stats(kind)) => {
                // Stats frames are observers, not requests: they skip
                // admission, deadlines, and the `requests` conservation
                // law entirely.
                let body = stats_body(shared, kind);
                let frame = wire::encode_stats_response(kind, &body);
                if wire::write_all(&mut stream, &frame).is_err() {
                    shared
                        .counters
                        .protocol_errors
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                continue;
            }
            Ok(ReadEvent::Idle) => continue,
            Ok(ReadEvent::Eof) => return,
            Err(WireError::Io(_))
            | Err(WireError::Torn { .. })
            | Err(WireError::Stalled { .. })
            | Err(WireError::BadMagic)
            | Err(WireError::TooLarge { .. })
            | Err(WireError::Malformed(_)) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let arrival = Instant::now();
        if request.n == 0 || request.batch == 0 {
            // Structurally decodable but semantically void; treat as a
            // protocol violation rather than burdening the planner.
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        if shared.cfg.metrics_enabled {
            shared
                .metrics
                .record(metrics::PARSE_SECONDS, wid, arrival - read_start);
        }
        let budget = if request.deadline_ms == 0 {
            shared.cfg.default_deadline
        } else {
            Duration::from_millis(u64::from(request.deadline_ms))
        };
        let seq = *request_seq;
        *request_seq = request_seq.wrapping_add(1);
        let response = handle_request(shared, request, arrival, seq);
        let finished = Instant::now();
        #[cfg(feature = "trace")]
        if let Some(sink) = &shared.cfg.sink {
            sink.span(wid, SpanKind::RequestServe, seq, arrival, finished);
        }
        if shared.cfg.metrics_enabled {
            shared
                .metrics
                .record(metrics::REQUEST_SECONDS, wid, finished - arrival);
            observe_outcome(shared, wid, seq, arrival, finished, budget, &response);
        }
        let frame = wire::encode_response(&response);
        if wire::write_all(&mut stream, &frame).is_err() {
            shared
                .counters
                .protocol_errors
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Feed the flight recorder: record the request's span in the always-on
/// rings and, when the request was shed or blew `slo_fraction` of its
/// deadline budget, mark an SLO breach on the same lane — persisting
/// the recorder export on the first breach if configured.
#[cfg(feature = "trace")]
fn observe_outcome(
    shared: &Shared,
    wid: usize,
    seq: u32,
    arrival: Instant,
    finished: Instant,
    budget: Duration,
    response: &Response,
) {
    use spiral_smp::trace::TimelineSink as _;
    let recorder = shared.metrics.recorder();
    recorder.span(wid, SpanKind::RequestServe, seq, arrival, finished);
    let shed = matches!(
        response,
        Response::Overloaded { .. } | Response::Expired { .. }
    );
    let over_budget = finished - arrival > budget.mul_f64(shared.cfg.slo_fraction.max(0.0));
    if (shed || over_budget) && recorder.breach(wid, seq, finished) {
        if let Some(path) = &shared.cfg.flight_record_path {
            let _ = std::fs::write(path, recorder.dump());
        }
    }
}

/// Without the `trace` feature there are no rings to feed; the breach
/// policy compiles out with them.
#[cfg(not(feature = "trace"))]
fn observe_outcome(
    _shared: &Shared,
    _wid: usize,
    _seq: u32,
    _arrival: Instant,
    _finished: Instant,
    _budget: Duration,
    _response: &Response,
) {
}

/// Admission, shedding, queueing, and the reply wait for one request.
/// Increments `requests` and exactly one terminal counter.
fn handle_request(shared: &Shared, request: Request, arrival: Instant, seq: u32) -> Response {
    let c = &shared.counters;
    c.requests.fetch_add(1, Ordering::Relaxed);
    let id = request.id;

    if shared.draining.load(Ordering::SeqCst) {
        c.overloaded.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded { id };
    }

    let budget = if request.deadline_ms == 0 {
        shared.cfg.default_deadline
    } else {
        Duration::from_millis(u64::from(request.deadline_ms))
    };
    #[cfg(feature = "faults")]
    let expire_injected =
        spiral_smp::faults::serve_at(spiral_smp::faults::ServeSite::ExpireDeadline, seq as usize);
    #[cfg(not(feature = "faults"))]
    let expire_injected = false;
    let _ = seq;
    let deadline = if expire_injected {
        arrival
    } else {
        arrival + budget
    };

    // Shed already-expired work before it costs anything.
    if Instant::now() >= deadline {
        c.expired.fetch_add(1, Ordering::Relaxed);
        c.shed_expired.fetch_add(1, Ordering::Relaxed);
        return Response::Expired { id };
    }

    let n = usize::try_from(request.n).expect("u32 fits usize");
    let batch = usize::try_from(request.batch).expect("u32 fits usize");
    let inputs: Vec<Vec<Cplx>> = request.data.chunks(n).map(<[Cplx]>::to_vec).collect();
    debug_assert_eq!(inputs.len(), batch);
    let reply = Arc::new(ReplySlot::new());
    let job = ExecJob {
        n,
        inputs,
        deadline,
        enqueued: Instant::now(),
        reply: Arc::clone(&reply),
    };
    match shared.exec_q.push(job) {
        Push::Accepted => {}
        Push::Full(_) | Push::Closed(_) => {
            c.overloaded.fetch_add(1, Ordering::Relaxed);
            return Response::Overloaded { id };
        }
    }
    // Grace: the dispatcher answers every job it pops (catch_unwind),
    // so this fallback only fires if the dispatcher itself is gone.
    let grace_by = deadline + Duration::from_secs(5).max(shared.cfg.default_deadline);
    match reply.wait(grace_by) {
        JobOutcome::Ok(data) => {
            c.ok.fetch_add(1, Ordering::Relaxed);
            Response::Ok { id, data }
        }
        JobOutcome::Expired => {
            c.expired.fetch_add(1, Ordering::Relaxed);
            Response::Expired { id }
        }
        JobOutcome::Error(message) => {
            c.errors.fetch_add(1, Ordering::Relaxed);
            Response::Error { id, message }
        }
    }
}

fn dispatch_loop(shared: &Shared) {
    let mut dispatch_seq: usize = 0;
    let mut dispatch_stage: u32 = 0;
    let lane = shared.metrics.dispatcher_lane();
    while let Some(job) = shared.exec_q.pop() {
        let n = job.n;
        // Coalesce same-size requests already waiting behind this one:
        // they ride the same pool dispatch instead of paying their own.
        let extra = shared
            .exec_q
            .drain_matching(|j| j.n == n, shared.cfg.max_coalesce.saturating_sub(1));
        if !extra.is_empty() {
            shared
                .counters
                .coalesced
                .fetch_add(extra.len() as u64, Ordering::Relaxed);
        }
        let mut group = Vec::with_capacity(1 + extra.len());
        group.push(job);
        group.extend(extra);
        if shared.cfg.metrics_enabled {
            shared
                .metrics
                .record_size(metrics::COALESCE_SIZE, lane, group.len() as u64);
            let popped = Instant::now();
            for j in &group {
                shared.metrics.record(
                    metrics::EXEC_QUEUE_WAIT_SECONDS,
                    lane,
                    popped.saturating_duration_since(j.enqueued),
                );
            }
        }

        // Shed what expired while queued.
        let now = Instant::now();
        let mut live = Vec::with_capacity(group.len());
        for j in group {
            if now >= j.deadline {
                shared.counters.shed_expired.fetch_add(1, Ordering::Relaxed);
                j.reply.set(JobOutcome::Expired);
            } else {
                live.push(j);
            }
        }
        if live.is_empty() {
            continue;
        }

        shared.counters.dispatches.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "faults")]
        if spiral_smp::faults::serve_at(spiral_smp::faults::ServeSite::BatchWedge, dispatch_seq) {
            // Model the pool watchdog tripping mid-dispatch: flip to the
            // degraded path and serve this group there.
            shared.degraded.store(true, Ordering::Relaxed);
        }
        dispatch_seq = dispatch_seq.wrapping_add(1);

        let exec_start = Instant::now();
        let answered = if shared.degraded.load(Ordering::Relaxed) {
            false
        } else {
            match run_batched(shared, n, &live) {
                BatchedResult::Answered => true,
                BatchedResult::Degrade => {
                    shared.degraded.store(true, Ordering::Relaxed);
                    false // Fall through: serve this group sequentially.
                }
            }
        };
        if !answered {
            shared
                .counters
                .degraded_dispatches
                .fetch_add(1, Ordering::Relaxed);
            run_degraded(shared, n, live);
        }
        let exec_end = Instant::now();
        if shared.cfg.metrics_enabled {
            shared
                .metrics
                .record(metrics::POOL_EXECUTE_SECONDS, lane, exec_end - exec_start);
            observe_pool_execute(shared, lane, dispatch_stage, exec_start, exec_end);
        }
        dispatch_stage = dispatch_stage.wrapping_add(1);
    }
}

/// Record the dispatch's `PoolExecute` span in the flight recorder and
/// the optional configured sink (stage = dispatch sequence number).
#[cfg(feature = "trace")]
fn observe_pool_execute(shared: &Shared, lane: usize, stage: u32, start: Instant, end: Instant) {
    use spiral_smp::trace::TimelineSink as _;
    shared
        .metrics
        .recorder()
        .span(lane, SpanKind::PoolExecute, stage, start, end);
    if let Some(sink) = &shared.cfg.sink {
        sink.span(lane, SpanKind::PoolExecute, stage, start, end);
    }
}

#[cfg(not(feature = "trace"))]
fn observe_pool_execute(
    _shared: &Shared,
    _lane: usize,
    _stage: u32,
    _start: Instant,
    _end: Instant,
) {
}

enum BatchedResult {
    /// Every job in the group received its outcome.
    Answered,
    /// A runtime fault or panic: the pool is no longer trusted; the
    /// caller must serve the (still unanswered) group degraded.
    Degrade,
}

/// The fast path: one pooled batch dispatch for the whole group.
/// Inputs are cloned (not moved) so a degrade fallback can still serve
/// the same group sequentially.
fn run_batched(shared: &Shared, n: usize, group: &[ExecJob]) -> BatchedResult {
    let all_inputs: Vec<Vec<Cplx>> = group
        .iter()
        .flat_map(|j| j.inputs.iter().cloned())
        .collect();
    let result = catch_unwind(AssertUnwindSafe(|| {
        shared.service.serve_batch(n, &all_inputs)
    }));
    match result {
        Ok(Ok(outputs)) => {
            let mut cursor = 0usize;
            for j in group {
                let count = j.inputs.len();
                let flat: Vec<Cplx> = outputs[cursor..cursor + count]
                    .iter()
                    .flat_map(|v| v.iter().copied())
                    .collect();
                cursor += count;
                j.reply.set(JobOutcome::Ok(flat));
            }
            BatchedResult::Answered
        }
        Ok(Err(e)) if e.is_runtime_fault() => BatchedResult::Degrade,
        Ok(Err(e)) => {
            for j in group {
                j.reply.set(JobOutcome::Error(e.to_string()));
            }
            BatchedResult::Answered
        }
        Err(_panic) => BatchedResult::Degrade,
    }
}

/// The degraded path: sequential per-transform execution on the
/// dispatcher thread. Slow, but it depends on nothing but the plan.
fn run_degraded(shared: &Shared, n: usize, group: Vec<ExecJob>) {
    let served = match shared.service.sequential_plan(n) {
        Ok(s) => s,
        Err(e) => {
            for j in &group {
                j.reply.set(JobOutcome::Error(e.to_string()));
            }
            return;
        }
    };
    for j in &group {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut flat = Vec::with_capacity(j.inputs.len() * n);
            for x in &j.inputs {
                flat.extend(served.plan.execute(x));
            }
            flat
        }));
        match result {
            Ok(flat) => j.reply.set(JobOutcome::Ok(flat)),
            Err(_) => j.reply.set(JobOutcome::Error(
                "sequential execution panicked".to_string(),
            )),
        }
    }
}
