//! Blocking client for the serving tier's wire protocol, plus a
//! multi-connection load driver.
//!
//! The client exists for three consumers: the `serve load` CLI mode,
//! the `figures serve-load` benchmark, and the e2e/chaos tests — which
//! is why it also ships *misbehaving* writers ([`Client::send_torn`],
//! [`Client::send_slow`]): the server's protocol hardening is only
//! testable with a client willing to violate the protocol.

use crate::wire::{self, Request, Response, StatsKind, WireError};
use spiral_spl::cplx::Cplx;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A blocking connection to a serve-tier server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Send one request and block for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, WireError> {
        let frame = wire::encode_request(req);
        wire::write_all(&mut self.stream, &frame)?;
        wire::read_response(&mut self.stream)
    }

    /// Ask the server for its live telemetry: an `SS01` stats exchange.
    /// Returns the response body (JSON snapshot, Prometheus text, or
    /// Perfetto flight-recorder dump, per `kind`).
    pub fn stats(&mut self, kind: StatsKind) -> Result<String, WireError> {
        let frame = wire::encode_stats_request(kind);
        wire::write_all(&mut self.stream, &frame)?;
        let (got_kind, body) = wire::read_stats_response(&mut self.stream)?;
        if got_kind != kind {
            return Err(WireError::Malformed(format!(
                "asked for stats kind {}, server answered kind {}",
                kind.code(),
                got_kind.code()
            )));
        }
        Ok(body)
    }

    /// Send only the first half of a request frame, then close the
    /// write side — a torn frame from the server's perspective.
    pub fn send_torn(&mut self, req: &Request) -> Result<(), WireError> {
        let frame = wire::encode_request(req);
        let half = &frame[..frame.len() / 2];
        wire::write_all(&mut self.stream, half)?;
        self.stream.shutdown(Shutdown::Write).map_err(WireError::Io)
    }

    /// Send a request frame in `chunks` pieces with `pause` between
    /// them — a slow-loris-style writer for exercising the server's
    /// read-timeout reaping.
    pub fn send_slow(
        &mut self,
        req: &Request,
        chunks: usize,
        pause: Duration,
    ) -> Result<(), WireError> {
        let frame = wire::encode_request(req);
        let step = frame.len().div_ceil(chunks.max(1));
        for chunk in frame.chunks(step.max(1)) {
            self.stream.write_all(chunk).map_err(WireError::Io)?;
            self.stream.flush().map_err(WireError::Io)?;
            std::thread::sleep(pause);
        }
        Ok(())
    }

    /// Close both directions immediately (mid-conversation disconnect).
    pub fn disconnect(self) {
        let _ = self.stream.shutdown(Shutdown::Both);
    }

    /// Raw access to the underlying stream, for tests that need to
    /// write bytes the typed API refuses to produce.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Build a request from per-transform input vectors (flattened onto the
/// wire transform-major).
pub fn request_from_inputs(id: u64, deadline_ms: u32, inputs: &[Vec<Cplx>]) -> Request {
    let n = inputs.first().map_or(0, Vec::len);
    let data: Vec<Cplx> = inputs.iter().flat_map(|v| v.iter().copied()).collect();
    Request {
        id,
        n: u32::try_from(n).expect("transform size fits u32"),
        batch: u32::try_from(inputs.len()).expect("batch fits u32"),
        deadline_ms,
        data,
    }
}

/// Parameters for a multi-connection load run.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent client connections.
    pub connections: usize,
    /// Requests sent per connection.
    pub requests_per_conn: usize,
    /// Transform size per request.
    pub n: usize,
    /// Transforms per request.
    pub batch: usize,
    /// Relative deadline carried on every request (0 = server default).
    pub deadline_ms: u32,
    /// Open a fresh connection for every request (stresses the accept
    /// path; the overload phase of `figures serve-load` uses this).
    pub reconnect_per_request: bool,
    /// Seed for the synthetic input data.
    pub seed: u64,
}

/// Tallied result of [`drive`].
#[derive(Clone, Debug, Default)]
pub struct LoadOutcome {
    /// `Ok` responses received.
    pub ok: u64,
    /// `Overloaded` responses received.
    pub overloaded: u64,
    /// `Expired` responses received.
    pub expired: u64,
    /// `Error` responses received.
    pub errors: u64,
    /// Connections that failed to open (refused / reset at connect).
    pub conn_failures: u64,
    /// Wire-level failures after connecting (torn responses, resets).
    pub protocol_errors: u64,
    /// Per-`Ok`-request round-trip latencies, microseconds.
    pub latencies_us: Vec<u64>,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
}

impl LoadOutcome {
    /// Total responses of any status.
    pub fn responses(&self) -> u64 {
        self.ok + self.overloaded + self.expired + self.errors
    }
}

/// Drive a load pattern against a server: `connections` threads, each
/// sending `requests_per_conn` requests and blocking on each response.
pub fn drive(spec: &LoadSpec) -> LoadOutcome {
    let started = Instant::now();
    let outcomes: Vec<LoadOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.connections)
            .map(|cid| scope.spawn(move || drive_one(spec, cid)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut total = LoadOutcome::default();
    for o in outcomes {
        total.ok += o.ok;
        total.overloaded += o.overloaded;
        total.expired += o.expired;
        total.errors += o.errors;
        total.conn_failures += o.conn_failures;
        total.protocol_errors += o.protocol_errors;
        total.latencies_us.extend(o.latencies_us);
    }
    total.elapsed_s = started.elapsed().as_secs_f64();
    total
}

/// One connection thread's loop.
fn drive_one(spec: &LoadSpec, cid: usize) -> LoadOutcome {
    let mut out = LoadOutcome::default();
    let mut client: Option<Client> = None;
    for rid in 0..spec.requests_per_conn {
        if spec.reconnect_per_request {
            client = None;
        }
        if client.is_none() {
            match Client::connect(spec.addr) {
                Ok(c) => client = Some(c),
                Err(_) => {
                    out.conn_failures += 1;
                    continue;
                }
            }
        }
        let inputs = synth_inputs(spec, cid, rid);
        let id = (cid as u64) << 32 | rid as u64;
        let req = request_from_inputs(id, spec.deadline_ms, &inputs);
        let sent = Instant::now();
        let c = client.as_mut().expect("client connected above");
        match c.request(&req) {
            Ok(Response::Ok { .. }) => {
                out.ok += 1;
                out.latencies_us
                    .push(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
            Ok(Response::Overloaded { .. }) => out.overloaded += 1,
            Ok(Response::Expired { .. }) => out.expired += 1,
            Ok(Response::Error { .. }) => out.errors += 1,
            Err(_) => {
                out.protocol_errors += 1;
                // The connection is in an unknown state; start fresh.
                client = None;
            }
        }
    }
    out
}

/// Deterministic synthetic input: finite, varied per (conn, request,
/// transform, point).
fn synth_inputs(spec: &LoadSpec, cid: usize, rid: usize) -> Vec<Vec<Cplx>> {
    let mut state = spec
        .seed
        .wrapping_add(cid as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rid as u64);
    let mut next_unit = || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        // Map the top bits into [-1, 1).
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..spec.batch)
        .map(|_| {
            (0..spec.n)
                .map(|_| Cplx::new(next_unit(), next_unit()))
                .collect()
        })
        .collect()
}

/// Percentile (nearest-rank) of a latency sample in microseconds.
/// Returns 0 on an empty sample.
pub fn percentile_us(latencies: &mut [u64], p: f64) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = (p.clamp(0.0, 100.0) / 100.0 * latencies.len() as f64).ceil();
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = (rank as usize).saturating_sub(1).min(latencies.len() - 1);
    latencies[idx]
}
