//! Wisdom: persisted tuning results, FFTW-style.
//!
//! The tuner's feedback loop (paper §2.3) is expensive relative to the
//! transforms a serving workload actually runs, so its output is worth
//! keeping. A wisdom file records, per `(n, threads, µ)` key, the
//! winning fully-expanded SPL formula as its ASCII rendering plus the
//! tuner's choice description and modeled cost. Formulas — not compiled
//! plans — are the unit of persistence: the ASCII form round-trips
//! through [`spiral_spl::parse`], stays human-diffable, and is
//! recompiled through the exact pipeline the tuner used
//! ([`Plan::from_formula`] + exchange fusion), so a loaded plan is the
//! same executable object a fresh tuning run would have produced.
//!
//! Wisdom is only valid on the host that produced it: the file embeds a
//! [`HostFingerprint`] and loading rejects the whole file when the
//! fingerprint disagrees with the current host (a plan tuned for
//! another µ or core count is silently wrong, not just slow). Individual
//! entries are re-validated on load — unparseable formulas, dimension
//! mismatches, failed lowering, and plans flagged by the
//! `spiral-verify` static analyzer are rejected entry-by-entry with a
//! recorded reason, and the rest of the file still loads.

use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;
use spiral_smp::topology::HostFingerprint;
use spiral_verify::certify::CertOptions;
use spiral_verify::{verify_plan, VerifyOptions};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the on-disk wisdom schema. Files with any other version
/// are discarded wholesale (with a reason in the [`LoadReport`]).
///
/// v2: entries record the short-vector backend width (`vec_width`) the
/// winning plan was tuned with, and loading rejects entries wider than
/// the host's detected SIMD width.
///
/// v3: entries record the worker-process count (`dist_procs`) of a
/// `dist(q)`-tagged winner (1 = single-process), the formula's ASCII
/// round-trips the `dist(q, ·)` tag, and the host fingerprint carries
/// its process budget — so wisdom tuned under one budget is re-keyed
/// (discarded wholesale) when the budget changes, and an individual
/// entry demanding more processes than this host's budget is rejected
/// as stale even in a hand-merged file.
pub const WISDOM_SCHEMA_VERSION: u64 = 3;

/// One persisted tuning result.
///
/// `threads` is the *request* key (what the service was asked to plan
/// for); `plan_threads` is what the stored formula actually compiles to
/// — they differ when the parallel search declined `n` (no admissible
/// split) and the tuner fell back to a sequential plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WisdomEntry {
    /// Transform size.
    pub n: u64,
    /// Requested thread count (cache key).
    pub threads: u64,
    /// Cache-line length in complex elements the plan was tuned for.
    pub mu: u64,
    /// Thread count to compile the formula with (≤ `threads`).
    pub plan_threads: u64,
    /// The winning formula, ASCII SPL (round-trips through `parse`).
    pub formula: String,
    /// The tuner's human-readable choice description.
    pub choice: String,
    /// Cost of the winner under the tuner's model.
    pub cost: f64,
    /// Short-vector lane width the winning plan executes with (ν);
    /// 1 = scalar backend. Entries wider than the loading host's
    /// detected SIMD width are stale and rejected on load.
    pub vec_width: u64,
    /// Worker-process count of a `dist(q)`-tagged winner; 1 = the plan
    /// runs in a single process. Entries demanding more processes than
    /// the loading host's budget are stale and rejected on load.
    pub dist_procs: u64,
}

/// The on-disk wisdom file: schema version, host identity, entries.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WisdomFile {
    /// Must equal [`WISDOM_SCHEMA_VERSION`].
    pub schema: u64,
    /// Host the entries were tuned on.
    pub host: HostFingerprint,
    /// Persisted tuning results, in insertion order.
    pub entries: Vec<WisdomEntry>,
}

/// A wisdom entry compiled back into an executable plan.
#[derive(Clone, Debug)]
pub struct CompiledEntry {
    /// The recompiled plan (shared with the service cache).
    pub plan: Arc<Plan>,
    /// ASCII SPL of the formula the plan was compiled from.
    pub formula: String,
    /// The tuner's choice description.
    pub choice: String,
    /// Cost under the tuner's model at tuning time.
    pub cost: f64,
}

/// An entry the loader refused, and why.
#[derive(Clone, Debug)]
pub struct RejectedEntry {
    /// Transform size of the offending entry.
    pub n: u64,
    /// Requested thread count of the offending entry.
    pub threads: u64,
    /// µ of the offending entry.
    pub mu: u64,
    /// Why it was rejected.
    pub reason: String,
}

/// What [`WisdomStore::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Entries that compiled and validated.
    pub loaded: usize,
    /// Entries rejected individually, with reasons.
    pub rejected: Vec<RejectedEntry>,
    /// Set when the whole file was discarded (missing is *not* a
    /// discard — a missing file is an empty store with no report line).
    pub discarded: Option<String>,
}

impl LoadReport {
    /// One-line human summary for logs.
    pub fn summary(&self) -> String {
        match &self.discarded {
            Some(reason) => format!("wisdom discarded: {reason}"),
            None => format!(
                "wisdom: {} entries loaded, {} rejected",
                self.loaded,
                self.rejected.len()
            ),
        }
    }
}

/// In-memory wisdom store bound to a file path and a host fingerprint.
pub struct WisdomStore {
    path: PathBuf,
    host: HostFingerprint,
    entries: HashMap<(usize, usize, usize), (WisdomEntry, CompiledEntry)>,
}

impl WisdomStore {
    /// Open (or start) the store at `path` for the current host.
    pub fn open(path: impl Into<PathBuf>) -> (WisdomStore, LoadReport) {
        WisdomStore::open_for_host(path, HostFingerprint::current())
    }

    /// Open (or start) the store at `path` for an explicit host
    /// fingerprint — the testable entry point for staleness handling.
    pub fn open_for_host(
        path: impl Into<PathBuf>,
        host: HostFingerprint,
    ) -> (WisdomStore, LoadReport) {
        let path = path.into();
        let mut store = WisdomStore {
            path,
            host,
            entries: HashMap::new(),
        };
        let mut report = LoadReport::default();
        let text = match std::fs::read_to_string(&store.path) {
            Ok(t) => t,
            // Missing file: a fresh store, not an error.
            Err(_) => return (store, report),
        };
        let file: WisdomFile = match serde_json::from_str(&text) {
            Ok(f) => f,
            Err(e) => {
                report.discarded = Some(format!("unparseable wisdom file: {e}"));
                return (store, report);
            }
        };
        if file.schema != WISDOM_SCHEMA_VERSION {
            report.discarded = Some(format!(
                "schema version {} (this build reads {})",
                file.schema, WISDOM_SCHEMA_VERSION
            ));
            return (store, report);
        }
        if file.host != store.host {
            report.discarded = Some(format!(
                "stale host fingerprint: file tuned on [{}], this host is [{}]",
                file.host.compact(),
                store.host.compact()
            ));
            return (store, report);
        }
        for entry in file.entries {
            // Entry-level staleness gate: a formula tuned with a wider
            // short-vector backend than this host can execute is wrong
            // to serve even when the rest of the fingerprint matches
            // (e.g. a hand-merged or edited wisdom file).
            if entry.vec_width > store.host.simd_width.max(1) {
                report.rejected.push(RejectedEntry {
                    n: entry.n,
                    threads: entry.threads,
                    mu: entry.mu,
                    reason: format!(
                        "stale host: entry tuned with vec({}) exceeds this host's SIMD width {}",
                        entry.vec_width, store.host.simd_width
                    ),
                });
                continue;
            }
            if entry.dist_procs.max(1) > store.host.process_budget.max(1) {
                report.rejected.push(RejectedEntry {
                    n: entry.n,
                    threads: entry.threads,
                    mu: entry.mu,
                    reason: format!(
                        "stale host: entry tuned as dist({}) exceeds this host's process budget {}",
                        entry.dist_procs, store.host.process_budget
                    ),
                });
                continue;
            }
            match compile_entry(&entry) {
                Ok(compiled) => {
                    store.entries.insert(entry_key(&entry), (entry, compiled));
                    report.loaded += 1;
                }
                Err(reason) => report.rejected.push(RejectedEntry {
                    n: entry.n,
                    threads: entry.threads,
                    mu: entry.mu,
                    reason,
                }),
            }
        }
        (store, report)
    }

    /// The path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of valid entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up the compiled plan for `(n, threads, µ)`.
    pub fn get(&self, n: usize, threads: usize, mu: usize) -> Option<&CompiledEntry> {
        self.entries.get(&(n, threads, mu)).map(|(_, c)| c)
    }

    /// Record a fresh tuning result under `(n, threads, µ)`. The caller
    /// supplies the already-compiled plan so the store never recompiles
    /// what the tuner just built.
    pub fn record(&mut self, entry: WisdomEntry, plan: Arc<Plan>) {
        let key = entry_key(&entry);
        let compiled = CompiledEntry {
            plan,
            formula: entry.formula.clone(),
            choice: entry.choice.clone(),
            cost: entry.cost,
        };
        self.entries.insert(key, (entry, compiled));
    }

    /// Write the store to its path as pretty JSON, creating parent
    /// directories as needed. Entries are sorted by key so the file is
    /// deterministic and diffable.
    ///
    /// The write is crash-safe: the JSON goes to a temporary file in the
    /// *same directory* (rename across filesystems is not atomic), is
    /// fsynced, and is then renamed over the target — so a crash or
    /// failure mid-save leaves the previous wisdom file intact, never a
    /// truncated one.
    pub fn save(&self) -> Result<(), String> {
        use std::io::Write as _;

        let mut entries: Vec<WisdomEntry> = self.entries.values().map(|(e, _)| e.clone()).collect();
        entries.sort_by_key(|e| (e.n, e.threads, e.mu));
        let file = WisdomFile {
            schema: WISDOM_SCHEMA_VERSION,
            host: self.host.clone(),
            entries,
        };
        let json = serde_json::to_string_pretty(&file)
            .map_err(|e| format!("wisdom serialization failed: {e}"))?;
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| {
                    format!("cannot create wisdom directory {}: {e}", dir.display())
                })?;
            }
        }
        let mut tmp_name = self.path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let write_result = (|| -> Result<(), String> {
            let mut f = std::fs::File::create(&tmp)
                .map_err(|e| format!("cannot create temp wisdom file {}: {e}", tmp.display()))?;
            #[cfg(feature = "faults")]
            if spiral_smp::faults::serve_at(
                spiral_smp::faults::ServeSite::WisdomSaveFail,
                self.entries.len(),
            ) {
                // Model a torn write: half the bytes land, then the
                // save "crashes". The target file must stay untouched.
                let half = &json.as_bytes()[..json.len() / 2];
                let _ = f.write_all(half);
                let _ = f.sync_all();
                return Err("injected wisdom save failure (torn write)".to_string());
            }
            f.write_all(json.as_bytes())
                .map_err(|e| format!("cannot write temp wisdom file {}: {e}", tmp.display()))?;
            f.sync_all()
                .map_err(|e| format!("cannot sync temp wisdom file {}: {e}", tmp.display()))?;
            Ok(())
        })();
        if let Err(e) = write_result {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!(
                "cannot rename {} over wisdom file {}: {e}",
                tmp.display(),
                self.path.display()
            )
        })
    }
}

/// Persisted wisdom fields are `u64` in the JSON schema; the sizes and
/// thread counts this workspace tunes always fit a `usize`.
fn field_usize(v: u64) -> usize {
    usize::try_from(v).expect("wisdom field fits usize")
}

/// In-memory store key for a persisted entry.
fn entry_key(entry: &WisdomEntry) -> (usize, usize, usize) {
    (
        field_usize(entry.n),
        field_usize(entry.threads),
        field_usize(entry.mu),
    )
}

/// Recompile a persisted entry through the tuner's own pipeline and
/// re-validate the result. Returns the rejection reason on any failure.
pub fn compile_entry(entry: &WisdomEntry) -> Result<CompiledEntry, String> {
    if !entry.cost.is_finite() || entry.cost < 0.0 {
        return Err(format!("non-finite or negative cost {}", entry.cost));
    }
    if entry.plan_threads == 0 || entry.plan_threads > entry.threads.max(1) {
        return Err(format!(
            "plan_threads {} outside 1..={}",
            entry.plan_threads,
            entry.threads.max(1)
        ));
    }
    let formula =
        spiral_spl::parse(&entry.formula).map_err(|e| format!("formula does not parse: {e}"))?;
    if formula.dim() != field_usize(entry.n) {
        return Err(format!(
            "formula dimension {} disagrees with entry size {}",
            formula.dim(),
            entry.n
        ));
    }
    let plan_threads = field_usize(entry.plan_threads);
    let plan = Plan::from_formula(&formula, plan_threads, field_usize(entry.mu))
        .map_err(|e| format!("formula fails to lower: {e}"))?;
    // Same post-pass the tuner applies to parallel winners.
    let plan = if plan_threads > 1 {
        plan.fuse_exchanges()
    } else {
        plan
    };
    if entry.vec_width.max(1) != plan.vec_width.max(1) as u64 {
        return Err(format!(
            "recorded vec_width {} disagrees with the recompiled plan's vec({})",
            entry.vec_width, plan.vec_width
        ));
    }
    if entry.dist_procs.max(1) != plan.dist_procs.max(1) as u64 {
        return Err(format!(
            "recorded dist_procs {} disagrees with the recompiled plan's dist({})",
            entry.dist_procs, plan.dist_procs
        ));
    }
    let report = verify_plan(&plan, &VerifyOptions::default());
    if report.has_errors() {
        return Err(format!(
            "static verification rejected the recompiled plan: {}",
            report
                .diagnostics
                .iter()
                .map(|d| d.detail.as_str())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    // Re-certify: a wisdom file is untrusted input, so each entry must
    // re-prove its dataflow discipline — and, at certifiable sizes, its
    // exact equality with DFT_n — before the server will execute it.
    let cert = spiral_verify::certify::certify_plan(&plan, &CertOptions::default());
    if !cert.is_certified() {
        return Err(format!(
            "certification rejected the recompiled plan: {}",
            cert.findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    Ok(CompiledEntry {
        plan: Arc::new(plan),
        formula: entry.formula.clone(),
        choice: entry.choice.clone(),
        cost: entry.cost,
    })
}
