//! Live serving telemetry: the serve-tier metric layout over
//! [`spiral_trace::metrics`].
//!
//! The design splits the metric set by *where the truth lives*:
//!
//! * **Counters are views.** [`crate::overload::ServeCounters`] is
//!   already the exact accounting surface (the chaos suite proves its
//!   conservation law at drain), so the metrics snapshot does not keep a
//!   second set of increments that could drift — it *reads* the same
//!   atomics at snapshot time. `metrics == DrainReport` is then an
//!   identity by construction, and the invariant test in
//!   `tests/metrics.rs` pins it.
//! * **Gauges are views too.** Queue depths and the degraded flag are
//!   point-in-time reads of live structures; sampling them at snapshot
//!   time costs the hot path nothing.
//! * **Histograms are recorded.** Per-phase latencies (parse,
//!   conn-queue wait, exec-queue wait, pool execute, end-to-end) and the
//!   coalesce-size distribution only exist if the hot path records them,
//!   so they live in a [`MetricsRegistry`] of cache-line-padded,
//!   single-writer-sharded log-linear histograms — and they compile out
//!   *structurally* when the `trace` feature is off: a default build has
//!   no histogram storage and no recording calls, only the snapshot-time
//!   counter/gauge views.
//!
//! The same feature gates the [`FlightRecorder`]: always-on bounded
//! timeline rings that every served request and pool dispatch writes
//! through, exported as Perfetto JSON on the first SLO breach or on an
//! `SS01 dump` request.

use crate::overload::CounterSnapshot;
use spiral_trace::metrics::{CounterSample, GaugeSample, MetricsSnapshot};
use std::time::Duration;

#[cfg(feature = "trace")]
use spiral_trace::metrics::{MetricKind, MetricSpec, MetricsRegistry};
#[cfg(feature = "trace")]
use spiral_trace::FlightRecorder;

/// Time from the first byte of a request frame to its decoded form.
pub const PARSE_SECONDS: &str = "serve_parse_seconds";
/// Time a connection waited in the accept backlog before a worker took it.
pub const CONN_QUEUE_WAIT_SECONDS: &str = "serve_conn_queue_wait_seconds";
/// Time an admitted request waited in the execution queue.
pub const EXEC_QUEUE_WAIT_SECONDS: &str = "serve_exec_queue_wait_seconds";
/// Requests riding one execution dispatch (1 = no coalescing).
pub const COALESCE_SIZE: &str = "serve_coalesce_size";
/// Time one coalesced group spent in the plan executor / thread pool.
pub const POOL_EXECUTE_SECONDS: &str = "serve_pool_execute_seconds";
/// End-to-end request latency, arrival through response encode.
pub const REQUEST_SECONDS: &str = "serve_request_seconds";

#[cfg(feature = "trace")]
static HISTOGRAM_SPECS: &[MetricSpec] = &[
    MetricSpec {
        name: PARSE_SECONDS,
        help: "Time to read and decode one request frame off the socket",
        kind: MetricKind::Histogram,
    },
    MetricSpec {
        name: CONN_QUEUE_WAIT_SECONDS,
        help: "Time an accepted connection waited for a worker",
        kind: MetricKind::Histogram,
    },
    MetricSpec {
        name: EXEC_QUEUE_WAIT_SECONDS,
        help: "Time an admitted request waited for the dispatcher",
        kind: MetricKind::Histogram,
    },
    MetricSpec {
        name: COALESCE_SIZE,
        help: "Requests coalesced into one execution dispatch",
        kind: MetricKind::Histogram,
    },
    MetricSpec {
        name: POOL_EXECUTE_SECONDS,
        help: "Pool execution time of one coalesced dispatch",
        kind: MetricKind::Histogram,
    },
    MetricSpec {
        name: REQUEST_SECONDS,
        help: "End-to-end served request latency",
        kind: MetricKind::Histogram,
    },
];

/// One counter exposed as a snapshot-time view over [`CounterSnapshot`].
struct CounterView {
    name: &'static str,
    help: &'static str,
    read: fn(&CounterSnapshot) -> u64,
}

static COUNTER_VIEWS: &[CounterView] = &[
    CounterView {
        name: "serve_requests_total",
        help: "Well-formed request frames read off connections",
        read: |c| c.requests,
    },
    CounterView {
        name: "serve_ok_total",
        help: "Requests answered Ok",
        read: |c| c.ok,
    },
    CounterView {
        name: "serve_overloaded_total",
        help: "Requests answered Overloaded (admission rejection)",
        read: |c| c.overloaded,
    },
    CounterView {
        name: "serve_expired_total",
        help: "Requests answered Expired (deadline passed)",
        read: |c| c.expired,
    },
    CounterView {
        name: "serve_errors_total",
        help: "Requests answered Error (admitted, then failed)",
        read: |c| c.errors,
    },
    CounterView {
        name: "serve_shed_expired_total",
        help: "Expired requests shed without executing",
        read: |c| c.shed_expired,
    },
    CounterView {
        name: "serve_coalesced_total",
        help: "Requests that rode another request's dispatch",
        read: |c| c.coalesced,
    },
    CounterView {
        name: "serve_dispatches_total",
        help: "Execution dispatches performed",
        read: |c| c.dispatches,
    },
    CounterView {
        name: "serve_degraded_dispatches_total",
        help: "Dispatches served on the degraded sequential path",
        read: |c| c.degraded_dispatches,
    },
    CounterView {
        name: "serve_protocol_errors_total",
        help: "Connections dropped for protocol violations",
        read: |c| c.protocol_errors,
    },
    CounterView {
        name: "serve_conns_accepted_total",
        help: "Connections accepted into a worker",
        read: |c| c.conns_accepted,
    },
    CounterView {
        name: "serve_conns_rejected_total",
        help: "Connections turned away at the accept loop",
        read: |c| c.conns_rejected,
    },
];

/// Point-in-time gauge readings sampled by the caller at snapshot time.
#[derive(Clone, Copy, Debug, Default)]
pub struct GaugeReadings {
    /// Current depth of the accepted-connection queue.
    pub conn_queue_depth: u64,
    /// Current depth of the execution queue.
    pub exec_queue_depth: u64,
    /// Whether the server is in degraded (sequential) mode.
    pub degraded: bool,
}

/// The serving tier's metric surface: histogram registry and flight
/// recorder under the `trace` feature, counter/gauge views always.
pub struct ServeMetrics {
    /// Histogram writer lanes: worker `wid` records on lane `wid`, the
    /// dispatcher on lane `writers - 1`.
    writers: usize,
    #[cfg(feature = "trace")]
    registry: MetricsRegistry,
    #[cfg(feature = "trace")]
    recorder: FlightRecorder,
}

impl ServeMetrics {
    /// Metric surface for a server with `workers` connection workers
    /// (one extra writer lane for the dispatcher).
    pub fn new(workers: usize) -> ServeMetrics {
        let writers = workers + 1;
        ServeMetrics {
            writers,
            #[cfg(feature = "trace")]
            registry: MetricsRegistry::new(HISTOGRAM_SPECS, writers)
                .expect("serve histogram layout is valid"),
            #[cfg(feature = "trace")]
            recorder: FlightRecorder::new(writers),
        }
    }

    /// The dispatcher's writer lane (workers use their own index).
    pub fn dispatcher_lane(&self) -> usize {
        self.writers - 1
    }

    /// The flight recorder (always-on bounded timeline rings).
    #[cfg(feature = "trace")]
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Record one phase duration into histogram `name` on `writer`'s
    /// lane. Compiles to nothing without the `trace` feature.
    pub fn record(&self, name: &str, writer: usize, d: Duration) {
        #[cfg(feature = "trace")]
        self.registry.histogram(name).record_duration(writer, d);
        #[cfg(not(feature = "trace"))]
        let _ = (name, writer, d);
    }

    /// Record a dimensionless value (coalesce group size) into histogram
    /// `name`. Compiles to nothing without the `trace` feature.
    pub fn record_size(&self, name: &str, writer: usize, value: u64) {
        #[cfg(feature = "trace")]
        self.registry.histogram(name).record(writer, value);
        #[cfg(not(feature = "trace"))]
        let _ = (name, writer, value);
    }

    /// Build the full snapshot: counter views over `counters`, gauge
    /// views over `gauges`, histogram snapshots from the registry (empty
    /// without the `trace` feature).
    pub fn snapshot(&self, counters: &CounterSnapshot, gauges: &GaugeReadings) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for v in COUNTER_VIEWS {
            snap.counters.push(CounterSample {
                name: v.name.to_string(),
                help: v.help.to_string(),
                value: (v.read)(counters),
            });
        }
        snap.counters.push(CounterSample {
            name: "serve_slo_breaches_total".to_string(),
            help: "SLO breaches recorded by the flight recorder".to_string(),
            value: self.breaches(),
        });
        snap.gauges.push(GaugeSample {
            name: "serve_conn_queue_depth".to_string(),
            help: "Current depth of the accepted-connection queue".to_string(),
            value: gauges.conn_queue_depth,
        });
        snap.gauges.push(GaugeSample {
            name: "serve_exec_queue_depth".to_string(),
            help: "Current depth of the execution queue".to_string(),
            value: gauges.exec_queue_depth,
        });
        snap.gauges.push(GaugeSample {
            name: "serve_degraded".to_string(),
            help: "1 once a runtime fault flipped the server to the sequential path".to_string(),
            value: u64::from(gauges.degraded),
        });
        snap.gauges.push(GaugeSample {
            name: "serve_recorder_dropped_events".to_string(),
            help: "Timeline events lost to flight-recorder ring wrap".to_string(),
            value: self.recorder_dropped(),
        });
        #[cfg(feature = "trace")]
        {
            snap.histograms = self.registry.snapshot().histograms;
        }
        snap
    }

    /// SLO breaches recorded so far (0 without the `trace` feature).
    pub fn breaches(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.recorder.breaches()
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Flight-recorder ring-wrap losses (0 without the `trace` feature).
    pub fn recorder_dropped(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.recorder.dropped_events()
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Flight-recorder export: Perfetto JSON of the recent past. Without
    /// the `trace` feature there are no rings, so the export is an empty
    /// (but valid) trace document.
    pub fn dump(&self) -> String {
        #[cfg(feature = "trace")]
        {
            self.recorder.dump()
        }
        #[cfg(not(feature = "trace"))]
        {
            "{\n  \"traceEvents\": []\n}".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_trace::metrics::lint_prometheus;

    fn sample_counters() -> CounterSnapshot {
        CounterSnapshot {
            conns_accepted: 4,
            conns_rejected: 1,
            requests: 10,
            ok: 7,
            overloaded: 1,
            expired: 1,
            errors: 1,
            shed_expired: 1,
            coalesced: 2,
            dispatches: 5,
            degraded_dispatches: 0,
            protocol_errors: 3,
        }
    }

    #[test]
    fn snapshot_mirrors_counter_views_exactly() {
        let m = ServeMetrics::new(2);
        let snap = m.snapshot(&sample_counters(), &GaugeReadings::default());
        assert_eq!(snap.counter("serve_requests_total"), Some(10));
        assert_eq!(snap.counter("serve_ok_total"), Some(7));
        assert_eq!(snap.counter("serve_overloaded_total"), Some(1));
        assert_eq!(snap.counter("serve_expired_total"), Some(1));
        assert_eq!(snap.counter("serve_errors_total"), Some(1));
        assert_eq!(snap.counter("serve_protocol_errors_total"), Some(3));
        // The conservation law holds inside the snapshot because the
        // counters are views over one accounting surface.
        assert_eq!(
            snap.counter("serve_requests_total").unwrap(),
            snap.counter("serve_ok_total").unwrap()
                + snap.counter("serve_overloaded_total").unwrap()
                + snap.counter("serve_expired_total").unwrap()
                + snap.counter("serve_errors_total").unwrap()
        );
    }

    #[test]
    fn gauges_reflect_readings() {
        let m = ServeMetrics::new(1);
        let snap = m.snapshot(
            &sample_counters(),
            &GaugeReadings {
                conn_queue_depth: 3,
                exec_queue_depth: 9,
                degraded: true,
            },
        );
        assert_eq!(snap.gauge("serve_conn_queue_depth"), Some(3));
        assert_eq!(snap.gauge("serve_exec_queue_depth"), Some(9));
        assert_eq!(snap.gauge("serve_degraded"), Some(1));
        assert_eq!(snap.gauge("serve_recorder_dropped_events"), Some(0));
    }

    #[test]
    fn prometheus_exposition_lints_clean() {
        let m = ServeMetrics::new(2);
        m.record(REQUEST_SECONDS, 0, Duration::from_micros(120));
        m.record(PARSE_SECONDS, 1, Duration::from_micros(4));
        m.record_size(COALESCE_SIZE, m.dispatcher_lane(), 3);
        let snap = m.snapshot(&sample_counters(), &GaugeReadings::default());
        lint_prometheus(&snap.to_prometheus()).expect("serve exposition lints clean");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn recorded_phases_appear_in_histograms() {
        let m = ServeMetrics::new(2);
        for w in 0..2 {
            m.record(REQUEST_SECONDS, w, Duration::from_micros(100 + w as u64));
        }
        let snap = m.snapshot(&sample_counters(), &GaugeReadings::default());
        let h = snap.histogram(REQUEST_SECONDS).expect("present");
        assert_eq!(h.count, 2);
        h.validate().expect("valid layout");
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn default_build_has_no_histograms() {
        let m = ServeMetrics::new(2);
        m.record(REQUEST_SECONDS, 0, Duration::from_micros(100));
        let snap = m.snapshot(&sample_counters(), &GaugeReadings::default());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn json_snapshot_roundtrips() {
        let m = ServeMetrics::new(1);
        m.record(REQUEST_SECONDS, 0, Duration::from_micros(50));
        let snap = m.snapshot(&sample_counters(), &GaugeReadings::default());
        let back = MetricsSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
    }
}
