//! Admission control primitives: bounded queues and request accounting.
//!
//! The overload policy of the serving tier is *reject, don't buffer*:
//! every queue between the accept loop and the execution dispatcher has
//! a hard capacity, a full queue turns the offered work away with a
//! typed `Overloaded` response, and the high-water mark of every queue
//! is observable so tests can assert the bound actually held. This is
//! the classic load-shedding argument — an unbounded queue converts
//! overload into unbounded latency for *everyone*, while a bounded one
//! converts it into fast rejection for the marginal request — applied
//! to a transform server whose work items carry deadlines and are
//! therefore worthless once stale.
//!
//! [`ServeCounters`] is the single accounting surface: one increment of
//! exactly one terminal counter (`ok` / `overloaded` / `expired` /
//! `errors`) per admitted request is the invariant the chaos suite
//! checks via [`CounterSnapshot::accounted`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Outcome of a non-blocking [`BoundedQueue::push`].
#[derive(Debug)]
pub enum Push<T> {
    /// The item is queued.
    Accepted,
    /// The queue is at capacity; the item comes back to the caller.
    Full(T),
    /// The queue is closed (server draining); the item comes back.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A close-able MPMC queue with a hard capacity and a depth watermark.
///
/// `push` never blocks (admission control decides *now*); `pop` blocks
/// until an item arrives or the queue is closed *and* drained — so a
/// graceful shutdown is `close()` followed by joining the consumers.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    cap: usize,
    max_depth: AtomicU64,
}

impl<T> BoundedQueue<T> {
    /// An empty queue with capacity `cap` (≥ 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
            max_depth: AtomicU64::new(0),
        }
    }

    /// Offer an item without blocking.
    pub fn push(&self, item: T) -> Push<T> {
        let mut inner = lock_q(&self.inner);
        if inner.closed {
            return Push::Closed(item);
        }
        if inner.items.len() >= self.cap {
            return Push::Full(item);
        }
        inner.items.push_back(item);
        let depth = inner.items.len() as u64;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
        drop(inner);
        self.ready.notify_one();
        Push::Accepted
    }

    /// Take the oldest item, blocking while the queue is open and
    /// empty. `None` means closed *and* drained — the consumer's exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = lock_q(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Remove up to `limit` queued items satisfying `pred`, preserving
    /// the order of the rest. Used by the dispatcher to coalesce
    /// same-size work waiting behind the item it just popped.
    pub fn drain_matching(&self, mut pred: impl FnMut(&T) -> bool, limit: usize) -> Vec<T> {
        let mut inner = lock_q(&self.inner);
        let mut taken = Vec::new();
        let mut rest = VecDeque::with_capacity(inner.items.len());
        while let Some(item) = inner.items.pop_front() {
            if taken.len() < limit && pred(&item) {
                taken.push(item);
            } else {
                rest.push_back(item);
            }
        }
        inner.items = rest;
        taken
    }

    /// Close the queue: future pushes return [`Push::Closed`], blocked
    /// consumers drain the backlog and then receive `None`.
    pub fn close(&self) {
        lock_q(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Current queue depth.
    pub fn depth(&self) -> usize {
        lock_q(&self.inner).items.len()
    }

    /// Highest depth ever observed (the bound the chaos suite checks).
    pub fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

fn lock_q<'a, T>(m: &'a Mutex<QueueInner<T>>) -> std::sync::MutexGuard<'a, QueueInner<T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The server's accounting surface, all monotonic.
#[derive(Default)]
pub struct ServeCounters {
    /// Connections accepted into a worker.
    pub conns_accepted: AtomicU64,
    /// Connections turned away at the accept loop (backlog full).
    pub conns_rejected: AtomicU64,
    /// Well-formed request frames read off connections.
    pub requests: AtomicU64,
    /// Requests answered `Ok`.
    pub ok: AtomicU64,
    /// Requests answered `Overloaded` (admission rejection).
    pub overloaded: AtomicU64,
    /// Requests answered `Expired` (deadline passed before execution).
    pub expired: AtomicU64,
    /// Requests answered `Error` (admitted, then failed).
    pub errors: AtomicU64,
    /// Subset of `expired` shed without executing (pre-queue or
    /// pre-dispatch).
    pub shed_expired: AtomicU64,
    /// Requests that rode another request's dispatch (coalescing).
    pub coalesced: AtomicU64,
    /// Execution dispatches performed.
    pub dispatches: AtomicU64,
    /// Dispatches served on the degraded (sequential) path.
    pub degraded_dispatches: AtomicU64,
    /// Connections dropped for protocol violations (torn/stalled/bad
    /// frames) or failed response writes.
    pub protocol_errors: AtomicU64,
}

/// A point-in-time copy of [`ServeCounters`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Connections accepted into a worker.
    pub conns_accepted: u64,
    /// Connections turned away at the accept loop.
    pub conns_rejected: u64,
    /// Well-formed request frames read.
    pub requests: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Overloaded` responses.
    pub overloaded: u64,
    /// `Expired` responses.
    pub expired: u64,
    /// `Error` responses.
    pub errors: u64,
    /// Expired requests shed without executing.
    pub shed_expired: u64,
    /// Requests coalesced into another dispatch.
    pub coalesced: u64,
    /// Execution dispatches.
    pub dispatches: u64,
    /// Degraded (sequential-path) dispatches.
    pub degraded_dispatches: u64,
    /// Protocol-violation connection drops.
    pub protocol_errors: u64,
}

impl ServeCounters {
    /// Copy every counter at once.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed_expired: self.shed_expired.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            dispatches: self.dispatches.load(Ordering::Relaxed),
            degraded_dispatches: self.degraded_dispatches.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

impl CounterSnapshot {
    /// The conservation law: every request read off a connection ends
    /// in exactly one terminal state. Only meaningful once the server
    /// has drained (no in-flight work).
    pub fn accounted(&self) -> bool {
        self.requests == self.ok + self.overloaded + self.expired + self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_rejects_at_capacity_and_returns_item() {
        let q = BoundedQueue::new(2);
        assert!(matches!(q.push(1), Push::Accepted));
        assert!(matches!(q.push(2), Push::Accepted));
        match q.push(3) {
            Push::Full(item) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_drains_then_signals_consumers() {
        let q = Arc::new(BoundedQueue::new(4));
        assert!(matches!(q.push(10), Push::Accepted));
        q.close();
        match q.push(11) {
            Push::Closed(item) => assert_eq!(item, 11),
            other => panic!("expected Closed, got {other:?}"),
        }
        // The backlog survives the close…
        assert_eq!(q.pop(), Some(10));
        // …and only then does the consumer see the exit signal.
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(matches!(q.push(7), Push::Accepted));
        assert_eq!(consumer.join().expect("consumer exits"), Some(7));
    }

    #[test]
    fn drain_matching_respects_limit_and_order() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            assert!(matches!(q.push(i), Push::Accepted));
        }
        let evens = q.drain_matching(|i| i % 2 == 0, 2);
        assert_eq!(evens, vec![0, 2]);
        // 4 missed the limit and stays queued, in order.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(5));
    }

    #[test]
    fn snapshot_conservation_law() {
        let c = ServeCounters::default();
        c.requests.fetch_add(5, Ordering::Relaxed);
        c.ok.fetch_add(3, Ordering::Relaxed);
        c.overloaded.fetch_add(1, Ordering::Relaxed);
        c.expired.fetch_add(1, Ordering::Relaxed);
        assert!(c.snapshot().accounted());
        c.requests.fetch_add(1, Ordering::Relaxed);
        assert!(!c.snapshot().accounted());
    }
}
