//! The plan service: a concurrent, wisdom-backed plan cache in front of
//! the batch executor.
//!
//! Read path: plan lookup is a sharded read-mostly cache
//! (`RwLock<HashMap>` per shard, shard chosen by key hash), so warm
//! requests from many threads never contend on a single lock.
//!
//! Miss path: cold keys go through a **single-flight** slot — under
//! concurrent requests for the same uncached key, exactly one caller
//! (the leader) consults the wisdom store and, only if wisdom has
//! nothing, runs the tuner; every other caller blocks on the flight's
//! condvar and receives the leader's result. The
//! [`tuner_invocations`](PlanService::tuner_invocations) counter is
//! incremented only on the tuner path, so "warm wisdom serves with zero
//! tuner invocations" is an *observable* invariant, not a hope.
//!
//! Execution: the pool behind [`BatchExecutor`] (and the stage
//! executor) is not safe for concurrent dispatch, so execution is
//! serialized behind a mutex while planning stays concurrent. Serving
//! throughput comes from batching — one pool dispatch per batch — not
//! from dispatching many transforms' pools at once.

use crate::wisdom::{LoadReport, WisdomEntry, WisdomStore};
use spiral_codegen::plan::Plan;
use spiral_codegen::{BatchExecutor, ParallelExecutor};
use spiral_dist::{DistConfig, DistError, DistExecutor, DistShutdownReport};
use spiral_search::{CostModel, Tuner};
use spiral_smp::error::SpiralError;
use spiral_spl::cplx::Cplx;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Where a served plan came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Recompiled from the wisdom store (no tuner run).
    Wisdom,
    /// Produced by a fresh tuner run this session.
    Tuned,
}

/// A cached, ready-to-execute plan plus its provenance.
pub struct ServedPlan {
    /// The compiled plan.
    pub plan: Arc<Plan>,
    /// ASCII SPL of the winning formula (round-trips through `parse`);
    /// the dist router re-tags this to build the fleet's plan.
    pub formula: String,
    /// The tuner's choice description.
    pub choice: String,
    /// Cost under the tuner's model.
    pub cost: f64,
    /// Whether it came from wisdom or a fresh tuner run.
    pub source: PlanSource,
}

/// When and how the service routes transforms to a worker-process
/// fleet. The default service has no policy and never spawns a process.
#[derive(Clone, Copy, Debug)]
pub struct DistPolicy {
    /// Host process budget: the largest fleet the service may spawn.
    /// Routing is enabled only when this is ≥ 2.
    pub budget: usize,
    /// Smallest transform worth a fleet; requests below it always run
    /// in-process.
    pub min_n: usize,
}

/// One cached fleet, bound to the current hot size. `exec: None`
/// records a failed construction attempt for that size so a missing
/// worker binary or unshardable formula is paid once, not per request.
struct FleetSlot {
    n: usize,
    exec: Option<DistExecutor>,
}

/// Single-flight slot: the leader publishes its result here and wakes
/// every follower waiting on the condvar.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<Result<Arc<ServedPlan>, SpiralError>>>,
    cv: Condvar,
}

type Key = (usize, usize); // (n, requested threads)
type Shard = RwLock<HashMap<Key, Arc<ServedPlan>>>;

/// Wisdom-backed plan service; see the module docs for the design.
pub struct PlanService {
    threads: usize,
    mu: usize,
    shards: Vec<Shard>,
    inflight: Mutex<HashMap<Key, Arc<Flight>>>,
    wisdom: Option<Mutex<WisdomStore>>,
    batch: Mutex<BatchExecutor>,
    stage_exec: Mutex<ParallelExecutor>,
    dist: Option<DistPolicy>,
    fleet: Mutex<Option<FleetSlot>>,
    tuner_invocations: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    wisdom_save_failures: AtomicU64,
    dist_served: AtomicU64,
    dist_fallbacks: AtomicU64,
}

/// Shard count: small power of two, plenty for read-mostly traffic.
const SHARDS: usize = 8;

impl PlanService {
    /// Service for `threads` workers and cache-line length `µ`, with no
    /// wisdom persistence.
    pub fn new(threads: usize, mu: usize) -> PlanService {
        PlanService::build(threads, mu, None)
    }

    /// Service backed by the wisdom file at `path` (loaded now, saved
    /// after every fresh tuning). Returns the load report alongside.
    pub fn with_wisdom(
        threads: usize,
        mu: usize,
        path: impl Into<PathBuf>,
    ) -> (PlanService, LoadReport) {
        let (store, report) = WisdomStore::open(path);
        (PlanService::build(threads, mu, Some(store)), report)
    }

    fn build(threads: usize, mu: usize, wisdom: Option<WisdomStore>) -> PlanService {
        let threads = threads.max(1);
        PlanService {
            threads,
            mu: mu.max(1),
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            inflight: Mutex::new(HashMap::new()),
            wisdom: wisdom.map(Mutex::new),
            batch: Mutex::new(BatchExecutor::new(threads)),
            stage_exec: Mutex::new(ParallelExecutor::with_auto_barrier(threads)),
            dist: None,
            fleet: Mutex::new(None),
            tuner_invocations: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            wisdom_save_failures: AtomicU64::new(0),
            dist_served: AtomicU64::new(0),
            dist_fallbacks: AtomicU64::new(0),
        }
    }

    /// Enable fleet routing under `policy` (consuming builder). A
    /// budget below 2 leaves the policy inert; the routing itself is
    /// best-effort — any failure to build or run the fleet falls back
    /// to in-process execution and counts in
    /// [`dist_fallbacks`](Self::dist_fallbacks).
    pub fn with_dist(mut self, policy: DistPolicy) -> PlanService {
        self.dist = Some(policy);
        self
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache-line length in complex elements.
    pub fn mu(&self) -> usize {
        self.mu
    }

    /// How many times the tuner actually ran (the single-flight miss
    /// path with no wisdom hit). A warm service stays at zero.
    pub fn tuner_invocations(&self) -> u64 {
        self.tuner_invocations.load(Ordering::Relaxed)
    }

    /// Cache hits (requests answered from the in-memory cache).
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses (requests that entered the single-flight path).
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Failed wisdom writes (the service keeps serving through them).
    pub fn wisdom_save_failures(&self) -> u64 {
        self.wisdom_save_failures.load(Ordering::Relaxed)
    }

    /// Requests answered by the worker-process fleet.
    pub fn dist_served(&self) -> u64 {
        self.dist_served.load(Ordering::Relaxed)
    }

    /// Fleet-eligible requests that fell back to in-process execution
    /// (missing worker binary, unshardable formula, fleet failure).
    pub fn dist_fallbacks(&self) -> u64 {
        self.dist_fallbacks.load(Ordering::Relaxed)
    }

    /// Whether a live fleet is currently attached to the service.
    pub fn dist_active(&self) -> bool {
        self.fleet
            .lock()
            .unwrap()
            .as_ref()
            .is_some_and(|s| s.exec.is_some())
    }

    /// Tear down the fleet (if any) now, reaping every worker, and
    /// return the shutdown report with its exact shard accounting.
    /// Serving continues in-process; the next eligible request respawns.
    pub fn shutdown_fleet(&self) -> Option<DistShutdownReport> {
        let slot = self.fleet.lock().unwrap().take()?;
        slot.exec.map(DistExecutor::shutdown)
    }

    /// Number of distinct plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.shards.iter().map(|s| s.read().unwrap().len()).sum()
    }

    /// Persist the wisdom store now. No-op without a wisdom path.
    pub fn save_wisdom(&self) -> Result<(), String> {
        match &self.wisdom {
            Some(w) => w.lock().unwrap().save(),
            None => Ok(()),
        }
    }

    /// The plan the service would run for one size-`n` transform at the
    /// service's thread count (parallel when the multicore rewrite
    /// admits `n`, sequential otherwise). Cached; cold keys tune once.
    pub fn plan(&self, n: usize) -> Result<Arc<ServedPlan>, SpiralError> {
        self.plan_for(n, self.threads)
    }

    /// The sequential plan used as the per-transform kernel of batched
    /// execution. Cached under its own key; cold keys tune once.
    pub fn sequential_plan(&self, n: usize) -> Result<Arc<ServedPlan>, SpiralError> {
        self.plan_for(n, 1)
    }

    /// Execute one size-`n` transform with the service-threads plan.
    /// When a [`DistPolicy`] is attached and `n` clears its floor, the
    /// request is routed to the worker-process fleet first; in-process
    /// execution is the fallback for everything the fleet cannot serve.
    pub fn serve_one(&self, n: usize, x: &[Cplx]) -> Result<Vec<Cplx>, SpiralError> {
        let served = self.plan(n)?;
        if let Some(out) = self.try_serve_dist(n, &served, x) {
            return Ok(out);
        }
        if served.plan.threads > 1 {
            self.stage_exec.lock().unwrap().try_execute(&served.plan, x)
        } else {
            let mut out = vec![Cplx::ZERO; n];
            served
                .plan
                .execute_into(x, &mut out, &mut Default::default());
            Ok(out)
        }
    }

    /// Execute a batch of independent size-`n` transforms: sequential
    /// per-transform plans partitioned across the pool by batch index,
    /// one pool dispatch for the whole batch.
    pub fn serve_batch(
        &self,
        n: usize,
        inputs: &[Vec<Cplx>],
    ) -> Result<Vec<Vec<Cplx>>, SpiralError> {
        let served = self.sequential_plan(n)?;
        self.batch
            .lock()
            .unwrap()
            .try_execute_batch(&served.plan, inputs)
    }

    fn plan_for(&self, n: usize, threads: usize) -> Result<Arc<ServedPlan>, SpiralError> {
        let key: Key = (n, threads);
        let shard = &self.shards[shard_index(key, self.shards.len())];
        if let Some(p) = shard.read().unwrap().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let flight = {
            let mut inflight = self.inflight.lock().unwrap();
            // Double-check under the inflight lock: a leader may have
            // published between our read miss and here.
            if let Some(p) = shard.read().unwrap().get(&key) {
                return Ok(p.clone());
            }
            match inflight.get(&key) {
                Some(f) => {
                    // Follower: wait for the leader's published result.
                    let f = f.clone();
                    drop(inflight);
                    let mut done = f.done.lock().unwrap();
                    while done.is_none() {
                        done = f.cv.wait(done).unwrap();
                    }
                    return done.clone().unwrap();
                }
                None => {
                    let f = Arc::new(Flight::default());
                    inflight.insert(key, f.clone());
                    f
                }
            }
        };
        // Leader: produce outside any lock, publish, then clear the slot.
        let result = self.produce(n, threads);
        if let Ok(p) = &result {
            shard.write().unwrap().insert(key, p.clone());
        }
        *flight.done.lock().unwrap() = Some(result.clone());
        flight.cv.notify_all();
        self.inflight.lock().unwrap().remove(&key);
        result
    }

    /// Wisdom lookup, else tune (counted), recording fresh results back
    /// into wisdom and saving eagerly.
    fn produce(&self, n: usize, threads: usize) -> Result<Arc<ServedPlan>, SpiralError> {
        if let Some(w) = &self.wisdom {
            if let Some(hit) = w.lock().unwrap().get(n, threads, self.mu) {
                return Ok(Arc::new(ServedPlan {
                    plan: hit.plan.clone(),
                    formula: hit.formula.clone(),
                    choice: hit.choice.clone(),
                    cost: hit.cost,
                    source: PlanSource::Wisdom,
                }));
            }
        }
        self.tuner_invocations.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "faults")]
        if spiral_smp::faults::serve_at(spiral_smp::faults::ServeSite::TunerFail, n) {
            return Err(SpiralError::Search(format!(
                "injected tuner failure for n={n}"
            )));
        }
        let tuner = Tuner::new(threads, self.mu, CostModel::Analytic);
        let tuned = if threads == 1 {
            tuner.tune_sequential(n)?
        } else {
            match tuner.tune_parallel(n)? {
                Some(t) => t,
                // (pµ)² ∤ n or every candidate quarantined: serve the
                // best sequential plan under the parallel key.
                None => tuner.tune_sequential(n)?,
            }
        };
        let plan = Arc::new(tuned.plan);
        if let Some(w) = &self.wisdom {
            let mut store = w.lock().unwrap();
            store.record(
                WisdomEntry {
                    n: n as u64,
                    threads: threads as u64,
                    mu: self.mu as u64,
                    plan_threads: plan.threads.max(1) as u64,
                    formula: tuned.formula.to_string(),
                    choice: tuned.choice.clone(),
                    cost: tuned.cost,
                    vec_width: plan.vec_width.max(1) as u64,
                    dist_procs: plan.dist_procs.max(1) as u64,
                },
                plan.clone(),
            );
            if let Err(_e) = store.save() {
                self.wisdom_save_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(Arc::new(ServedPlan {
            plan,
            formula: tuned.formula.to_string(),
            choice: tuned.choice,
            cost: tuned.cost,
            source: PlanSource::Tuned,
        }))
    }

    /// Fleet routing gate: `Some(out)` when the fleet served the
    /// request, `None` (counted as a fallback when the request was
    /// eligible) to let the caller run in-process.
    fn try_serve_dist(&self, n: usize, served: &ServedPlan, x: &[Cplx]) -> Option<Vec<Cplx>> {
        let policy = self.dist?;
        if policy.budget < 2 || n < policy.min_n {
            return None;
        }
        match self.dist_execute(n, served, policy, x) {
            Some(out) => {
                self.dist_served.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            None => {
                self.dist_fallbacks.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn dist_execute(
        &self,
        n: usize,
        served: &ServedPlan,
        policy: DistPolicy,
        x: &[Cplx],
    ) -> Option<Vec<Cplx>> {
        let mut slot = self.fleet.lock().unwrap();
        if slot.as_ref().is_none_or(|s| s.n != n) {
            // The hot size moved: the old fleet (if any) tears itself
            // down on drop, and the construction outcome — including
            // failure — is cached for the new size.
            *slot = Some(FleetSlot {
                n,
                exec: self.build_fleet(served, policy),
            });
        }
        let sl = slot.as_mut().expect("slot populated above");
        let fleet = sl.exec.as_mut()?;
        let mut out = vec![Cplx::ZERO; n];
        match fleet.execute_into(x, &mut out) {
            Ok(()) => Some(out),
            Err(_) => {
                // Catastrophic fleet failure (per-worker deaths are
                // rescued inside execute_into and do NOT land here):
                // tear down and remember not to respawn for this size.
                sl.exec = None;
                None
            }
        }
    }

    /// Build the largest fleet the policy admits for this plan's
    /// formula. Worker-binary and spawn-level failures abort (smaller
    /// fleets would hit them too); shard-geometry failures retry the
    /// next smaller `q`.
    fn build_fleet(&self, served: &ServedPlan, policy: DistPolicy) -> Option<DistExecutor> {
        let base = spiral_spl::parse(&served.formula).ok()?;
        for q in [4usize, 2] {
            if q > policy.budget {
                continue;
            }
            let tagged = spiral_spl::builder::dist_tag(q, base.clone());
            match DistExecutor::new(&tagged, self.threads, self.mu, q, DistConfig::default()) {
                Ok(exec) => return Some(exec),
                Err(DistError::Shard(_) | DistError::Lower(_)) => continue,
                Err(_) => return None,
            }
        }
        None
    }
}

fn shard_index(key: Key, shards: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    usize::try_from(h.finish() % shards as u64).expect("shard index fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::builder::dft;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx::new(1.0 + j as f64 * 0.5, -(j as f64) * 0.25))
            .collect()
    }

    #[test]
    fn serve_one_computes_the_dft_sequential_and_parallel() {
        for threads in [1usize, 2] {
            let svc = PlanService::new(threads, 4);
            for n in [32usize, 64, 256] {
                let x = ramp(n);
                let y = svc.serve_one(n, &x).unwrap();
                assert_slices_close(&y, &dft(n).eval(&x), 1e-8 * n as f64);
            }
        }
    }

    #[test]
    fn serve_batch_matches_sequential_plans() {
        let svc = PlanService::new(3, 4);
        let n = 64;
        let xs: Vec<Vec<Cplx>> = (0..10)
            .map(|k| {
                (0..n)
                    .map(|j| Cplx::new(j as f64 - k as f64, k as f64 * 0.5))
                    .collect()
            })
            .collect();
        let got = svc.serve_batch(n, &xs).unwrap();
        let plan = svc.sequential_plan(n).unwrap();
        for (y, x) in got.iter().zip(&xs) {
            assert_eq!(y, &plan.plan.execute(x));
        }
    }

    #[test]
    fn repeat_requests_hit_the_cache_and_tune_once() {
        let svc = PlanService::new(2, 4);
        for _ in 0..5 {
            svc.plan(64).unwrap();
        }
        assert_eq!(svc.tuner_invocations(), 1);
        assert_eq!(svc.cached_plans(), 1);
        assert!(svc.cache_hits() >= 4);
    }

    #[test]
    fn parallel_and_sequential_keys_are_distinct() {
        let svc = PlanService::new(2, 4);
        let par = svc.plan(256).unwrap();
        let seq = svc.sequential_plan(256).unwrap();
        assert!(par.plan.threads > 1, "2^8 admits the multicore split");
        assert_eq!(seq.plan.threads, 1);
        assert_eq!(svc.cached_plans(), 2);
        assert_eq!(svc.tuner_invocations(), 2);
    }

    #[test]
    fn concurrent_cold_requests_tune_exactly_once() {
        let svc = PlanService::new(2, 4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| svc.plan(128).unwrap());
            }
        });
        assert_eq!(
            svc.tuner_invocations(),
            1,
            "single-flight must collapse concurrent cold misses"
        );
        assert_eq!(svc.cached_plans(), 1);
    }

    #[test]
    fn inadmissible_parallel_size_falls_back_to_sequential() {
        // n = 32, p = 2, µ = 4: (pµ)² = 64 ∤ 32 — no multicore split.
        let svc = PlanService::new(2, 4);
        let served = svc.plan(32).unwrap();
        assert_eq!(served.plan.threads, 1);
        assert_eq!(served.source, PlanSource::Tuned);
        let x = ramp(32);
        let y = svc.serve_one(32, &x).unwrap();
        assert_slices_close(&y, &dft(32).eval(&x), 1e-7);
    }
}
