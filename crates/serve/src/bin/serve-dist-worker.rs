//! The serving tier's `dist(q)` worker entry point — the same argv
//! contract and protocol as `dist-worker`, shipped with this crate so
//! the worker binary travels with the serving deployment (and so the
//! serve test suite has a `CARGO_BIN_EXE_…` path to hand the fleet).

fn main() {
    spiral_dist::worker::worker_main();
}
