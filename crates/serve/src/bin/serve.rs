//! `serve` — the serving-tier binary: in-process benchmark, network
//! server, and load driver.
//!
//! Three modes:
//!
//! * **bench** (default, also with no subcommand — CI's serve-smoke
//!   invokes it with bare flags): build a [`PlanService`], feed it a
//!   deterministic stream of batched small-DFT requests in-process, and
//!   report throughput plus cache/tuner counters. Exits non-zero under
//!   `--assert-no-tuning` if any request reached the tuner.
//! * **listen**: run the network tier ([`spiral_serve::Server`]) on an
//!   address, printing the bound address, until the duration elapses
//!   (`--duration-s 0` = forever).
//! * **load**: drive concurrent client connections at a running server
//!   and report the response mix and latency percentiles.
//!
//! Argument handling is strict: unknown flags, non-numeric values, and
//! zero values for `--threads`/`--batch`/`--requests` (and the other
//! counts) exit 2 with the usage string.

use spiral_serve::{DistPolicy, LoadSpec, PlanService, Server, ServerConfig};
use spiral_smp::topology::{self, HostFingerprint};
use spiral_spl::cplx::Cplx;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: serve [bench] [--threads P] [--mu M] [--sizes N1,N2,...] [--batch B] \
[--requests R] [--wisdom PATH] [--assert-no-tuning] [--seed S] [--dist-budget Q] [--dist-min-n N]
       serve listen [--addr HOST:PORT] [--workers W] [--threads P] [--mu M] [--wisdom PATH] \
[--deadline-ms D] [--queue-bound Q] [--conn-backlog C] [--duration-s T] [--flight-record PATH]
       serve load [--addr HOST:PORT] [--connections C] [--requests R] [--n N] [--batch B] \
[--deadline-ms D] [--reconnect 0|1] [--seed S]
       serve stats [--addr HOST:PORT] [--format prom|json|dump] [--out PATH]";

fn usage_exit(reason: &str) -> ! {
    if !reason.is_empty() {
        eprintln!("serve: {reason}");
    }
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Flag cursor over the argument list: every flag takes a value.
struct Args {
    args: Vec<String>,
    i: usize,
}

impl Args {
    fn next_flag(&mut self) -> Option<String> {
        let f = self.args.get(self.i).cloned();
        if f.is_some() {
            self.i += 1;
        }
        f
    }

    fn value(&mut self, flag: &str) -> String {
        match self.args.get(self.i) {
            Some(v) => {
                self.i += 1;
                v.clone()
            }
            None => usage_exit(&format!("{flag} needs a value")),
        }
    }

    /// A count that must be a positive integer.
    fn positive(&mut self, flag: &str) -> usize {
        let v = self.value(flag);
        match v.parse::<usize>() {
            Ok(0) => usage_exit(&format!("{flag} must be positive, got 0")),
            Ok(k) => k,
            Err(_) => usage_exit(&format!("{flag} needs a positive integer, got '{v}'")),
        }
    }

    /// A numeric value where 0 is meaningful (seeds, durations,
    /// "use the default" deadlines).
    fn number(&mut self, flag: &str) -> u64 {
        let v = self.value(flag);
        v.parse::<u64>()
            .unwrap_or_else(|_| usage_exit(&format!("{flag} needs an integer, got '{v}'")))
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (mode, rest) = match raw.first().map(String::as_str) {
        Some("bench") => ("bench", raw[1..].to_vec()),
        Some("listen") => ("listen", raw[1..].to_vec()),
        Some("load") => ("load", raw[1..].to_vec()),
        Some("stats") => ("stats", raw[1..].to_vec()),
        Some("--help" | "-h") => usage_exit(""),
        Some(s) if !s.starts_with("--") => usage_exit(&format!("unknown subcommand '{s}'")),
        // Bare flags: the historical invocation, kept as bench mode.
        _ => ("bench", raw),
    };
    let mut args = Args { args: rest, i: 0 };
    match mode {
        "bench" => run_bench(&mut args),
        "listen" => run_listen(&mut args),
        "load" => run_load(&mut args),
        "stats" => run_stats(&mut args),
        _ => unreachable!("mode set above"),
    }
}

// --- bench mode -------------------------------------------------------

struct BenchOpts {
    threads: usize,
    mu: usize,
    sizes: Vec<usize>,
    batch: usize,
    requests: usize,
    wisdom: Option<String>,
    assert_no_tuning: bool,
    seed: u64,
    dist_budget: usize,
    dist_min_n: usize,
}

fn run_bench(args: &mut Args) {
    let mut opts = BenchOpts {
        threads: topology::processors(),
        mu: topology::mu(),
        sizes: vec![64, 256, 1024],
        batch: 32,
        requests: 64,
        wisdom: None,
        assert_no_tuning: false,
        seed: 1,
        dist_budget: 1,
        dist_min_n: 1024,
    };
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--threads" => opts.threads = args.positive("--threads"),
            "--mu" => opts.mu = args.positive("--mu"),
            "--sizes" => {
                let v = args.value("--sizes");
                opts.sizes = v
                    .split(',')
                    .map(|s| match s.trim().parse::<usize>() {
                        Ok(0) | Err(_) => {
                            usage_exit(&format!("--sizes needs positive integers, got '{s}'"))
                        }
                        Ok(k) => k,
                    })
                    .collect();
                if opts.sizes.is_empty() {
                    usage_exit("--sizes needs at least one size");
                }
            }
            "--batch" => opts.batch = args.positive("--batch"),
            "--requests" => opts.requests = args.positive("--requests"),
            "--wisdom" => opts.wisdom = Some(args.value("--wisdom")),
            "--assert-no-tuning" => opts.assert_no_tuning = true,
            "--seed" => opts.seed = args.number("--seed"),
            "--dist-budget" => opts.dist_budget = args.positive("--dist-budget"),
            "--dist-min-n" => opts.dist_min_n = args.positive("--dist-min-n"),
            "--help" | "-h" => usage_exit(""),
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    bench(&opts);
}

/// Deterministic request stream: splitmix64 over the seed.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn batch_inputs(rng: &mut Stream, b: usize, n: usize) -> Vec<Vec<Cplx>> {
    (0..b)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let re = (rng.next() % 2000) as f64 / 1000.0 - 1.0;
                    let im = (rng.next() % 2000) as f64 / 1000.0 - 1.0;
                    Cplx::new(re, im)
                })
                .collect()
        })
        .collect()
}

fn open_service(threads: usize, mu: usize, wisdom: Option<&str>) -> PlanService {
    match wisdom {
        Some(path) => {
            let (svc, report) = PlanService::with_wisdom(threads, mu, path);
            println!("{} ({})", report.summary(), path);
            for r in &report.rejected {
                println!(
                    "  rejected n={} p={} mu={}: {}",
                    r.n, r.threads, r.mu, r.reason
                );
            }
            svc
        }
        None => PlanService::new(threads, mu),
    }
}

fn bench(opts: &BenchOpts) {
    println!("host: {}", HostFingerprint::current());
    let mut service = open_service(opts.threads, opts.mu, opts.wisdom.as_deref());
    // A budget of 1 leaves the service fleet-free (the default); >= 2
    // routes sizes clearing the floor to the worker-process fleet,
    // falling back in-process when no worker binary ships next to us.
    if opts.dist_budget >= 2 {
        service = service.with_dist(DistPolicy {
            budget: opts.dist_budget,
            min_n: opts.dist_min_n,
        });
    }

    // Warm phase: plan every size once (tunes on a cold service, loads
    // from wisdom on a warm one). Timed separately from serving.
    let t_plan = Instant::now();
    for &n in &opts.sizes {
        let served = service
            .sequential_plan(n)
            .unwrap_or_else(|e| panic!("planning DFT_{n} failed: {e}"));
        println!(
            "plan DFT_{n}: {:?} via {} (cost {:.0})",
            served.source, served.choice, served.cost
        );
    }
    let plan_secs = t_plan.elapsed().as_secs_f64();

    // Serve phase: deterministic mixed-size batched request stream.
    let mut rng = Stream(opts.seed);
    let mut transforms = 0usize;
    let t_serve = Instant::now();
    for r in 0..opts.requests {
        let seed_off = usize::try_from(opts.seed % opts.sizes.len() as u64)
            .expect("residue below sizes length");
        let n = opts.sizes[(r + seed_off) % opts.sizes.len()];
        let inputs = batch_inputs(&mut rng, opts.batch, n);
        if opts.dist_budget >= 2 && n >= opts.dist_min_n {
            // Large transforms go through the single-transform path,
            // where the service may route them to the fleet.
            for (k, x) in inputs.iter().enumerate() {
                service.serve_one(n, x).unwrap_or_else(|e| {
                    panic!("request {r}.{k} (DFT_{n} via dist path) failed: {e}")
                });
                transforms += 1;
            }
        } else {
            let out = service
                .serve_batch(n, &inputs)
                .unwrap_or_else(|e| panic!("request {r} (DFT_{n} x{}) failed: {e}", opts.batch));
            transforms += out.len();
        }
    }
    let serve_secs = t_serve.elapsed().as_secs_f64();

    println!(
        "served {} requests ({} transforms, batch {}) on {} threads",
        opts.requests, transforms, opts.batch, opts.threads
    );
    println!(
        "planning {:.3} s; serving {:.3} s  ->  {:.0} transforms/s, {:.0} batches/s",
        plan_secs,
        serve_secs,
        transforms as f64 / serve_secs.max(1e-12),
        opts.requests as f64 / serve_secs.max(1e-12),
    );
    println!(
        "cache: {} plans, {} hits, {} misses; tuner invocations: {}; wisdom save failures: {}",
        service.cached_plans(),
        service.cache_hits(),
        service.cache_misses(),
        service.tuner_invocations(),
        service.wisdom_save_failures(),
    );
    if opts.dist_budget >= 2 {
        println!(
            "dist: {} fleet-served, {} fallbacks, fleet {}",
            service.dist_served(),
            service.dist_fallbacks(),
            if service.dist_active() {
                "live"
            } else {
                "down"
            },
        );
        if let Some(report) = service.shutdown_fleet() {
            println!(
                "dist shutdown: {} clean exits, {} killed, accounting exact: {}",
                report.clean_exits,
                report.killed,
                report.accounting.is_exact(),
            );
        }
    }

    if let Err(e) = service.save_wisdom() {
        eprintln!("warning: wisdom save failed: {e}");
    }

    if opts.assert_no_tuning && service.tuner_invocations() > 0 {
        eprintln!(
            "FAIL: --assert-no-tuning, but the tuner ran {} time(s) — wisdom was cold or stale",
            service.tuner_invocations()
        );
        std::process::exit(1);
    }
}

// --- listen mode ------------------------------------------------------

fn run_listen(args: &mut Args) {
    let mut cfg = ServerConfig::default();
    let mut threads = topology::processors();
    let mut mu = topology::mu();
    let mut wisdom: Option<String> = None;
    let mut duration_s: u64 = 0;
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => cfg.addr = args.value("--addr"),
            "--workers" => cfg.workers = args.positive("--workers"),
            "--threads" => threads = args.positive("--threads"),
            "--mu" => mu = args.positive("--mu"),
            "--wisdom" => wisdom = Some(args.value("--wisdom")),
            "--deadline-ms" => {
                let ms = args.number("--deadline-ms");
                if ms > 0 {
                    cfg.default_deadline = Duration::from_millis(ms);
                }
            }
            "--queue-bound" => cfg.queue_bound = args.positive("--queue-bound"),
            "--conn-backlog" => cfg.conn_backlog = args.positive("--conn-backlog"),
            "--duration-s" => duration_s = args.number("--duration-s"),
            "--flight-record" => {
                cfg.flight_record_path =
                    Some(std::path::PathBuf::from(args.value("--flight-record")));
            }
            "--help" | "-h" => usage_exit(""),
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    let service = std::sync::Arc::new(open_service(threads, mu, wisdom.as_deref()));
    let server = match Server::start(service, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    if duration_s == 0 {
        // Run until killed; park the main thread.
        loop {
            std::thread::park();
        }
    }
    std::thread::sleep(Duration::from_secs(duration_s));
    let report = server.shutdown();
    let c = report.counters;
    println!(
        "drained: {} requests ({} ok, {} overloaded, {} expired, {} errors); \
         {} protocol errors; degraded: {}",
        c.requests, c.ok, c.overloaded, c.expired, c.errors, c.protocol_errors, report.degraded
    );
    if let Some(e) = report.wisdom_error {
        eprintln!("warning: wisdom save failed: {e}");
    }
    if report.thread_panics > 0 {
        eprintln!("FAIL: {} server thread(s) panicked", report.thread_panics);
        std::process::exit(1);
    }
}

// --- stats mode -------------------------------------------------------

fn run_stats(args: &mut Args) {
    let mut addr = "127.0.0.1:7348".to_string();
    let mut kind = spiral_serve::StatsKind::Json;
    let mut out: Option<String> = None;
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => addr = args.value("--addr"),
            "--format" => {
                kind = match args.value("--format").as_str() {
                    "json" => spiral_serve::StatsKind::Json,
                    "prom" => spiral_serve::StatsKind::Prom,
                    "dump" => spiral_serve::StatsKind::Dump,
                    v => usage_exit(&format!("--format needs prom, json, or dump, got '{v}'")),
                }
            }
            "--out" => out = Some(args.value("--out")),
            "--help" | "-h" => usage_exit(""),
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => usage_exit(&format!("--addr needs HOST:PORT, got '{addr}'")),
    };
    let mut client = match spiral_serve::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("serve: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let body = match client.stats(kind) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve: stats exchange failed: {e}");
            std::process::exit(1);
        }
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &body) {
                eprintln!("serve: cannot write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {} bytes to {path}", body.len());
        }
        None => println!("{body}"),
    }
}

// --- load mode --------------------------------------------------------

fn run_load(args: &mut Args) {
    let mut addr = "127.0.0.1:7348".to_string();
    let mut spec = LoadSpec {
        addr: "127.0.0.1:0".parse().expect("literal address parses"),
        connections: 4,
        requests_per_conn: 64,
        n: 256,
        batch: 8,
        deadline_ms: 0,
        reconnect_per_request: false,
        seed: 1,
    };
    while let Some(flag) = args.next_flag() {
        match flag.as_str() {
            "--addr" => addr = args.value("--addr"),
            "--connections" => spec.connections = args.positive("--connections"),
            "--requests" => spec.requests_per_conn = args.positive("--requests"),
            "--n" => spec.n = args.positive("--n"),
            "--batch" => spec.batch = args.positive("--batch"),
            "--deadline-ms" => {
                spec.deadline_ms = u32::try_from(args.number("--deadline-ms"))
                    .unwrap_or_else(|_| usage_exit("--deadline-ms too large"));
            }
            "--reconnect" => {
                spec.reconnect_per_request = match args.value("--reconnect").as_str() {
                    "0" => false,
                    "1" => true,
                    v => usage_exit(&format!("--reconnect needs 0 or 1, got '{v}'")),
                }
            }
            "--seed" => spec.seed = args.number("--seed"),
            "--help" | "-h" => usage_exit(""),
            other => usage_exit(&format!("unknown argument '{other}'")),
        }
    }
    spec.addr = match addr.parse() {
        Ok(a) => a,
        Err(_) => usage_exit(&format!("--addr needs HOST:PORT, got '{addr}'")),
    };
    let mut outcome = spiral_serve::drive(&spec);
    let total = outcome.responses();
    let p50 = spiral_serve::percentile_us(&mut outcome.latencies_us, 50.0);
    let p99 = spiral_serve::percentile_us(&mut outcome.latencies_us, 99.0);
    println!(
        "{} responses in {:.3} s ({:.0} req/s): {} ok, {} overloaded, {} expired, {} errors; \
         {} connect failures, {} protocol errors",
        total,
        outcome.elapsed_s,
        total as f64 / outcome.elapsed_s.max(1e-12),
        outcome.ok,
        outcome.overloaded,
        outcome.expired,
        outcome.errors,
        outcome.conn_failures,
        outcome.protocol_errors,
    );
    println!("latency (ok requests): p50 {p50} us, p99 {p99} us");
    if outcome.protocol_errors > 0 || (outcome.ok == 0 && total > 0) {
        std::process::exit(1);
    }
    if total == 0 {
        eprintln!("FAIL: no responses received (is the server running at {addr}?)");
        std::process::exit(1);
    }
}
