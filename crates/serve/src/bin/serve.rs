//! `serve` — drive the plan service with a synthetic request stream.
//!
//! Builds a [`PlanService`], optionally backed by a wisdom file, feeds
//! it a deterministic stream of batched small-DFT requests, and reports
//! throughput (transforms/s and batches/s) plus cache and tuner
//! counters. Exits non-zero under `--assert-no-tuning` if any request
//! reached the tuner — the CI check that a warm wisdom file really
//! serves without tuning.
//!
//! ```text
//! serve [--threads P] [--mu M] [--sizes 64,256,1024] [--batch B]
//!       [--requests R] [--wisdom PATH] [--assert-no-tuning] [--seed S]
//! ```

use spiral_serve::PlanService;
use spiral_smp::topology::{self, HostFingerprint};
use spiral_spl::cplx::Cplx;
use std::time::Instant;

struct Opts {
    threads: usize,
    mu: usize,
    sizes: Vec<usize>,
    batch: usize,
    requests: usize,
    wisdom: Option<String>,
    assert_no_tuning: bool,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve [--threads P] [--mu M] [--sizes N1,N2,...] [--batch B] \
         [--requests R] [--wisdom PATH] [--assert-no-tuning] [--seed S]"
    );
    std::process::exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        threads: topology::processors(),
        mu: topology::mu(),
        sizes: vec![64, 256, 1024],
        batch: 32,
        requests: 64,
        wisdom: None,
        assert_no_tuning: false,
        seed: 1,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: usize| -> String {
        args.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                opts.threads = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--mu" => {
                opts.mu = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--sizes" => {
                opts.sizes = value(&args, i)
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                i += 2;
            }
            "--batch" => {
                opts.batch = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--requests" => {
                opts.requests = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--wisdom" => {
                opts.wisdom = Some(value(&args, i));
                i += 2;
            }
            "--assert-no-tuning" => {
                opts.assert_no_tuning = true;
                i += 1;
            }
            "--seed" => {
                opts.seed = value(&args, i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if opts.sizes.is_empty() || opts.batch == 0 || opts.requests == 0 {
        usage();
    }
    opts
}

/// Deterministic request stream: splitmix64 over the seed.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

fn batch_inputs(rng: &mut Stream, b: usize, n: usize) -> Vec<Vec<Cplx>> {
    (0..b)
        .map(|_| {
            (0..n)
                .map(|_| {
                    let re = (rng.next() % 2000) as f64 / 1000.0 - 1.0;
                    let im = (rng.next() % 2000) as f64 / 1000.0 - 1.0;
                    Cplx::new(re, im)
                })
                .collect()
        })
        .collect()
}

fn main() {
    let opts = parse_opts();
    println!("host: {}", HostFingerprint::current());

    let service = match &opts.wisdom {
        Some(path) => {
            let (svc, report) = PlanService::with_wisdom(opts.threads, opts.mu, path);
            println!("{} ({})", report.summary(), path);
            for r in &report.rejected {
                println!(
                    "  rejected n={} p={} mu={}: {}",
                    r.n, r.threads, r.mu, r.reason
                );
            }
            svc
        }
        None => PlanService::new(opts.threads, opts.mu),
    };

    // Warm phase: plan every size once (tunes on a cold service, loads
    // from wisdom on a warm one). Timed separately from serving.
    let t_plan = Instant::now();
    for &n in &opts.sizes {
        let served = service
            .sequential_plan(n)
            .unwrap_or_else(|e| panic!("planning DFT_{n} failed: {e}"));
        println!(
            "plan DFT_{n}: {:?} via {} (cost {:.0})",
            served.source, served.choice, served.cost
        );
    }
    let plan_secs = t_plan.elapsed().as_secs_f64();

    // Serve phase: deterministic mixed-size batched request stream.
    let mut rng = Stream(opts.seed);
    let mut transforms = 0usize;
    let t_serve = Instant::now();
    for r in 0..opts.requests {
        let seed_off = usize::try_from(opts.seed % opts.sizes.len() as u64)
            .expect("residue below sizes length");
        let n = opts.sizes[(r + seed_off) % opts.sizes.len()];
        let inputs = batch_inputs(&mut rng, opts.batch, n);
        let out = service
            .serve_batch(n, &inputs)
            .unwrap_or_else(|e| panic!("request {r} (DFT_{n} x{}) failed: {e}", opts.batch));
        transforms += out.len();
    }
    let serve_secs = t_serve.elapsed().as_secs_f64();

    println!(
        "served {} requests ({} transforms, batch {}) on {} threads",
        opts.requests, transforms, opts.batch, opts.threads
    );
    println!(
        "planning {:.3} s; serving {:.3} s  ->  {:.0} transforms/s, {:.0} batches/s",
        plan_secs,
        serve_secs,
        transforms as f64 / serve_secs.max(1e-12),
        opts.requests as f64 / serve_secs.max(1e-12),
    );
    println!(
        "cache: {} plans, {} hits, {} misses; tuner invocations: {}; wisdom save failures: {}",
        service.cached_plans(),
        service.cache_hits(),
        service.cache_misses(),
        service.tuner_invocations(),
        service.wisdom_save_failures(),
    );

    if let Err(e) = service.save_wisdom() {
        eprintln!("warning: wisdom save failed: {e}");
    }

    if opts.assert_no_tuning && service.tuner_invocations() > 0 {
        eprintln!(
            "FAIL: --assert-no-tuning, but the tuner ran {} time(s) — wisdom was cold or stale",
            service.tuner_invocations()
        );
        std::process::exit(1);
    }
}
