//! # spiral-serve — the serving layer
//!
//! Everything below this crate answers "what is the fastest way to run
//! *one* DFT_n on this machine?" — the generator derives candidates,
//! the search picks a winner, the executors run it. A serving workload
//! asks a different question: many independent, mostly small transforms
//! arrive over time, repeat sizes heavily, and must not pay the tuner
//! on every request. This crate closes that gap with three pieces:
//!
//! * [`wisdom`] — FFTW-style persisted tuning results: the winning SPL
//!   formulas, keyed by `(n, threads, µ)` and bound to a
//!   [`spiral_smp::topology::HostFingerprint`], reloaded and
//!   re-validated (parse → lower → `spiral-verify`) on startup;
//! * [`cache`] — [`cache::PlanService`]: a sharded read-mostly plan
//!   cache with single-flight tuning (a cold key is tuned exactly once,
//!   no matter how many threads ask for it concurrently) and an
//!   observable tuner-invocation counter;
//! * batched execution via [`spiral_codegen::BatchExecutor`] — the
//!   batch dimension, not the transform, is partitioned across the
//!   pool, so a batch of small DFTs costs one dispatch/join instead of
//!   one barrier set per transform.
//!
//! On top of the service sits the **network tier** (PR 7), built
//! robustness-first:
//!
//! * [`wire`] — a length-prefixed binary protocol whose decode paths
//!   distinguish idle, clean-close, torn, stalled, and malformed;
//! * [`overload`] — bounded queues with non-blocking admission and the
//!   request-accounting counters (every request ends in exactly one of
//!   `Ok` / `Overloaded` / `Expired` / `Error`);
//! * [`net`] — the thread-per-core server: deadline enforcement end to
//!   end, load shedding of expired work, cross-connection coalescing of
//!   same-size requests into one batch dispatch, sticky degradation to
//!   the sequential path when the pool watchdog trips, graceful drain;
//! * [`client`] — the blocking client and load driver, including
//!   deliberately misbehaving writers for the chaos suite.
//!
//! The `serve` binary drives the service with a synthetic request
//! stream and reports throughput (`bench` mode), runs the server
//! (`listen`), or drives load at one (`load`); `--assert-no-tuning`
//! turns the warm-wisdom invariant (zero tuner invocations) into an
//! exit code.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod metrics;
pub mod net;
pub mod overload;
pub mod wire;
pub mod wisdom;

pub use cache::{DistPolicy, PlanService, PlanSource, ServedPlan};
pub use client::{drive, percentile_us, request_from_inputs, Client, LoadOutcome, LoadSpec};
pub use metrics::{GaugeReadings, ServeMetrics};
pub use net::{DrainReport, Server, ServerConfig};
pub use overload::{BoundedQueue, CounterSnapshot, Push, ServeCounters};
pub use spiral_codegen::BatchExecutor;
pub use spiral_smp::error::SpiralError;
pub use spiral_trace::metrics::MetricsSnapshot;
pub use wire::{Request, Response, StatsKind, WireError, MAX_FRAME_BYTES};
pub use wisdom::{
    compile_entry, CompiledEntry, LoadReport, RejectedEntry, WisdomEntry, WisdomFile, WisdomStore,
    WISDOM_SCHEMA_VERSION,
};
