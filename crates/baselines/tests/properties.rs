//! Property tests: all baseline FFTs agree with each other and the
//! definition on random inputs; trace invariants hold.

use proptest::prelude::*;
use spiral_baselines::{
    FftwLikeConfig, FftwLikeFft, IterativeFft, NaiveDft, RecursiveFft, SixStepFft, StockhamFft,
};
use spiral_codegen::hook::CountingHook;
use spiral_spl::cplx::Cplx;

fn cplx_vec(n: usize) -> impl Strategy<Value = Vec<Cplx>> {
    prop::collection::vec(
        (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(re, im)| Cplx::new(re, im)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All power-of-two implementations produce identical transforms.
    #[test]
    fn all_pow2_ffts_agree(ke in 2u32..=8, x in cplx_vec(256)) {
        let n = 1usize << ke;
        let x = &x[..n];
        let want = NaiveDft::new(n).run(x);
        let tol = 1e-8 * n as f64;
        let close = |got: &[Cplx]| {
            got.iter().zip(&want).all(|(a, b)| a.approx_eq(*b, tol))
        };
        prop_assert!(close(&IterativeFft::new(n).run(x)));
        prop_assert!(close(&RecursiveFft::new(n).run(x)));
        prop_assert!(close(&StockhamFft::new(n).run(x)));
        prop_assert!(close(&FftwLikeFft::new(n, FftwLikeConfig::default()).run(x)));
        if n >= 4 {
            prop_assert!(close(&SixStepFft::for_size(n, None).run(x)));
            prop_assert!(close(&SixStepFft::for_size(n, Some(4)).run(x)));
        }
    }

    /// Mixed-radix sizes: recursive agrees with naive.
    #[test]
    fn recursive_handles_any_size(n in 1usize..=48, x in cplx_vec(48)) {
        let x = &x[..n];
        let want = NaiveDft::new(n).run(x);
        let got = RecursiveFft::new(n).run(x);
        for (a, b) in got.iter().zip(&want) {
            prop_assert!(a.approx_eq(*b, 1e-7 * n.max(4) as f64));
        }
    }

    /// The FFTW-like trace always performs exactly the nominal flops and
    /// one barrier per pass (+1 for bit reversal), independent of grain
    /// and thread count.
    #[test]
    fn fftwlike_trace_invariants(
        ke in 3u32..=9,
        threads in 1usize..=4,
        grain in 0usize..=8,
    ) {
        let n = 1usize << ke;
        let cfg = FftwLikeConfig { grain, thread_pool: true, ..Default::default() };
        let f = FftwLikeFft::new(n, cfg);
        let mut h = CountingHook::default();
        f.trace(threads, &mut h);
        prop_assert_eq!(h.flops, f.flops());
        prop_assert_eq!(h.barriers, ke as u64 + 1);
        // Bit-reversal writes n, each pass writes n: total n·(log n + 1).
        prop_assert_eq!(h.writes, (n as u64) * (ke as u64 + 1));
    }

    /// Six-step traces touch every element of every stage and always
    /// issue exactly six barriers.
    #[test]
    fn sixstep_trace_invariants(ke in 2u32..=8, threads in 1usize..=4) {
        let n = 1usize << ke;
        let f = SixStepFft::for_size(n, None);
        let mut h = CountingHook::default();
        f.trace(threads, &mut h);
        prop_assert_eq!(h.barriers, 6);
        prop_assert!(h.writes >= 4 * n as u64);
        prop_assert!(h.flops > 0);
    }

    /// Parseval holds for every baseline (energy times n).
    #[test]
    fn parseval_for_baselines(x in cplx_vec(64)) {
        let n = 64;
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        for y in [
            IterativeFft::new(n).run(&x),
            StockhamFft::new(n).run(&x),
            SixStepFft::for_size(n, None).run(&x),
        ] {
            let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum();
            prop_assert!((ey - n as f64 * ex).abs() <= 1e-6 * ey.max(1.0));
        }
    }
}
