//! An FFTW-3.1-like adaptive library model.
//!
//! The paper's comparison target parallelizes the loops inside a standard
//! Cooley–Tukey recursion, schedules them *block-cyclically* without
//! knowledge of the cache-line length µ, and (with experimental thread
//! pooling off, its default) creates threads per transform execution —
//! "the infrastructure required for portability … incurs considerable
//! overhead", which is why FFTW profits from threads only beyond several
//! thousand points (paper §2.2, §4).
//!
//! Sequential compute is the iterative radix-2 FFT; what this module
//! models carefully is the *parallel schedule and its memory behaviour*,
//! exposed through [`FftwLikeFft::trace`] for the machine simulator.

use crate::iterative::IterativeFft;
use spiral_codegen::hook::{MemHook, Region};
use spiral_spl::cplx::Cplx;

/// Tuning knobs of the modeled library.
#[derive(Clone, Copy, Debug)]
pub struct FftwLikeConfig {
    /// Thread-creation + join cost per parallel transform execution, in
    /// machine cycles (paid once per execute when pooling is off).
    pub spawn_cycles: f64,
    /// Experimental thread pooling (paper: off by default; semaphores
    /// worked for 2 threads, hung for 4).
    pub thread_pool: bool,
    /// Scheduling grain in loop iterations for the block-cyclic split;
    /// `0` = contiguous split (one chunk per thread), the library's
    /// default. Small explicit grains model µ-oblivious fine-grain
    /// scheduling (used by the ABL-SCHED ablation).
    pub grain: usize,
}

impl Default for FftwLikeConfig {
    fn default() -> Self {
        // ~100 µs at 2 GHz for create+join of a couple of threads —
        // consistent with FFTW's observed 2^13 crossover.
        FftwLikeConfig {
            spawn_cycles: 200_000.0,
            thread_pool: false,
            grain: 0,
        }
    }
}

/// The modeled library instance for one size.
pub struct FftwLikeFft {
    /// Transform size.
    pub n: usize,
    fft: IterativeFft,
    /// The modeled library's tuning knobs.
    pub cfg: FftwLikeConfig,
}

impl FftwLikeFft {
    /// Build the modeled library for size `n`.
    pub fn new(n: usize, cfg: FftwLikeConfig) -> FftwLikeFft {
        FftwLikeFft {
            n,
            fft: IterativeFft::new(n),
            cfg,
        }
    }

    /// Numerical execution (sequential; the parallel schedule only
    /// changes who computes what, not the values).
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        self.fft.run(x)
    }

    /// Emit the access stream of the `threads`-way parallel execution:
    /// bit-reversal, then `log2 n` butterfly passes, each parallelized
    /// block-cyclically with grain `cfg.grain` — µ-oblivious, exactly the
    /// behaviour that causes false sharing on small sub-blocks.
    pub fn trace(&self, threads: usize, hook: &mut dyn MemHook) {
        let n = self.n;
        let threads = threads.max(1);
        if threads > 1 && !self.cfg.thread_pool {
            // Threads created for this execution, joined at the end.
            hook.overhead(0, self.cfg.spawn_cycles);
        }
        // Bit-reversal gather: BufA → BufB, contiguous writes per thread.
        for tid in 0..threads {
            let lo = n * tid / threads;
            let hi = n * (tid + 1) / threads;
            for i in lo..hi {
                hook.read(tid, Region::BufA, rev_index(n, i));
                hook.write(tid, Region::BufB, i);
            }
        }
        hook.barrier();
        // Butterfly passes, in place in BufB.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let groups = n / len;
            // Parallelize the group loop when possible (outer loop), the
            // k loop otherwise (final passes) — FFTW parallelizes
            // whichever loop exists; both are scheduled block-cyclically.
            if groups >= threads {
                let grain = self.effective_grain(groups, threads);
                let chunks = groups.div_ceil(grain);
                for chunk in 0..chunks {
                    let tid = chunk % threads;
                    let g_lo = chunk * grain;
                    let g_hi = (g_lo + grain).min(groups);
                    for g in g_lo..g_hi {
                        let base = g * len;
                        for k in 0..half {
                            self.butterfly_access(tid, base + k, base + k + half, hook);
                        }
                        hook.flops(tid, 10 * half as u64);
                    }
                }
            } else {
                // Split the k loop of each group block-cyclically.
                let grain = self.effective_grain(half, threads);
                for (g, base) in (0..groups).map(|g| (g, g * len)) {
                    let _ = g;
                    let chunks = half.div_ceil(grain);
                    for chunk in 0..chunks {
                        let tid = chunk % threads;
                        let k_lo = chunk * grain;
                        let k_hi = (k_lo + grain).min(half);
                        for k in k_lo..k_hi {
                            self.butterfly_access(tid, base + k, base + k + half, hook);
                        }
                        hook.flops(tid, 10 * (k_hi - k_lo) as u64);
                    }
                }
            }
            hook.barrier();
            len *= 2;
        }
    }

    fn effective_grain(&self, iterations: usize, threads: usize) -> usize {
        if self.cfg.grain == 0 {
            iterations.div_ceil(threads).max(1)
        } else {
            self.cfg.grain
        }
    }

    fn butterfly_access(&self, tid: usize, a: usize, b: usize, hook: &mut dyn MemHook) {
        hook.read(tid, Region::BufB, a);
        hook.read(tid, Region::BufB, b);
        hook.write(tid, Region::BufB, a);
        hook.write(tid, Region::BufB, b);
    }

    /// Nominal sequential flops.
    pub fn flops(&self) -> u64 {
        self.fft.flops()
    }
}

fn rev_index(n: usize, i: usize) -> usize {
    let bits = n.trailing_zeros();
    if bits == 0 {
        0
    } else {
        let i = u32::try_from(i).expect("bit-reversal index below 2^32");
        i.reverse_bits() as usize >> (32 - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::hook::CountingHook;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64, -2.0 + 0.5 * k as f64))
            .collect()
    }

    #[test]
    fn runs_correct_dft() {
        for n in [8usize, 64, 512] {
            let f = FftwLikeFft::new(n, FftwLikeConfig::default());
            let x = ramp(n);
            assert_slices_close(
                &f.run(&x),
                &spiral_spl::builder::dft(n).eval(&x),
                1e-8 * n as f64,
            );
        }
    }

    #[test]
    fn trace_structure() {
        let n = 64;
        let f = FftwLikeFft::new(n, FftwLikeConfig::default());
        let mut h = CountingHook::default();
        f.trace(2, &mut h);
        // log2(64) butterfly passes + bit reversal barrier.
        assert_eq!(h.barriers, 7);
        assert_eq!(h.flops, f.flops());
        // Both threads do compute.
        assert!(h.per_tid_flops.len() == 2, "{:?}", h.per_tid_flops);
    }

    #[test]
    fn sequential_trace_uses_one_thread() {
        let f = FftwLikeFft::new(32, FftwLikeConfig::default());
        let mut h = CountingHook::default();
        f.trace(1, &mut h);
        assert_eq!(h.per_tid_flops.len(), 1);
    }

    #[test]
    fn work_is_roughly_balanced_across_threads() {
        let f = FftwLikeFft::new(256, FftwLikeConfig::default());
        let mut h = CountingHook::default();
        f.trace(4, &mut h);
        let w: Vec<u64> = (0..4).map(|t| h.per_tid_flops[&t]).collect();
        let max = *w.iter().max().unwrap() as f64;
        let min = *w.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "{w:?}");
    }
}
