//! # spiral-baselines — the comparison implementations
//!
//! The DFT implementations the paper's evaluation section measures the
//! generated code against, built from scratch:
//!
//! * [`naive::NaiveDft`] — O(n²) definition (correctness reference);
//! * [`recursive::RecursiveFft`] — textbook recursive Cooley–Tukey;
//! * [`iterative::IterativeFft`] — iterative in-place radix-2 with bit
//!   reversal (the large-stride access pattern of §2.2);
//! * [`stockham::StockhamFft`] — autosort variant;
//! * [`sixstep::SixStepFft`] — the six-step algorithm (3) with explicit
//!   (optionally cache-blocked, ref. [1]) transpositions and a natural
//!   parallel schedule;
//! * [`fftwlike::FftwLikeFft`] — an FFTW-3.1-like model: µ-oblivious
//!   block-cyclic loop parallelization with per-execution thread
//!   creation (pooling off by default), which reproduces FFTW's late
//!   parallelization crossover.
//!
//! The parallel baselines expose `trace(threads, hook)` so the machine
//! simulator can account their memory behaviour exactly like the
//! generated plans'.

#![warn(missing_docs)]

pub mod fftwlike;
pub mod iterative;
pub mod naive;
pub mod recursive;
pub mod sixstep;
pub mod stockham;
pub mod transpose;

pub use fftwlike::{FftwLikeConfig, FftwLikeFft};
pub use iterative::IterativeFft;
pub use naive::NaiveDft;
pub use recursive::RecursiveFft;
pub use sixstep::SixStepFft;
pub use stockham::StockhamFft;
