//! The six-step FFT (paper eq. (3)) with *explicit* transposition passes,
//! optionally cache-blocked (ref. [1]) — the traditional shared-memory
//! FFT the multicore Cooley–Tukey (14) is contrasted with.

use crate::iterative::IterativeFft;
use crate::transpose::{trace_transpose, trace_transpose_blocked, transpose, transpose_blocked};
use spiral_codegen::hook::{MemHook, Region};
use spiral_spl::cplx::Cplx;
use spiral_spl::diag::DiagSpec;
use spiral_spl::num::is_pow2;

/// Six-step FFT for `N = m·n` (both powers of two).
pub struct SixStepFft {
    /// Row factor of the `N = m·n` split.
    pub m: usize,
    /// Column factor of the `N = m·n` split.
    pub n: usize,
    row_m: IterativeFft,
    row_n: IterativeFft,
    /// Tile size for blocked transposes; `None` = plain transposes.
    pub block: Option<usize>,
    twiddle: Vec<Cplx>,
}

impl SixStepFft {
    /// Six-step transform for `N = m·n`.
    pub fn new(m: usize, n: usize, block: Option<usize>) -> SixStepFft {
        assert!(
            is_pow2(m) && is_pow2(n),
            "six-step needs power-of-two factors"
        );
        SixStepFft {
            m,
            n,
            row_m: IterativeFft::new(m),
            row_n: IterativeFft::new(n),
            block,
            twiddle: DiagSpec::twiddle(m, n).entries(),
        }
    }

    /// Balanced splitting `N = m·n` with `m` the divisor nearest `√N`.
    pub fn for_size(nn: usize, block: Option<usize>) -> SixStepFft {
        assert!(is_pow2(nn) && nn >= 4);
        let lg = nn.trailing_zeros();
        let m = 1usize << (lg / 2);
        SixStepFft::new(m, nn / m, block)
    }

    /// Total transform size `m·n`.
    pub fn size(&self) -> usize {
        self.m * self.n
    }

    fn xpose(&self, src: &[Cplx], dst: &mut [Cplx], rows: usize, cols: usize) {
        match self.block {
            Some(b) => transpose_blocked(src, dst, rows, cols, b),
            None => transpose(src, dst, rows, cols),
        }
    }

    /// Sequential execution (steps exactly as in eq. (3), right to left).
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        let (m, n) = (self.m, self.n);
        let nn = m * n;
        assert_eq!(x.len(), nn);
        let mut a = vec![Cplx::ZERO; nn];
        let mut b = vec![Cplx::ZERO; nn];
        // 1. a = L^{mn}_m x  (transpose x viewed as n×m)
        self.xpose(x, &mut a, n, m);
        // 2. I_m ⊗ DFT_n: m contiguous rows of n.
        for r in 0..m {
            let y = self.row_n.run(&a[r * n..(r + 1) * n]);
            b[r * n..(r + 1) * n].copy_from_slice(&y);
        }
        // 3. twiddle: b[i·n + j] *= ω_N^{i·j}
        for (i, v) in b.iter_mut().enumerate() {
            *v *= self.twiddle[i];
        }
        // 4. a = L^{mn}_n b (transpose b viewed as m×n)
        self.xpose(&b, &mut a, m, n);
        // 5. I_n ⊗ DFT_m: n contiguous rows of m.
        for r in 0..n {
            let y = self.row_m.run(&a[r * m..(r + 1) * m]);
            b[r * m..(r + 1) * m].copy_from_slice(&y);
        }
        // 6. result = L^{mn}_m b
        self.xpose(&b, &mut a, n, m);
        a
    }

    /// Emit the access stream of the natural `threads`-way parallel
    /// six-step schedule: rows split contiguously per thread in the
    /// compute stages, transposes split by source rows, a barrier after
    /// every stage.
    pub fn trace(&self, threads: usize, hook: &mut dyn MemHook) {
        let (m, n) = (self.m, self.n);
        let (src, dst) = (Region::BufA, Region::BufB);
        let tx = |rows: usize, cols: usize, s: Region, d: Region, hook: &mut dyn MemHook| match self
            .block
        {
            Some(b) => trace_transpose_blocked(rows, cols, b, threads, s, d, hook),
            None => trace_transpose(rows, cols, threads, s, d, hook),
        };
        // 1. transpose x (n×m) : BufA → BufB
        tx(n, m, src, dst, hook);
        hook.barrier();
        // 2. row DFT_n on m rows: BufB → BufB (in place per row)
        self.trace_rows(m, n, self.row_n.flops(), threads, dst, hook);
        hook.barrier();
        // 3. twiddle pass: BufB in place
        for tid in 0..threads {
            let lo = (m * n) * tid / threads;
            let hi = (m * n) * (tid + 1) / threads;
            for i in lo..hi {
                hook.read(tid, dst, i);
                hook.write(tid, dst, i);
            }
            hook.flops(tid, 6 * (hi - lo) as u64);
        }
        hook.barrier();
        // 4. transpose (m×n): BufB → BufA
        tx(m, n, dst, src, hook);
        hook.barrier();
        // 5. row DFT_m on n rows: BufA in place
        self.trace_rows(n, m, self.row_m.flops(), threads, src, hook);
        hook.barrier();
        // 6. transpose (n×m): BufA → BufB
        tx(n, m, src, dst, hook);
        hook.barrier();
    }

    fn trace_rows(
        &self,
        rows: usize,
        cols: usize,
        flops_per_row: u64,
        threads: usize,
        buf: Region,
        hook: &mut dyn MemHook,
    ) {
        // An iterative radix-2 FFT over each row makes log2(cols) passes
        // over the row (in cache, but the accesses are real).
        let passes = cols.trailing_zeros().max(1) as u64;
        for tid in 0..threads {
            let lo = rows * tid / threads;
            let hi = rows * (tid + 1) / threads;
            for r in lo..hi {
                for _pass in 0..passes {
                    for c in 0..cols {
                        hook.read(tid, buf, r * cols + c);
                    }
                    hook.flops(tid, flops_per_row / passes);
                    for c in 0..cols {
                        hook.write(tid, buf, r * cols + c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::hook::CountingHook;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64 * 0.3, 1.0 - k as f64 * 0.1))
            .collect()
    }

    #[test]
    fn matches_dft() {
        for (m, n) in [(4usize, 4usize), (4, 8), (8, 8), (16, 8)] {
            let f = SixStepFft::new(m, n, None);
            let x = ramp(m * n);
            let y = f.run(&x);
            let want = spiral_spl::builder::dft(m * n).eval(&x);
            assert_slices_close(&y, &want, 1e-8 * (m * n) as f64);
        }
    }

    #[test]
    fn blocked_matches_plain() {
        let x = ramp(256);
        let plain = SixStepFft::new(16, 16, None).run(&x);
        for b in [2usize, 4, 8, 32] {
            let blocked = SixStepFft::new(16, 16, Some(b)).run(&x);
            assert_slices_close(&plain, &blocked, 1e-10);
        }
    }

    #[test]
    fn for_size_splits_near_sqrt() {
        let f = SixStepFft::for_size(1024, None);
        assert_eq!(f.m * f.n, 1024);
        assert!(f.m == 32 && f.n == 32);
        let g = SixStepFft::for_size(2048, None);
        assert_eq!(g.m * g.n, 2048);
    }

    #[test]
    fn trace_has_six_barriers_and_covers_data() {
        let f = SixStepFft::new(8, 8, None);
        let mut h = CountingHook::default();
        f.trace(2, &mut h);
        assert_eq!(h.barriers, 6);
        // 3 transposes + 1 twiddle + 2 compute stages all touch 64 elems.
        assert!(h.reads >= 6 * 64);
        assert!(h.flops > 0);
    }
}
