//! Stockham autosort FFT: no explicit bit reversal — the permutation is
//! absorbed into the ping-pong data flow. The standard "GPU/vector
//! friendly" formulation.

use spiral_spl::cplx::Cplx;
use spiral_spl::num::{is_pow2, omega_pow};

/// Stockham radix-2 autosort FFT (out of place, ping-pong).
pub struct StockhamFft {
    /// Transform size (power of two).
    pub n: usize,
}

impl StockhamFft {
    /// Autosort transform of size `n`.
    pub fn new(n: usize) -> StockhamFft {
        assert!(is_pow2(n), "Stockham radix-2 needs a power of two, got {n}");
        StockhamFft { n }
    }

    /// Compute the forward DFT of `x`.
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), self.n);
        let n = self.n;
        if n == 1 {
            return x.to_vec();
        }
        // Decimation-in-frequency Stockham: at each stage the current
        // sub-problem size `cur` halves while the stride `s` doubles; the
        // reordering happens implicitly through the output indexing.
        let mut a = x.to_vec();
        let mut b = vec![Cplx::ZERO; n];
        let mut cur = n;
        let mut s = 1;
        while cur > 1 {
            let m = cur / 2;
            for p in 0..m {
                let w = omega_pow(cur, p);
                for q in 0..s {
                    let u = a[q + s * p];
                    let v = a[q + s * (p + m)];
                    b[q + s * 2 * p] = u + v;
                    b[q + s * (2 * p + 1)] = (u - v) * w;
                }
            }
            std::mem::swap(&mut a, &mut b);
            cur = m;
            s *= 2;
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;

    #[test]
    fn matches_dft() {
        for n in [1usize, 2, 4, 8, 64, 256] {
            let x: Vec<Cplx> = (0..n)
                .map(|k| Cplx::new(0.5 * k as f64, 2.0 - k as f64))
                .collect();
            let y = StockhamFft::new(n).run(&x);
            let want = spiral_spl::builder::dft(n).eval(&x);
            assert_slices_close(&y, &want, 1e-8 * n.max(4) as f64);
        }
    }
}
