//! Explicit matrix transposition — the data-reorganization passes of the
//! six-step FFT (paper eq. (3)), plain and cache-blocked (ref. [1]).

use spiral_codegen::hook::{MemHook, Region};
use spiral_spl::cplx::Cplx;

/// `dst` (an `n × m` row-major matrix) = transpose of `src` (`m × n`).
pub fn transpose(src: &[Cplx], dst: &mut [Cplx], m: usize, n: usize) {
    assert_eq!(src.len(), m * n);
    assert_eq!(dst.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            dst[j * m + i] = src[i * n + j];
        }
    }
}

/// Cache-blocked transpose with `b × b` tiles.
pub fn transpose_blocked(src: &[Cplx], dst: &mut [Cplx], m: usize, n: usize, b: usize) {
    assert_eq!(src.len(), m * n);
    assert_eq!(dst.len(), m * n);
    let b = b.max(1);
    let mut ib = 0;
    while ib < m {
        let mut jb = 0;
        let i_hi = (ib + b).min(m);
        while jb < n {
            let j_hi = (jb + b).min(n);
            for i in ib..i_hi {
                for j in jb..j_hi {
                    dst[j * m + i] = src[i * n + j];
                }
            }
            jb += b;
        }
        ib += b;
    }
}

/// Emit the access stream of a `threads`-way parallel transpose that
/// splits the *source rows* contiguously per thread (the natural
/// schedule). Writes go at stride `m` — consecutive `j` from the same
/// thread hit different lines, but different threads' writes interleave
/// in the destination, which is where false sharing appears when `m` is
/// not a multiple of the line size.
pub fn trace_transpose(
    m: usize,
    n: usize,
    threads: usize,
    src: Region,
    dst: Region,
    hook: &mut dyn MemHook,
) {
    for tid in 0..threads {
        let lo = m * tid / threads;
        let hi = m * (tid + 1) / threads;
        for i in lo..hi {
            for j in 0..n {
                hook.read(tid, src, i * n + j);
                hook.write(tid, dst, j * m + i);
            }
        }
    }
}

/// Blocked variant of [`trace_transpose`] (tiles of `b × b`, rows of
/// tiles split across threads).
pub fn trace_transpose_blocked(
    m: usize,
    n: usize,
    b: usize,
    threads: usize,
    src: Region,
    dst: Region,
    hook: &mut dyn MemHook,
) {
    let b = b.max(1);
    let tile_rows = m.div_ceil(b);
    for tid in 0..threads {
        let lo = tile_rows * tid / threads;
        let hi = tile_rows * (tid + 1) / threads;
        for tr in lo..hi {
            let (i0, i1) = (tr * b, ((tr + 1) * b).min(m));
            let mut jb = 0;
            while jb < n {
                let j1 = (jb + b).min(n);
                for i in i0..i1 {
                    for j in jb..j1 {
                        hook.read(tid, src, i * n + j);
                        hook.write(tid, dst, j * m + i);
                    }
                }
                jb += b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::hook::CountingHook;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n).map(|k| Cplx::real(k as f64)).collect()
    }

    #[test]
    fn plain_transpose_correct() {
        let (m, n) = (3usize, 5usize);
        let src = ramp(m * n);
        let mut dst = vec![Cplx::ZERO; m * n];
        transpose(&src, &mut dst, m, n);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(dst[j * m + i], src[i * n + j]);
            }
        }
    }

    #[test]
    fn blocked_matches_plain() {
        let (m, n) = (16usize, 12usize);
        let src = ramp(m * n);
        let mut a = vec![Cplx::ZERO; m * n];
        let mut b = vec![Cplx::ZERO; m * n];
        transpose(&src, &mut a, m, n);
        for blk in [1usize, 2, 4, 5, 16, 100] {
            transpose_blocked(&src, &mut b, m, n, blk);
            assert_eq!(a, b, "block size {blk}");
        }
    }

    #[test]
    fn traces_cover_every_element_once() {
        let (m, n) = (8usize, 8usize);
        for threads in [1usize, 2, 4] {
            let mut h = CountingHook::default();
            trace_transpose(m, n, threads, Region::BufA, Region::BufB, &mut h);
            assert_eq!(h.reads, (m * n) as u64);
            assert_eq!(h.writes, (m * n) as u64);
            let mut hb = CountingHook::default();
            trace_transpose_blocked(m, n, 4, threads, Region::BufA, Region::BufB, &mut hb);
            assert_eq!(hb.reads, (m * n) as u64);
            assert_eq!(hb.writes, (m * n) as u64);
        }
    }
}
