//! Iterative in-place radix-2 FFT with bit-reversal permutation — the
//! classic memory-access pattern whose large strides cause the false
//! sharing the paper's §2.2 discusses.

use spiral_spl::cplx::Cplx;
use spiral_spl::num::{is_pow2, omega_pow};

/// In-place radix-2 DIT FFT. Power-of-two sizes only.
pub struct IterativeFft {
    /// Transform size (power of two).
    pub n: usize,
    /// Precomputed twiddles ω_n^k for k < n/2.
    twiddles: Vec<Cplx>,
    /// Bit-reversal table.
    rev: Vec<u32>,
}

impl IterativeFft {
    /// Precompute twiddles and the bit-reversal table for size `n`.
    pub fn new(n: usize) -> IterativeFft {
        assert!(
            is_pow2(n),
            "iterative radix-2 needs a power of two, got {n}"
        );
        let bits = n.trailing_zeros();
        let rev = (0..u32::try_from(n).expect("transform size below 2^32"))
            .map(|i| {
                if n == 1 {
                    0
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect();
        let twiddles = (0..n / 2).map(|k| omega_pow(n, k)).collect();
        IterativeFft { n, twiddles, rev }
    }

    /// Compute the forward DFT of `x`.
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), self.n);
        let mut a: Vec<Cplx> = (0..self.n).map(|i| x[self.rev[i] as usize]).collect();
        self.butterflies(&mut a);
        a
    }

    fn butterflies(&self, a: &mut [Cplx]) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len; // twiddle index stride
            let mut base = 0;
            while base < n {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let u = a[base + k];
                    let t = a[base + k + half] * w;
                    a[base + k] = u + t;
                    a[base + k + half] = u - t;
                }
                base += len;
            }
            len *= 2;
        }
    }

    /// Flop estimate (10 real flops per butterfly, n/2·log2 n butterflies).
    pub fn flops(&self) -> u64 {
        let lg = self.n.trailing_zeros() as u64;
        10 * (self.n as u64 / 2) * lg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(1.0 + k as f64, -0.25 * k as f64))
            .collect()
    }

    #[test]
    fn matches_dft() {
        for n in [1usize, 2, 4, 8, 32, 128, 1024] {
            let x = ramp(n);
            let y = IterativeFft::new(n).run(&x);
            let want = spiral_spl::builder::dft(n).eval(&x);
            assert_slices_close(&y, &want, 1e-8 * n.max(4) as f64);
        }
    }

    #[test]
    fn bit_reversal_is_involution() {
        let f = IterativeFft::new(64);
        for i in 0..64u32 {
            let r = f.rev[i as usize];
            assert_eq!(f.rev[r as usize], i);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        IterativeFft::new(12);
    }

    #[test]
    fn flops_estimate() {
        assert_eq!(IterativeFft::new(8).flops(), 10 * 4 * 3);
    }
}
