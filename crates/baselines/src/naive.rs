//! Naive O(n²) DFT — the correctness reference.

use spiral_spl::apply::naive_dft;
use spiral_spl::cplx::Cplx;

/// Direct evaluation of the defining matrix-vector product.
pub struct NaiveDft {
    /// Transform size.
    pub n: usize,
}

impl NaiveDft {
    /// Reference transform of size `n`.
    pub fn new(n: usize) -> NaiveDft {
        NaiveDft { n }
    }

    /// Compute the DFT by the defining O(n²) sum.
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        let mut y = vec![Cplx::ZERO; self.n];
        naive_dft(self.n, x, &mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_formula_dft() {
        let n = 12;
        let x: Vec<Cplx> = (0..n).map(|k| Cplx::new(k as f64, -1.0)).collect();
        let y = NaiveDft::new(n).run(&x);
        let want = spiral_spl::builder::dft(n).eval(&x);
        spiral_spl::cplx::assert_slices_close(&y, &want, 1e-9);
    }
}
