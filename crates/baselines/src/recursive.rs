//! Textbook recursive radix-2 Cooley–Tukey (decimation in time), with a
//! naive fallback for odd factors. Allocation-heavy on purpose — this is
//! the "clean pseudocode" implementation libraries are measured against.

use spiral_spl::apply::naive_dft;
use spiral_spl::cplx::Cplx;
use spiral_spl::num::omega_pow;

/// Recursive DIT FFT.
pub struct RecursiveFft {
    /// Transform size.
    pub n: usize,
}

impl RecursiveFft {
    /// Recursive transform of size `n`.
    pub fn new(n: usize) -> RecursiveFft {
        assert!(n >= 1);
        RecursiveFft { n }
    }

    /// Compute the forward DFT of `x`.
    pub fn run(&self, x: &[Cplx]) -> Vec<Cplx> {
        assert_eq!(x.len(), self.n);
        rec(x)
    }
}

fn rec(x: &[Cplx]) -> Vec<Cplx> {
    let n = x.len();
    if n == 1 {
        return x.to_vec();
    }
    if !n.is_multiple_of(2) {
        let mut y = vec![Cplx::ZERO; n];
        naive_dft(n, x, &mut y);
        return y;
    }
    let even: Vec<Cplx> = x.iter().step_by(2).copied().collect();
    let odd: Vec<Cplx> = x.iter().skip(1).step_by(2).copied().collect();
    let e = rec(&even);
    let o = rec(&odd);
    let mut y = vec![Cplx::ZERO; n];
    for k in 0..n / 2 {
        let t = o[k] * omega_pow(n, k);
        y[k] = e[k] + t;
        y[k + n / 2] = e[k] - t;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_spl::cplx::assert_slices_close;

    fn ramp(n: usize) -> Vec<Cplx> {
        (0..n)
            .map(|k| Cplx::new(k as f64, 0.5 * k as f64))
            .collect()
    }

    #[test]
    fn matches_dft_for_pow2_and_mixed() {
        for n in [1usize, 2, 4, 8, 16, 64, 6, 12, 20, 15] {
            let x = ramp(n);
            let y = RecursiveFft::new(n).run(&x);
            let want = spiral_spl::builder::dft(n).eval(&x);
            assert_slices_close(&y, &want, 1e-8 * n.max(4) as f64);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_length() {
        RecursiveFft::new(8).run(&ramp(4));
    }
}
