//! End-to-end fleet tests against real worker processes: bitwise
//! equality with the single-process executor, exact accounting, and
//! zero leaked processes or `/dev/shm` artifacts.

use spiral_codegen::plan::Plan;
use spiral_dist::{DistConfig, DistExecutor};
use spiral_rewrite::multicore_dft_expanded;
use spiral_spl::ast::Spl;
use spiral_spl::cplx::Cplx;
use std::path::Path;
use std::sync::Mutex;

/// Serializes tests that touch `SPIRAL_DIST_WORKER` (the constructor is
/// the only reader, so only `DistExecutor::new` needs the lock).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_worker_env<T>(f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var("SPIRAL_DIST_WORKER", env!("CARGO_BIN_EXE_dist-worker"));
    f()
}

fn formula(n: usize, p: usize) -> Spl {
    multicore_dft_expanded(n, p, 4, None, 8).unwrap()
}

fn input(n: usize, trial: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(j as f64 + trial as f64, -0.5 * j as f64 + 0.25))
        .collect()
}

fn assert_bitwise_eq(single: &[Cplx], dist: &[Cplx], ctx: &str) {
    assert_eq!(single.len(), dist.len(), "{ctx}: length mismatch");
    for (i, (a, b)) in single.iter().zip(dist).enumerate() {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "{ctx}: bitwise mismatch at {i}: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn fleet_matches_single_process_bitwise() {
    for (n, p, q) in [(256usize, 4usize, 2usize), (1024, 4, 4)] {
        let f = formula(n, p);
        let plan = Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges();
        let mut ex =
            with_worker_env(|| DistExecutor::new(&f, p, 4, q, DistConfig::default())).unwrap();
        assert_eq!(ex.live_workers(), q);
        for trial in 0..3 {
            let x = input(n, trial);
            let single = plan.execute(&x);
            let dist = ex.execute(&x).unwrap();
            assert_bitwise_eq(&single, &dist, &format!("n={n} q={q} trial={trial}"));
        }
        let report = ex.shutdown();
        assert!(
            report.accounting.is_exact(),
            "accounting must balance: {:?}",
            report.accounting
        );
        assert_eq!(report.accounting.worker_shards, 3 * q as u64);
        assert_eq!(report.accounting.rescued_shards, 0);
        assert_eq!(report.accounting.manager_shards, 0);
        assert!(report.accounting.quarantines.is_empty());
        assert_eq!(report.clean_exits, q, "all workers exit on Shutdown");
        assert_eq!(report.killed, 0);
    }
}

/// The ISSUE's property grid: `dist(q)` is bitwise-equal to the
/// single-process execution of the *same* fused plan for q ∈ {2, 4}
/// across n ∈ {2^8 .. 2^14}, over real worker processes. Combos whose
/// outer factor does not split q ways are skipped — that is
/// non-applicability, not a failure — but each q must run at least once
/// so a regression cannot silently skip the whole grid.
#[test]
fn property_grid_fleet_is_bitwise_equal_for_q_2_and_4_up_to_2_pow_14() {
    let p = 4;
    let mut ran = [0usize; 2];
    for k in [8u32, 10, 12, 14] {
        let n = 1usize << k;
        let f = formula(n, p);
        let plan = Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges();
        for (qi, q) in [2usize, 4].into_iter().enumerate() {
            let mut ex =
                match with_worker_env(|| DistExecutor::new(&f, p, 4, q, DistConfig::default())) {
                    Ok(ex) => ex,
                    Err(spiral_dist::DistError::Shard(_)) => continue,
                    Err(e) => panic!("n=2^{k} q={q}: fleet construction failed: {e}"),
                };
            ran[qi] += 1;
            let mut dist = vec![Cplx::ZERO; n];
            for trial in 0..2 {
                let x = input(n, trial);
                let single = plan.execute(&x);
                ex.execute_into(&x, &mut dist).unwrap();
                assert_bitwise_eq(&single, &dist, &format!("grid n=2^{k} q={q} trial={trial}"));
            }
            let report = ex.shutdown();
            assert!(
                report.accounting.is_exact(),
                "n=2^{k} q={q}: accounting must balance: {:?}",
                report.accounting
            );
            assert!(report.accounting.quarantines.is_empty());
        }
    }
    assert!(ran[0] > 0, "q=2 never admissible across the grid");
    assert!(ran[1] > 0, "q=4 never admissible across the grid");
}

#[test]
fn shutdown_leaves_no_processes_or_shm_artifacts() {
    let n = 256;
    let f = formula(n, 4);
    let mut ex = with_worker_env(|| DistExecutor::new(&f, 4, 4, 2, DistConfig::default())).unwrap();
    let pids = ex.worker_pids();
    let paths = ex.artifact_paths();
    assert_eq!(pids.len(), 2);
    for p in &paths {
        assert!(
            p.exists(),
            "{} should exist while the fleet runs",
            p.display()
        );
    }
    let x = input(n, 0);
    ex.execute_into(&x, &mut vec![Cplx::ZERO; n]).unwrap();
    let report = ex.shutdown();
    assert_eq!(report.clean_exits + report.killed, 2);
    for pid in pids {
        assert!(
            !Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} still running after shutdown"
        );
    }
    for p in &paths {
        assert!(!p.exists(), "{} leaked past shutdown", p.display());
    }
}

#[test]
fn drop_without_shutdown_cleans_up() {
    let n = 256;
    let f = formula(n, 4);
    let ex = with_worker_env(|| DistExecutor::new(&f, 4, 4, 2, DistConfig::default())).unwrap();
    let pids = ex.worker_pids();
    let paths = ex.artifact_paths();
    drop(ex);
    for pid in pids {
        assert!(
            !Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} survived Drop"
        );
    }
    for p in &paths {
        assert!(!p.exists(), "{} survived Drop", p.display());
    }
}

/// The CI cancellation guard: when the *manager* dies without running
/// any destructor (SIGKILL, a cancelled CI job), the orphaned workers
/// see control-socket EOF and perform the last-resort unlink of the
/// session's `/dev/shm` files themselves. The test re-executes itself
/// as a child that builds a live fleet and then `abort()`s mid-session,
/// then watches every artifact disappear.
#[test]
fn manager_sigkill_leaves_no_shm_artifacts_behind() {
    if std::env::var("SPIRAL_DIST_ORPHAN_CHILD").is_ok() {
        // Child mode: build a fleet, report its artifacts, die rudely.
        std::env::set_var("SPIRAL_DIST_WORKER", env!("CARGO_BIN_EXE_dist-worker"));
        let f = formula(256, 4);
        let ex = DistExecutor::new(&f, 4, 4, 2, DistConfig::default()).unwrap();
        for p in ex.artifact_paths() {
            println!("ARTIFACT {}", p.display());
        }
        // No Drop, no Shutdown frames — the manager just vanishes.
        std::process::abort();
    }

    let exe = std::env::current_exe().unwrap();
    let out = std::process::Command::new(exe)
        .args([
            "manager_sigkill_leaves_no_shm_artifacts_behind",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("SPIRAL_DIST_ORPHAN_CHILD", "1")
        .output()
        .expect("re-exec the test binary");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let artifacts: Vec<std::path::PathBuf> = stdout
        .lines()
        .filter_map(|l| l.strip_prefix("ARTIFACT "))
        .map(std::path::PathBuf::from)
        .collect();
    assert!(
        !artifacts.is_empty(),
        "child never built a fleet\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.status.success(), "the child is supposed to abort");

    // The orphaned workers own the cleanup now; give them a moment.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let leaked: Vec<_> = artifacts.iter().filter(|p| p.exists()).collect();
        if leaked.is_empty() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "orphaned session artifacts survived manager death: {leaked:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

#[test]
fn missing_worker_binary_is_a_clean_error() {
    let _g = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var("SPIRAL_DIST_WORKER", "/nonexistent/dist-worker");
    let f = formula(256, 4);
    let result = DistExecutor::new(&f, 4, 4, 2, DistConfig::default());
    std::env::set_var("SPIRAL_DIST_WORKER", env!("CARGO_BIN_EXE_dist-worker"));
    match result {
        Err(spiral_dist::DistError::WorkerBinary(_)) => {}
        Err(e) => panic!("expected WorkerBinary error, got {e}"),
        Ok(_) => panic!("fleet built against a nonexistent worker binary"),
    }
}

#[test]
fn unshardable_request_is_rejected_before_spawning() {
    // q = 8 > 4 chunks: shard_plan refuses, so no process is spawned.
    let f = formula(256, 4);
    match with_worker_env(|| DistExecutor::new(&f, 4, 4, 8, DistConfig::default())) {
        Err(spiral_dist::DistError::Shard(_)) => {}
        Err(e) => panic!("expected Shard error, got {e}"),
        Ok(_) => panic!("fleet built for an unshardable q"),
    }
}
