//! Chaos acceptance for the process fleet (the `faults` feature):
//! deterministic fault injection at every dist site must yield the
//! bitwise-correct result via quarantine + rescue, exact accounting,
//! and zero orphan processes or leaked `/dev/shm` artifacts.
//!
//! Run with `cargo test -p spiral-dist --features faults`.

#![cfg(feature = "faults")]

use spiral_codegen::plan::Plan;
use spiral_dist::{DistConfig, DistExecutor};
use spiral_rewrite::multicore_dft_expanded;
use spiral_smp::faults::{install_dist, DistFaultPlan, DistFaultSpec, DistSite};
use spiral_spl::ast::Spl;
use spiral_spl::cplx::Cplx;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_worker_env<T>(f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::env::set_var("SPIRAL_DIST_WORKER", env!("CARGO_BIN_EXE_dist-worker"));
    f()
}

fn formula(n: usize, p: usize) -> Spl {
    multicore_dft_expanded(n, p, 4, None, 8).unwrap()
}

fn input(n: usize, trial: usize) -> Vec<Cplx> {
    (0..n)
        .map(|j| Cplx::new(1.0 + j as f64 * 0.5 + trial as f64, -0.25 * j as f64))
        .collect()
}

fn assert_bitwise_eq(single: &[Cplx], dist: &[Cplx], ctx: &str) {
    for (i, (a, b)) in single.iter().zip(dist).enumerate() {
        assert!(
            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
            "{ctx}: bitwise mismatch at {i}: {a:?} vs {b:?}"
        );
    }
}

fn fast_config() -> DistConfig {
    DistConfig {
        batch_timeout: Duration::from_millis(400),
        ..DistConfig::default()
    }
}

/// Drive `batches` executions under an installed fault plan and verify
/// every result bitwise, then tear down and verify accounting, orphan
/// freedom, and artifact cleanup. Returns the shutdown report.
fn run_and_audit(
    f: &Spl,
    p: usize,
    q: usize,
    batches: usize,
    cfg: DistConfig,
) -> spiral_dist::DistShutdownReport {
    let plan = Plan::from_formula(f, p, 4).unwrap().fuse_exchanges();
    let n = plan.n;
    let mut ex = with_worker_env(|| DistExecutor::new(f, p, 4, q, cfg)).unwrap();
    let pids = ex.worker_pids();
    let paths = ex.artifact_paths();
    for trial in 0..batches {
        let x = input(n, trial);
        let single = plan.execute(&x);
        let dist = ex.execute(&x).unwrap();
        assert_bitwise_eq(&single, &dist, &format!("q={q} batch={trial}"));
    }
    let report = ex.shutdown();
    assert!(
        report.accounting.is_exact(),
        "accounting must balance: {:?}",
        report.accounting
    );
    assert_eq!(report.accounting.batches, batches as u64);
    for pid in pids {
        assert!(
            !Path::new(&format!("/proc/{pid}")).exists(),
            "worker {pid} orphaned"
        );
    }
    for path in paths {
        assert!(!path.exists(), "{} leaked", path.display());
    }
    report
}

#[test]
fn worker_kill_mid_batch_is_rescued_with_exact_accounting() {
    let f = formula(256, 4);
    let _g = install_dist(DistFaultPlan {
        seed: 1,
        specs: vec![DistFaultSpec::once(DistSite::WorkerKill, 1)],
    });
    let report = run_and_audit(&f, 4, 2, 3, DistConfig::default());
    let a = &report.accounting;
    // Batch 1: shard 0 by worker, shard 1 killed → rescued. Batches
    // 2–3: shard 0 by worker, shard 1 on the manager (quarantined).
    assert_eq!(a.worker_shards, 3);
    assert_eq!(a.rescued_shards, 1);
    assert_eq!(a.manager_shards, 2);
    assert_eq!(a.quarantines.len(), 1);
    assert_eq!(a.quarantines[0].shard, 1);
    assert_eq!(a.quarantines[0].batch, 1);
    assert!(
        a.quarantines[0].reason.contains("died mid-batch"),
        "{}",
        a.quarantines[0].reason
    );
    // The killed worker cannot exit cleanly; it was reaped at
    // quarantine time, so shutdown only sees the survivor.
    assert_eq!(report.clean_exits, 1);
    assert_eq!(report.killed, 0);
}

#[test]
fn torn_slab_publish_is_detected_and_rescued() {
    let f = formula(256, 4);
    let _g = install_dist(DistFaultPlan {
        seed: 2,
        specs: vec![DistFaultSpec::once(DistSite::SlabTornWrite, 0)],
    });
    let report = run_and_audit(&f, 4, 2, 2, DistConfig::default());
    let a = &report.accounting;
    assert_eq!(a.rescued_shards, 1);
    assert_eq!(a.manager_shards, 1);
    assert_eq!(a.quarantines.len(), 1);
    assert_eq!(a.quarantines[0].shard, 0);
    assert!(
        a.quarantines[0].reason.contains("torn"),
        "{}",
        a.quarantines[0].reason
    );
}

#[test]
fn dropped_completion_frame_hits_heartbeat_timeout() {
    let f = formula(256, 4);
    let _g = install_dist(DistFaultPlan {
        seed: 3,
        specs: vec![DistFaultSpec::once(DistSite::ControlFrameDrop, 0)],
    });
    let report = run_and_audit(&f, 4, 2, 2, fast_config());
    let a = &report.accounting;
    assert_eq!(a.rescued_shards, 1);
    assert_eq!(a.quarantines.len(), 1);
    assert!(
        a.quarantines[0].reason.contains("heartbeat timeout"),
        "{}",
        a.quarantines[0].reason
    );
}

#[test]
fn heartbeat_stall_is_quarantined() {
    let f = formula(256, 4);
    let _g = install_dist(DistFaultPlan {
        seed: 4,
        specs: vec![DistFaultSpec::once(DistSite::HeartbeatStall, 1)],
    });
    let report = run_and_audit(&f, 4, 2, 2, fast_config());
    let a = &report.accounting;
    assert_eq!(a.rescued_shards, 1);
    assert_eq!(a.quarantines.len(), 1);
    assert_eq!(a.quarantines[0].shard, 1);
    assert!(
        a.quarantines[0].reason.contains("heartbeat timeout"),
        "{}",
        a.quarantines[0].reason
    );
}

#[test]
fn sequential_rescue_survives_every_worker_dying() {
    // Kill all q workers on the first batch: the manager must rescue
    // every shard sequentially and keep serving correct batches alone.
    let f = formula(1024, 4);
    let _g = install_dist(DistFaultPlan {
        seed: 5,
        specs: vec![DistFaultSpec::with_probability(DistSite::WorkerKill, 1.0)],
    });
    let report = run_and_audit(&f, 4, 4, 3, DistConfig::default());
    let a = &report.accounting;
    assert_eq!(a.worker_shards, 0);
    assert_eq!(a.rescued_shards, 4, "all shards of batch 1 rescued");
    assert_eq!(a.manager_shards, 8, "batches 2–3 run fully on the manager");
    assert_eq!(a.quarantines.len(), 4);
    assert_eq!(report.clean_exits, 0);
}

#[test]
fn probabilistic_chaos_grid_stays_correct_and_leak_free() {
    let f = formula(256, 4);
    for seed in [11u64, 12, 13] {
        let _g = install_dist(DistFaultPlan {
            seed,
            specs: vec![
                DistFaultSpec::with_probability(DistSite::WorkerKill, 0.15),
                DistFaultSpec::with_probability(DistSite::SlabTornWrite, 0.15),
                DistFaultSpec::with_probability(DistSite::ControlFrameDrop, 0.1),
            ],
        });
        let report = run_and_audit(&f, 4, 4, 4, fast_config());
        let a = &report.accounting;
        assert!(a.is_exact(), "seed {seed}: {a:?}");
    }
}
