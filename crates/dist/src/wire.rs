//! Length-prefixed control-plane framing between the fleet manager and
//! its worker processes.
//!
//! Same shape as the serving tier's wire format (u32-LE length prefix,
//! 4-byte magic, little-endian fields) but an independent module: the
//! dependency arrow runs serve → dist, so dist cannot borrow serve's
//! framing — and the two protocols version independently anyway. The
//! bulk data never rides this socket; it moves through the `/dev/shm`
//! slabs ([`crate::slab`]). Control frames are tiny and fixed-shape,
//! except [`Frame::Config`], which carries the formula ASCII the worker
//! compiles its plan from.
//!
//! Reads distinguish three failure shapes the manager reacts to
//! differently: *clean EOF* (peer exited between frames — worker death),
//! *torn EOF* (died mid-frame), and *timeout* (the heartbeat deadline —
//! quarantine the worker).

use std::fmt;
use std::io::{self, Read, Write};

/// Hard ceiling on a control frame's payload. Control frames carry at
/// most a formula string; anything larger is a corrupt length prefix.
pub const MAX_FRAME_BYTES: u32 = 1 << 20;

/// Directive bit: abort after reading the input slab, before publishing
/// the output (the `WorkerKill` fault site).
pub const DIRECTIVE_KILL: u8 = 1;
/// Directive bit: publish a torn output slab — odd seqlock, half the
/// payload (the `SlabTornWrite` fault site).
pub const DIRECTIVE_TORN: u8 = 1 << 1;
/// Directive bit: complete the batch but drop the completion frame
/// (the `ControlFrameDrop` fault site).
pub const DIRECTIVE_DROP: u8 = 1 << 2;
/// Directive bit: sleep `stall_ms` before replying (the
/// `HeartbeatStall` fault site).
pub const DIRECTIVE_STALL: u8 = 1 << 3;

/// A control-plane frame. The worker → manager direction is `Hello`,
/// `Ready`, `Done`, `Pong`; the manager → worker direction is `Config`,
/// `Dispatch`, `Ping`, `Shutdown`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Worker announces itself after connecting: which shard it was
    /// spawned for and its OS pid.
    Hello {
        /// Shard index from the worker's argv.
        shard: u32,
        /// Worker process id.
        pid: u32,
    },
    /// Manager hands the worker everything it needs to compile its own
    /// plan — bitwise identical to the manager's, because both sides run
    /// the same `parse → from_formula → fuse → shard` pipeline.
    Config {
        /// Shard index the worker must confirm.
        shard: u32,
        /// Worker process count `q`.
        q: u32,
        /// Thread count the plan was lowered for (chunk-grid identity).
        threads: u32,
        /// Cache-line parameter µ.
        mu: u32,
        /// Formula ASCII (`Spl` display form; round-trips exactly).
        formula: String,
    },
    /// Worker's verdict on its `Config`: compiled and ready, or not.
    Ready {
        /// Shard index.
        shard: u32,
        /// True when the worker compiled its plan and opened its slab.
        ok: bool,
        /// Failure detail when `ok` is false.
        message: String,
    },
    /// Manager dispatches one batch: the input slab is published under
    /// generation `batch`; compute and publish the output slab.
    Dispatch {
        /// Batch generation (1-based, monotonic).
        batch: u64,
        /// Fault-injection directive bits (`DIRECTIVE_*`); 0 in
        /// production.
        directive: u8,
        /// Stall duration for `DIRECTIVE_STALL`, in milliseconds.
        stall_ms: u32,
    },
    /// Worker completed a batch.
    Done {
        /// Batch generation being acknowledged.
        batch: u64,
        /// Shard index.
        shard: u32,
        /// False when the worker could not produce the output (e.g. it
        /// read a torn input slab); the manager rescues the shard.
        ok: bool,
    },
    /// Liveness probe.
    Ping {
        /// Echo token.
        token: u64,
    },
    /// Liveness probe reply.
    Pong {
        /// Echoed token.
        token: u64,
    },
    /// Manager asks the worker to exit cleanly.
    Shutdown,
}

/// Framing/decoding failure.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the stream mid-frame.
    TornEof {
        /// Bytes received before EOF.
        got: usize,
        /// Bytes the frame section needed.
        want: usize,
    },
    /// The read timed out (heartbeat deadline).
    Stalled,
    /// The length prefix is out of range.
    BadLength(u32),
    /// Unknown frame magic.
    BadMagic([u8; 4]),
    /// The payload does not decode as its magic's shape.
    Malformed(&'static str),
    /// Transport error.
    Io(io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::TornEof { got, want } => {
                write!(f, "stream closed mid-frame ({got}/{want} bytes)")
            }
            WireError::Stalled => write!(f, "read timed out"),
            WireError::BadLength(l) => write!(f, "frame length {l} out of range"),
            WireError::BadMagic(m) => write!(f, "unknown frame magic {m:?}"),
            WireError::Malformed(d) => write!(f, "malformed frame: {d}"),
            WireError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_str(b: &mut Vec<u8>, s: &str) {
    put_u32(b, u32::try_from(s.len()).expect("string fits a frame"));
    b.extend_from_slice(s.as_bytes());
}

impl Frame {
    fn magic(&self) -> &'static [u8; 4] {
        match self {
            Frame::Hello { .. } => b"DH01",
            Frame::Config { .. } => b"DC01",
            Frame::Ready { .. } => b"DY01",
            Frame::Dispatch { .. } => b"DD01",
            Frame::Done { .. } => b"DN01",
            Frame::Ping { .. } => b"DP01",
            Frame::Pong { .. } => b"DG01",
            Frame::Shutdown => b"DX01",
        }
    }

    /// Serialize the frame payload (magic + fields, no length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(32);
        b.extend_from_slice(self.magic());
        match self {
            Frame::Hello { shard, pid } => {
                put_u32(&mut b, *shard);
                put_u32(&mut b, *pid);
            }
            Frame::Config {
                shard,
                q,
                threads,
                mu,
                formula,
            } => {
                put_u32(&mut b, *shard);
                put_u32(&mut b, *q);
                put_u32(&mut b, *threads);
                put_u32(&mut b, *mu);
                put_str(&mut b, formula);
            }
            Frame::Ready { shard, ok, message } => {
                put_u32(&mut b, *shard);
                b.push(u8::from(*ok));
                put_str(&mut b, message);
            }
            Frame::Dispatch {
                batch,
                directive,
                stall_ms,
            } => {
                put_u64(&mut b, *batch);
                b.push(*directive);
                put_u32(&mut b, *stall_ms);
            }
            Frame::Done { batch, shard, ok } => {
                put_u64(&mut b, *batch);
                put_u32(&mut b, *shard);
                b.push(u8::from(*ok));
            }
            Frame::Ping { token } => put_u64(&mut b, *token),
            Frame::Pong { token } => put_u64(&mut b, *token),
            Frame::Shutdown => {}
        }
        b
    }
}

/// Write one length-prefixed frame and flush.
pub fn write_frame(w: &mut impl Write, f: &Frame) -> io::Result<()> {
    let p = f.encode();
    let len = u32::try_from(p.len()).expect("control frame fits u32");
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&p)?;
    w.flush()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fill `buf` completely. `Ok(false)` = clean EOF before the first byte
/// (only honored when `clean_eof_ok`); EOF mid-buffer is a torn frame.
fn read_section(r: &mut impl Read, buf: &mut [u8], clean_eof_ok: bool) -> Result<bool, WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && clean_eof_ok {
                    return Ok(false);
                }
                return Err(WireError::TornEof {
                    got,
                    want: buf.len(),
                });
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(WireError::Stalled),
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` = the peer closed the stream cleanly
/// between frames; timeouts surface as [`WireError::Stalled`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, WireError> {
    let mut lenb = [0u8; 4];
    if !read_section(r, &mut lenb, true)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(lenb);
    if !(4..=MAX_FRAME_BYTES).contains(&len) {
        return Err(WireError::BadLength(len));
    }
    let len = usize::try_from(len).expect("u32 fits usize");
    let mut payload = vec![0u8; len];
    read_section(r, &mut payload, false)?;
    decode(&payload).map(Some)
}

struct Cur<'a> {
    b: &'a [u8],
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.b.len() < n {
            return Err(WireError::Malformed("frame truncated"));
        }
        let (h, t) = self.b.split_at(n);
        self.b = t;
        Ok(h)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let h = self.take(4)?;
        Ok(u32::from_le_bytes(h.try_into().expect("len checked")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let h = self.take(8)?;
        Ok(u64::from_le_bytes(h.try_into().expect("len checked")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let n = usize::try_from(self.u32()?).expect("u32 fits usize");
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("string not utf-8"))
    }

    fn finish(self) -> Result<(), WireError> {
        if self.b.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes"))
        }
    }
}

fn decode(payload: &[u8]) -> Result<Frame, WireError> {
    let (magic, rest) = payload.split_at(4);
    let mut c = Cur { b: rest };
    let frame = match magic {
        b"DH01" => Frame::Hello {
            shard: c.u32()?,
            pid: c.u32()?,
        },
        b"DC01" => Frame::Config {
            shard: c.u32()?,
            q: c.u32()?,
            threads: c.u32()?,
            mu: c.u32()?,
            formula: c.string()?,
        },
        b"DY01" => Frame::Ready {
            shard: c.u32()?,
            ok: c.u8()? != 0,
            message: c.string()?,
        },
        b"DD01" => Frame::Dispatch {
            batch: c.u64()?,
            directive: c.u8()?,
            stall_ms: c.u32()?,
        },
        b"DN01" => Frame::Done {
            batch: c.u64()?,
            shard: c.u32()?,
            ok: c.u8()? != 0,
        },
        b"DP01" => Frame::Ping { token: c.u64()? },
        b"DG01" => Frame::Pong { token: c.u64()? },
        b"DX01" => Frame::Shutdown,
        m => return Err(WireError::BadMagic(m.try_into().expect("len checked"))),
    };
    c.finish()?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut buf = Vec::new();
        write_frame(&mut buf, f).unwrap();
        let mut r = buf.as_slice();
        let got = read_frame(&mut r).unwrap().unwrap();
        assert!(r.is_empty(), "reader consumed the whole frame");
        got
    }

    #[test]
    fn all_frames_roundtrip() {
        let frames = [
            Frame::Hello {
                shard: 3,
                pid: 4242,
            },
            Frame::Config {
                shard: 1,
                q: 4,
                threads: 2,
                mu: 4,
                formula: "(DFT_4 x I_4) L^16_4".to_string(),
            },
            Frame::Ready {
                shard: 0,
                ok: false,
                message: "formula does not parse".to_string(),
            },
            Frame::Dispatch {
                batch: 9,
                directive: DIRECTIVE_TORN | DIRECTIVE_STALL,
                stall_ms: 250,
            },
            Frame::Done {
                batch: 9,
                shard: 2,
                ok: true,
            },
            Frame::Ping { token: 7 },
            Frame::Pong { token: 7 },
            Frame::Shutdown,
        ];
        for f in &frames {
            assert_eq!(&roundtrip(f), f, "{f:?}");
        }
    }

    #[test]
    fn clean_eof_is_none_torn_eof_is_error() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));

        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::Ping { token: 1 }).unwrap();
        let mut torn = &buf[..buf.len() - 3];
        assert!(matches!(
            read_frame(&mut torn),
            Err(WireError::TornEof { .. })
        ));
    }

    #[test]
    fn bad_magic_and_bad_length_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(b"ZZ99");
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::BadMagic(_))
        ));

        let huge = (MAX_FRAME_BYTES + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(WireError::BadLength(_))
        ));
    }

    #[test]
    fn timeout_maps_to_stalled() {
        struct Blocked;
        impl std::io::Read for Blocked {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "no data"))
            }
        }
        assert!(matches!(read_frame(&mut Blocked), Err(WireError::Stalled)));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let mut p = Frame::Ping { token: 1 }.encode();
        p.push(0xAA);
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::try_from(p.len()).unwrap().to_le_bytes());
        buf.extend_from_slice(&p);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::Malformed(_))
        ));
    }
}
