//! The `dist(q)` worker-process entry point.
//!
//! Spawned by the fleet manager as
//! `dist-worker <control-socket> <slab-file> <shard-index>`; everything
//! else arrives over the control socket. See [`spiral_dist::worker`].

fn main() {
    spiral_dist::worker::worker_main();
}
