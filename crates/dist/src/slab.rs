//! Double-buffered `/dev/shm` data slabs with seqlock handoff.
//!
//! The bulk data between manager and worker never rides the control
//! socket: each worker owns one slab file on `tmpfs` holding an *input*
//! and an *output* direction, each double-buffered (two slots). Both
//! processes access it with positioned reads/writes
//! ([`std::os::unix::fs::FileExt`]) on the shared page cache, so a write
//! in one process is immediately visible to a read in the other — no
//! `mmap`, no `unsafe`, std only.
//!
//! Each direction carries a seqlock generation word. The writer of
//! generation `g` publishes into slot `g % 2`:
//!
//! 1. write `seq = 2g − 1` (odd: "write in progress"),
//! 2. write the payload,
//! 3. write `seq = 2g` (even: "generation g published").
//!
//! The reader of generation `g` checks `seq == 2g`, reads the payload,
//! and re-checks — a torn or stale publish is *detected*, never silently
//! consumed. The control plane orders the handoff (the manager writes
//! the input before `Dispatch`, the worker writes the output before
//! `Done`), so in a healthy fleet the check never fails; it exists to
//! catch crashed-mid-write workers and the injected `SlabTornWrite`
//! fault.
//!
//! File layout (all little-endian):
//!
//! ```text
//! [0..8)    magic "SPIRLDS1"
//! [8..16)   n: elements per slot (u64)
//! [16..24)  input seqlock (u64)
//! [24..32)  output seqlock (u64)
//! [32..64)  reserved (zero)
//! [64..)    input slot 0, input slot 1, output slot 0, output slot 1
//!           (each n × 16 bytes: f64 re, f64 im per element)
//! ```

use spiral_spl::cplx::Cplx;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::Path;

/// Slab file magic.
pub const SLAB_MAGIC: &[u8; 8] = b"SPIRLDS1";
const HEADER_BYTES: u64 = 64;
const IN_SEQ_OFF: u64 = 16;
const OUT_SEQ_OFF: u64 = 24;
const ELEM_BYTES: u64 = 16;

/// Which half of the slab a transfer uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Manager → worker (scattered shard input).
    Input,
    /// Worker → manager (computed shard output).
    Output,
}

impl Dir {
    fn label(self) -> &'static str {
        match self {
            Dir::Input => "input",
            Dir::Output => "output",
        }
    }
}

/// Slab access failure.
#[derive(Debug)]
pub enum SlabError {
    /// The seqlock did not match the expected generation — the publish
    /// is torn (writer died mid-write or the injected torn-write fault)
    /// or stale (generation skew).
    Torn {
        /// Which direction was read.
        dir: &'static str,
        /// The seqlock value that proves generation `g` (`2g`).
        expected: u64,
        /// The value found.
        found: u64,
    },
    /// The file is not a slab or was created for a different geometry.
    Geometry(String),
    /// Transport error.
    Io(io::Error),
}

impl fmt::Display for SlabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlabError::Torn {
                dir,
                expected,
                found,
            } => write!(
                f,
                "{dir} slab seqlock is {found}, expected {expected} — torn or stale publish"
            ),
            SlabError::Geometry(d) => write!(f, "slab geometry mismatch: {d}"),
            SlabError::Io(e) => write!(f, "slab i/o error: {e}"),
        }
    }
}

impl std::error::Error for SlabError {}

impl From<io::Error> for SlabError {
    fn from(e: io::Error) -> SlabError {
        SlabError::Io(e)
    }
}

/// One worker's slab: an open handle plus the slot geometry.
pub struct Slab {
    file: File,
    /// Elements per slot (the shard's region length).
    len: usize,
}

impl Slab {
    /// Create a slab file for `len`-element slots, sized and zeroed.
    pub fn create(path: &Path, len: usize) -> io::Result<Slab> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        let slot = len as u64 * ELEM_BYTES;
        file.set_len(HEADER_BYTES + 4 * slot)?;
        file.write_all_at(SLAB_MAGIC, 0)?;
        file.write_all_at(&(len as u64).to_le_bytes(), 8)?;
        Ok(Slab { file, len })
    }

    /// Open an existing slab, validating magic and slot geometry.
    pub fn open(path: &Path, len: usize) -> Result<Slab, SlabError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut magic = [0u8; 8];
        file.read_exact_at(&mut magic, 0)?;
        if &magic != SLAB_MAGIC {
            return Err(SlabError::Geometry(format!(
                "bad magic {magic:?} in {}",
                path.display()
            )));
        }
        let mut nb = [0u8; 8];
        file.read_exact_at(&mut nb, 8)?;
        let n = u64::from_le_bytes(nb);
        if n != len as u64 {
            return Err(SlabError::Geometry(format!(
                "slab holds {n}-element slots, expected {len}"
            )));
        }
        Ok(Slab { file, len })
    }

    fn seq_off(dir: Dir) -> u64 {
        match dir {
            Dir::Input => IN_SEQ_OFF,
            Dir::Output => OUT_SEQ_OFF,
        }
    }

    fn slot_off(&self, dir: Dir, generation: u64) -> u64 {
        let slot = self.len as u64 * ELEM_BYTES;
        let base = match dir {
            Dir::Input => HEADER_BYTES,
            Dir::Output => HEADER_BYTES + 2 * slot,
        };
        base + (generation % 2) * slot
    }

    fn read_seq(&self, dir: Dir) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.file.read_exact_at(&mut b, Slab::seq_off(dir))?;
        Ok(u64::from_le_bytes(b))
    }

    fn write_seq(&self, dir: Dir, v: u64) -> io::Result<()> {
        self.file.write_all_at(&v.to_le_bytes(), Slab::seq_off(dir))
    }

    fn encode(data: &[Cplx], scratch: &mut Vec<u8>) {
        scratch.clear();
        scratch.reserve(data.len() * 16);
        for c in data {
            scratch.extend_from_slice(&c.re.to_le_bytes());
            scratch.extend_from_slice(&c.im.to_le_bytes());
        }
    }

    /// Publish `data` as generation `generation` (1-based) of `dir`,
    /// with the odd/even seqlock protocol. `scratch` is reused between
    /// calls so the steady state allocates nothing.
    pub fn publish(
        &self,
        dir: Dir,
        generation: u64,
        data: &[Cplx],
        scratch: &mut Vec<u8>,
    ) -> io::Result<()> {
        assert_eq!(data.len(), self.len, "slab publish length mismatch");
        assert!(generation >= 1, "generations are 1-based");
        Slab::encode(data, scratch);
        self.write_seq(dir, 2 * generation - 1)?;
        self.file
            .write_all_at(scratch, self.slot_off(dir, generation))?;
        self.write_seq(dir, 2 * generation)
    }

    /// Publish a *torn* generation: odd seqlock, half the payload. This
    /// is the `SlabTornWrite` fault shape — a writer that died mid-step 2
    /// — used to prove the reader's seqlock check catches it.
    pub fn publish_torn(
        &self,
        dir: Dir,
        generation: u64,
        data: &[Cplx],
        scratch: &mut Vec<u8>,
    ) -> io::Result<()> {
        assert_eq!(data.len(), self.len, "slab publish length mismatch");
        Slab::encode(data, scratch);
        self.write_seq(dir, 2 * generation - 1)?;
        let half = scratch.len() / 2;
        self.file
            .write_all_at(&scratch[..half], self.slot_off(dir, generation))
    }

    /// Consume generation `generation` of `dir` into `out`, verifying
    /// the seqlock before *and* after the payload read.
    pub fn consume(
        &self,
        dir: Dir,
        generation: u64,
        out: &mut [Cplx],
        scratch: &mut Vec<u8>,
    ) -> Result<(), SlabError> {
        assert_eq!(out.len(), self.len, "slab consume length mismatch");
        let expected = 2 * generation;
        let s1 = self.read_seq(dir)?;
        if s1 != expected {
            return Err(SlabError::Torn {
                dir: dir.label(),
                expected,
                found: s1,
            });
        }
        scratch.clear();
        scratch.resize(self.len * 16, 0);
        self.file
            .read_exact_at(scratch, self.slot_off(dir, generation))?;
        for (i, slot) in out.iter_mut().enumerate() {
            let off = i * 16;
            let re = f64::from_le_bytes(scratch[off..off + 8].try_into().expect("len checked"));
            let im =
                f64::from_le_bytes(scratch[off + 8..off + 16].try_into().expect("len checked"));
            *slot = Cplx { re, im };
        }
        let s2 = self.read_seq(dir)?;
        if s2 != expected {
            return Err(SlabError::Torn {
                dir: dir.label(),
                expected,
                found: s2,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    struct TempSlab {
        path: PathBuf,
    }

    impl TempSlab {
        fn new(tag: &str) -> TempSlab {
            let path = std::env::temp_dir().join(format!(
                "spiral-dist-slabtest-{}-{tag}.slab",
                std::process::id()
            ));
            let _ = std::fs::remove_file(&path);
            TempSlab { path }
        }
    }

    impl Drop for TempSlab {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    fn ramp(n: usize, scale: f64) -> Vec<Cplx> {
        (0..n)
            .map(|j| Cplx {
                re: scale * j as f64,
                im: -scale,
            })
            .collect()
    }

    #[test]
    fn publish_consume_roundtrip_across_handles() {
        let t = TempSlab::new("roundtrip");
        let writer = Slab::create(&t.path, 64).unwrap();
        let reader = Slab::open(&t.path, 64).unwrap();
        let mut scratch = Vec::new();
        let mut out = vec![Cplx::ZERO; 64];
        for generation in 1..=5u64 {
            let data = ramp(64, generation as f64);
            writer
                .publish(Dir::Input, generation, &data, &mut scratch)
                .unwrap();
            let mut rscratch = Vec::new();
            reader
                .consume(Dir::Input, generation, &mut out, &mut rscratch)
                .unwrap();
            for (a, b) in data.iter().zip(&out) {
                assert_eq!(a.re.to_bits(), b.re.to_bits());
                assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    #[test]
    fn directions_are_independent() {
        let t = TempSlab::new("dirs");
        let slab = Slab::create(&t.path, 8).unwrap();
        let mut scratch = Vec::new();
        let mut out = vec![Cplx::ZERO; 8];
        slab.publish(Dir::Input, 1, &ramp(8, 1.0), &mut scratch)
            .unwrap();
        slab.publish(Dir::Output, 1, &ramp(8, 2.0), &mut scratch)
            .unwrap();
        slab.consume(Dir::Output, 1, &mut out, &mut scratch)
            .unwrap();
        assert_eq!(out[1].re.to_bits(), 2.0f64.to_bits());
        slab.consume(Dir::Input, 1, &mut out, &mut scratch).unwrap();
        assert_eq!(out[1].re.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn torn_publish_is_detected() {
        let t = TempSlab::new("torn");
        let slab = Slab::create(&t.path, 16).unwrap();
        let mut scratch = Vec::new();
        let mut out = vec![Cplx::ZERO; 16];
        slab.publish_torn(Dir::Output, 1, &ramp(16, 1.0), &mut scratch)
            .unwrap();
        let e = slab
            .consume(Dir::Output, 1, &mut out, &mut scratch)
            .unwrap_err();
        assert!(
            matches!(
                e,
                SlabError::Torn {
                    expected: 2,
                    found: 1,
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn stale_generation_is_detected() {
        let t = TempSlab::new("stale");
        let slab = Slab::create(&t.path, 16).unwrap();
        let mut scratch = Vec::new();
        let mut out = vec![Cplx::ZERO; 16];
        slab.publish(Dir::Input, 1, &ramp(16, 1.0), &mut scratch)
            .unwrap();
        // Reader expects generation 2, writer never published it.
        let e = slab
            .consume(Dir::Input, 2, &mut out, &mut scratch)
            .unwrap_err();
        assert!(
            matches!(
                e,
                SlabError::Torn {
                    expected: 4,
                    found: 2,
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn open_rejects_wrong_geometry_and_magic() {
        let t = TempSlab::new("geom");
        let _slab = Slab::create(&t.path, 32).unwrap();
        assert!(matches!(
            Slab::open(&t.path, 64),
            Err(SlabError::Geometry(_))
        ));
        std::fs::write(&t.path, b"not a slab at all").unwrap();
        assert!(matches!(
            Slab::open(&t.path, 32),
            Err(SlabError::Geometry(_))
        ));
    }
}
