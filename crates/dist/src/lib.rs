//! # spiral-dist — the `dist(q)` multi-process sharded execution tier
//!
//! The paper's shared-memory program generation targets one process of
//! `p` threads. This crate adds the next tier up: a **fleet of `q`
//! single-address-space worker processes** executing the shardable
//! prefix of a fused plan, coordinated by a manager that finishes the
//! unsharded tail in-process. In SPL terms, a formula tagged `dist(q)`
//! ([`spiral_spl::builder::dist_tag`]) asks for its outermost tensor
//! factor to be split across `q` processes.
//!
//! Architecture (one module per layer):
//!
//! * [`wire`] — length-prefixed Unix-socket control frames (handshake,
//!   dispatch, completion, shutdown). Control only; no bulk data.
//! * [`slab`] — per-worker double-buffered `/dev/shm` data slabs with
//!   seqlock generation handoff; torn publishes are detected, never
//!   consumed. No `mmap`, no `unsafe` — positioned file i/o on `tmpfs`
//!   shares the page cache between processes.
//! * [`worker`] — the worker protocol: compile the *same* plan the
//!   manager has from the formula ASCII in the handshake, then compute
//!   dispatched batches with [`spiral_codegen::shard::execute_shard_into`].
//! * [`fleet`] — the manager: spawn/handshake, per-batch
//!   scatter → dispatch → collect → tail, heartbeat-driven quarantine
//!   with in-process rescue, exact per-shard accounting, and teardown
//!   that leaves no process and no `/dev/shm` artifact behind.
//!
//! Correctness story: workers run the identical chunk programs over the
//! identical values a single-process execution would (the manager
//! pre-applies the plan's step-0 gather at scatter time), so dist
//! results are **bitwise equal** to [`spiral_codegen::plan::Plan::execute`]
//! — including batches where workers were killed mid-flight and their
//! shards rescued. The shard geometry itself is certified by
//! `spiral_verify::certify::shards`, and the single-process ↔ dist
//! crossover is priced by `spiral_sim::estimate_dist`.

#![warn(missing_docs)]

pub mod fleet;
pub mod slab;
pub mod wire;
pub mod worker;

pub use fleet::{
    shm_dir, worker_binary, DistAccounting, DistConfig, DistError, DistExecutor,
    DistShutdownReport, QuarantineRecord, SESSION_PREFIX,
};
