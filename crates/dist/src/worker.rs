//! The worker-process side of the fleet protocol.
//!
//! A worker is handed three things on its command line: the manager's
//! control socket, its slab file, and its shard index. Everything else
//! arrives in the [`Frame::Config`] handshake — notably the formula
//! ASCII, from which the worker compiles its *own* plan through the
//! exact pipeline the manager used (`parse → from_formula → fuse →
//! shard`). Formula display round-trips exactly, so the worker's chunk
//! programs are bitwise identical to the manager's; running them over
//! the scattered slab input therefore reproduces the single-process
//! intermediate values bit for bit.
//!
//! The worker owns no policy: it computes batches when dispatched,
//! answers pings, and exits on `Shutdown` *or on control-socket EOF* —
//! so a manager that dies (even by `SIGKILL`) never strands a worker
//! process.

use crate::slab::{Dir, Slab};
use crate::wire::{
    read_frame, write_frame, Frame, DIRECTIVE_DROP, DIRECTIVE_KILL, DIRECTIVE_STALL, DIRECTIVE_TORN,
};
use spiral_codegen::plan::Plan;
use spiral_codegen::shard::{execute_shard_into, shard_plan, ShardWorkspace};
use spiral_spl::cplx::Cplx;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Compile the worker's plan from the handshake parameters — the same
/// call sequence the manager ran, for bitwise-identical chunk programs.
fn compile(
    formula: &str,
    threads: usize,
    mu: usize,
    q: usize,
) -> Result<(Plan, spiral_codegen::shard::ShardSpec), String> {
    let f = spiral_spl::parse(formula).map_err(|e| format!("formula does not parse: {e}"))?;
    let plan = Plan::from_formula(&f, threads, mu)
        .map_err(|e| format!("formula does not lower: {e}"))?
        .fuse_exchanges();
    let spec = shard_plan(&plan, q).map_err(|e| format!("plan does not shard: {e}"))?;
    Ok((plan, spec))
}

/// A complete worker `main`: parse `argv` under the
/// `<control-socket> <slab-file> <shard-index>` contract, run the
/// protocol, and exit with the worker's conventional status codes
/// (0 clean, 1 protocol error, 2 usage). Exposed so downstream crates
/// can ship their own worker entry point next to their executables —
/// the serving tier's `serve-dist-worker` shim is exactly this call.
pub fn worker_main() -> ! {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 4 {
        eprintln!("usage: dist-worker <control-socket> <slab-file> <shard-index>");
        std::process::exit(2);
    }
    let Ok(shard) = args[3].parse::<usize>() else {
        eprintln!("dist-worker: shard index `{}` is not a number", args[3]);
        std::process::exit(2);
    };
    if let Err(e) = run_worker(&args[1], &args[2], shard) {
        eprintln!("dist-worker[{shard}]: {e}");
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// Last-resort session cleanup when the control socket hits EOF
/// *without* a `Shutdown` frame: the manager died (crash, SIGKILL, a
/// cancelled CI job) and will never unlink the session's `/dev/shm`
/// files, so the orphaned worker does. Racing unlinks across shards
/// are harmless — a file already gone is the goal, not an error.
fn orphan_cleanup(socket: &str, slab_path: &str) {
    let _ = std::fs::remove_file(slab_path);
    let _ = std::fs::remove_file(socket);
}

/// Run the worker protocol to completion. Returns `Ok(())` on a clean
/// `Shutdown` (or manager EOF); `Err` carries a human-readable reason
/// for the nonzero exit.
pub fn run_worker(socket: &str, slab_path: &str, shard: usize) -> Result<(), String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    let shard32 = u32::try_from(shard).map_err(|_| "shard index overflows u32".to_string())?;
    write_frame(
        &mut stream,
        &Frame::Hello {
            shard: shard32,
            pid: std::process::id(),
        },
    )
    .map_err(|e| format!("hello: {e}"))?;

    let config = match read_frame(&mut stream) {
        Ok(Some(f)) => f,
        Ok(None) => {
            // Manager gone before config — exit quietly, cleaning up
            // the files it can no longer remove.
            orphan_cleanup(socket, slab_path);
            return Ok(());
        }
        Err(e) => return Err(format!("reading config: {e}")),
    };
    let Frame::Config {
        shard: cfg_shard,
        q,
        threads,
        mu,
        formula,
    } = config
    else {
        return Err(format!("expected Config, got {config:?}"));
    };
    if cfg_shard != shard32 {
        return Err(format!("config for shard {cfg_shard}, I am {shard}"));
    }

    let compiled = compile(
        &formula,
        usize::try_from(threads).expect("u32 fits usize"),
        usize::try_from(mu).expect("u32 fits usize"),
        usize::try_from(q).expect("u32 fits usize"),
    );
    let (plan, spec) = match compiled {
        Ok(ps) => ps,
        Err(msg) => {
            let _ = write_frame(
                &mut stream,
                &Frame::Ready {
                    shard: shard32,
                    ok: false,
                    message: msg.clone(),
                },
            );
            return Err(msg);
        }
    };
    let region_len = spec.regions[shard].len;
    let slab = match Slab::open(Path::new(slab_path), region_len) {
        Ok(s) => s,
        Err(e) => {
            let msg = format!("opening slab {slab_path}: {e}");
            let _ = write_frame(
                &mut stream,
                &Frame::Ready {
                    shard: shard32,
                    ok: false,
                    message: msg.clone(),
                },
            );
            return Err(msg);
        }
    };

    let mut input = vec![Cplx::ZERO; region_len];
    let mut output = vec![Cplx::ZERO; region_len];
    let mut ws = ShardWorkspace::default();
    let mut scratch: Vec<u8> = Vec::with_capacity(region_len * 16);

    write_frame(
        &mut stream,
        &Frame::Ready {
            shard: shard32,
            ok: true,
            message: String::new(),
        },
    )
    .map_err(|e| format!("ready: {e}"))?;

    loop {
        match read_frame(&mut stream) {
            Ok(Some(Frame::Dispatch {
                batch,
                directive,
                stall_ms,
            })) => {
                let ok = slab
                    .consume(Dir::Input, batch, &mut input, &mut scratch)
                    .is_ok();
                // Fault directives arrive only from a fault-injected
                // manager (the registry in crates/smp); a production
                // manager always sends directive 0. They are honored
                // unconditionally so the worker binary's behavior does
                // not depend on feature unification across the
                // workspace build.
                if ok && directive & DIRECTIVE_KILL != 0 {
                    // Die exactly mid-batch: input consumed, output
                    // never published.
                    std::process::abort();
                }
                if ok {
                    execute_shard_into(&plan, &spec, shard, &input, &mut output, &mut ws);
                    let publish = if directive & DIRECTIVE_TORN != 0 {
                        slab.publish_torn(Dir::Output, batch, &output, &mut scratch)
                    } else {
                        slab.publish(Dir::Output, batch, &output, &mut scratch)
                    };
                    if let Err(e) = publish {
                        return Err(format!("publishing batch {batch}: {e}"));
                    }
                }
                if directive & DIRECTIVE_STALL != 0 {
                    std::thread::sleep(Duration::from_millis(u64::from(stall_ms)));
                }
                if directive & DIRECTIVE_DROP != 0 {
                    continue; // work done, completion frame dropped
                }
                if let Err(e) = write_frame(
                    &mut stream,
                    &Frame::Done {
                        batch,
                        shard: shard32,
                        ok,
                    },
                ) {
                    return Err(format!("done frame for batch {batch}: {e}"));
                }
            }
            Ok(Some(Frame::Ping { token })) => {
                if let Err(e) = write_frame(&mut stream, &Frame::Pong { token }) {
                    return Err(format!("pong: {e}"));
                }
            }
            // Explicit Shutdown: the manager is alive and owns the
            // session's files. Bare EOF: the manager vanished (crash,
            // SIGKILL, CI job cancellation) and can never unlink them —
            // the worker performs the last-resort cleanup instead.
            Ok(Some(Frame::Shutdown)) => return Ok(()),
            Ok(None) => {
                orphan_cleanup(socket, slab_path);
                return Ok(());
            }
            Ok(Some(f)) => return Err(format!("unexpected frame {f:?}")),
            Err(e) => return Err(format!("control stream: {e}")),
        }
    }
}
