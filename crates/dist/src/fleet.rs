//! The fleet manager: spawn, handshake, dispatch, quarantine, rescue.
//!
//! [`DistExecutor`] owns `q` worker processes, one per shard of a
//! [`ShardSpec`]. Per batch it scatters the input into the workers'
//! `/dev/shm` slabs (applying the plan's step-0 gather so workers read
//! purely locally), dispatches over the Unix-socket control plane,
//! collects completion frames under a heartbeat deadline, gathers the
//! output partitions into its staging buffer, and finishes the plan's
//! unsharded tail in-process ([`Plan::execute_tail_into`]).
//!
//! **Failure policy.** Any worker failure — death (socket EOF),
//! heartbeat timeout, torn slab publish, protocol violation — is
//! handled the same way: the worker is *quarantined* (killed and
//! reaped, never trusted again) and its shard is *rescued* by running
//! [`execute_shard_into`] on the manager, the exact code path a healthy
//! worker runs, so a rescued batch is still bitwise equal to the
//! single-process result. Every shard of every batch is accounted to
//! exactly one of `{worker, rescued, manager}` —
//! [`DistAccounting::is_exact`] is the invariant the chaos suite
//! asserts.
//!
//! **Cleanup.** All filesystem artifacts (control socket, slabs) live
//! under one session tag in `/dev/shm` and are removed at shutdown;
//! `Drop` performs the same teardown if `shutdown` was never called,
//! and workers exit on control-socket EOF even if the manager is
//! `SIGKILL`ed — three independent layers against orphan processes and
//! leaked segments.

use crate::slab::{Dir, Slab};
use crate::wire::{self, Frame, WireError};
use serde::Serialize;
use spiral_codegen::plan::{Plan, PlanWorkspace};
use spiral_codegen::shard::{
    execute_shard_into, scatter_shard, shard_plan, ShardError, ShardSpec, ShardWorkspace,
};
use spiral_spl::ast::Spl;
use spiral_spl::cplx::Cplx;
use std::fmt;
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Timeouts of one fleet.
#[derive(Clone, Debug)]
pub struct DistConfig {
    /// Deadline for the whole spawn → connect → config → ready
    /// handshake.
    pub handshake_timeout: Duration,
    /// Per-worker deadline for a batch completion frame — the
    /// heartbeat that converts a hung worker into a quarantine.
    pub batch_timeout: Duration,
    /// Grace period for a clean worker exit at shutdown before
    /// `SIGKILL`.
    pub shutdown_timeout: Duration,
}

impl Default for DistConfig {
    fn default() -> DistConfig {
        DistConfig {
            handshake_timeout: Duration::from_secs(10),
            batch_timeout: Duration::from_secs(5),
            shutdown_timeout: Duration::from_secs(2),
        }
    }
}

/// Why a fleet could not be built or driven.
#[derive(Debug)]
pub enum DistError {
    /// The formula does not lower to a plan.
    Lower(String),
    /// The plan does not shard across the requested process count.
    Shard(ShardError),
    /// The `dist-worker` binary could not be located.
    WorkerBinary(String),
    /// A worker failed the handshake (connect, config, or ready).
    Handshake {
        /// Shard index (or connected count for accept-phase failures).
        shard: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// Manager-side i/o failure (socket bind, slab create, …).
    Io(io::Error),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Lower(d) => write!(f, "formula does not lower: {d}"),
            DistError::Shard(e) => write!(f, "plan does not shard: {e}"),
            DistError::WorkerBinary(d) => write!(f, "worker binary: {d}"),
            DistError::Handshake { shard, detail } => {
                write!(f, "worker {shard} handshake failed: {detail}")
            }
            DistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ShardError> for DistError {
    fn from(e: ShardError) -> DistError {
        DistError::Shard(e)
    }
}

impl From<io::Error> for DistError {
    fn from(e: io::Error) -> DistError {
        DistError::Io(e)
    }
}

/// Prefix of every filesystem artifact a fleet creates in `/dev/shm`
/// (control socket, slab files) — the leak-guard tests grep for it.
pub const SESSION_PREFIX: &str = "spiral-dist-";

/// Directory fleets place their sockets and slabs in.
pub fn shm_dir() -> PathBuf {
    PathBuf::from("/dev/shm")
}

static SESSION_COUNTER: AtomicU64 = AtomicU64::new(0);

fn session_tag() -> String {
    format!(
        "{SESSION_PREFIX}{}-{}",
        std::process::id(),
        SESSION_COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

/// Locate the `dist-worker` binary: the `SPIRAL_DIST_WORKER`
/// environment variable wins (tests point it at
/// `CARGO_BIN_EXE_dist-worker`); otherwise look next to the current
/// executable and one directory up (test binaries live in
/// `target/<profile>/deps/`, the worker in `target/<profile>/`).
pub fn worker_binary() -> Result<PathBuf, DistError> {
    if let Some(p) = std::env::var_os("SPIRAL_DIST_WORKER") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(DistError::WorkerBinary(format!(
            "SPIRAL_DIST_WORKER points at {}, which does not exist",
            p.display()
        )));
    }
    let exe = std::env::current_exe()?;
    let mut candidates = Vec::new();
    if let Some(dir) = exe.parent() {
        candidates.push(dir.join("dist-worker"));
        if let Some(up) = dir.parent() {
            candidates.push(up.join("dist-worker"));
        }
    }
    for c in &candidates {
        if c.is_file() {
            return Ok(c.clone());
        }
    }
    Err(DistError::WorkerBinary(format!(
        "dist-worker not found near {}",
        exe.display()
    )))
}

/// One quarantine event: which worker, when, why.
#[derive(Clone, Debug, Serialize)]
pub struct QuarantineRecord {
    /// Shard index of the quarantined worker.
    pub shard: usize,
    /// Batch generation during which the failure surfaced.
    pub batch: u64,
    /// Human-readable failure reason.
    pub reason: String,
}

/// Exact accounting of where every shard of every batch was computed.
#[derive(Clone, Debug, Default, Serialize)]
pub struct DistAccounting {
    /// Worker process count.
    pub q: usize,
    /// Batches executed.
    pub batches: u64,
    /// Shard-batches completed by healthy workers.
    pub worker_shards: u64,
    /// Shard-batches rescued on the manager after a same-batch failure.
    pub rescued_shards: u64,
    /// Shard-batches run on the manager for already-quarantined shards.
    pub manager_shards: u64,
    /// Quarantine events, in order.
    pub quarantines: Vec<QuarantineRecord>,
}

impl DistAccounting {
    /// Shard-batches accounted to some executor.
    pub fn accounted(&self) -> u64 {
        self.worker_shards + self.rescued_shards + self.manager_shards
    }

    /// Shard-batches that must have been executed.
    pub fn expected(&self) -> u64 {
        self.batches * self.q as u64
    }

    /// The invariant: every shard of every batch was computed exactly
    /// once, by exactly one of worker / rescue / manager.
    pub fn is_exact(&self) -> bool {
        self.accounted() == self.expected()
    }
}

/// What shutdown found when draining the fleet.
#[derive(Clone, Debug, Serialize)]
pub struct DistShutdownReport {
    /// Workers that exited on their own after `Shutdown`.
    pub clean_exits: usize,
    /// Workers that needed `SIGKILL` past the grace period.
    pub killed: usize,
    /// Final accounting.
    pub accounting: DistAccounting,
}

struct WorkerSlot {
    shard: usize,
    pid: u32,
    child: Child,
    stream: UnixStream,
    slab: Slab,
    alive: bool,
}

/// Kill, reap, and mark a worker dead; record why. Reaping immediately
/// is what keeps the zero-orphan guarantee: no zombie survives a
/// quarantine.
fn quarantine(w: &mut WorkerSlot, acct: &mut DistAccounting, batch: u64, reason: String) {
    let _ = w.child.kill();
    let _ = w.child.wait();
    w.alive = false;
    acct.quarantines.push(QuarantineRecord {
        shard: w.shard,
        batch,
        reason,
    });
}

/// Await the completion frame for `generation` on a worker's stream
/// (read timeout = heartbeat deadline, set at handshake time).
fn collect_done(w: &mut WorkerSlot, generation: u64) -> Result<(), String> {
    match wire::read_frame(&mut w.stream) {
        Ok(Some(Frame::Done { batch, shard, ok })) => {
            if batch != generation || usize::try_from(shard).expect("u32 fits usize") != w.shard {
                return Err(format!(
                    "done frame for batch {batch} shard {shard}, expected batch {generation} \
                     shard {}",
                    w.shard
                ));
            }
            if ok {
                Ok(())
            } else {
                Err("worker reported a failed batch (torn input slab)".to_string())
            }
        }
        Ok(Some(f)) => Err(format!(
            "unexpected frame {f:?} awaiting batch {generation}"
        )),
        Ok(None) => Err("worker closed the control stream (died mid-batch)".to_string()),
        Err(WireError::Stalled) => Err("heartbeat timeout awaiting completion".to_string()),
        Err(e) => Err(format!("control stream: {e}")),
    }
}

/// Translate the fault registry (crates/smp) into wire directive bits
/// for one `(shard, batch)` dispatch. Without the `faults` feature this
/// compiles to a constant — production dispatches always carry 0.
#[cfg(feature = "faults")]
fn fault_directive(shard: usize, generation: u64, batch_timeout: Duration) -> (u8, u32) {
    use crate::wire::{DIRECTIVE_DROP, DIRECTIVE_KILL, DIRECTIVE_STALL, DIRECTIVE_TORN};
    use spiral_smp::faults::{dist_active, dist_at, DistSite};
    if !dist_active() {
        return (0, 0);
    }
    let b = usize::try_from(generation).expect("batch fits usize");
    let mut d = 0u8;
    let mut stall = 0u32;
    if dist_at(DistSite::WorkerKill, shard, b) {
        d |= DIRECTIVE_KILL;
    }
    if dist_at(DistSite::SlabTornWrite, shard, b) {
        d |= DIRECTIVE_TORN;
    }
    if dist_at(DistSite::ControlFrameDrop, shard, b) {
        d |= DIRECTIVE_DROP;
    }
    if dist_at(DistSite::HeartbeatStall, shard, b) {
        d |= DIRECTIVE_STALL;
        stall = u32::try_from(batch_timeout.as_millis().saturating_mul(4)).unwrap_or(u32::MAX);
    }
    (d, stall)
}

#[cfg(not(feature = "faults"))]
fn fault_directive(_shard: usize, _generation: u64, _batch_timeout: Duration) -> (u8, u32) {
    (0, 0)
}

/// Cleanup guard for the spawn phase: until disarmed, dropping it kills
/// and reaps every spawned child and removes every created file, so a
/// failed handshake leaks nothing.
struct BootGuard {
    children: Vec<Child>,
    paths: Vec<PathBuf>,
    armed: bool,
}

impl Drop for BootGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for c in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
        for p in &self.paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

/// The multi-process executor for a `dist(q)`-tagged plan.
pub struct DistExecutor {
    plan: Plan,
    spec: ShardSpec,
    cfg: DistConfig,
    socket_path: PathBuf,
    slab_paths: Vec<PathBuf>,
    workers: Vec<WorkerSlot>,
    ws: PlanWorkspace,
    sws: ShardWorkspace,
    shard_in: Vec<Cplx>,
    shard_out: Vec<Cplx>,
    io_buf: Vec<u8>,
    pending: Vec<bool>,
    failed: Vec<bool>,
    acct: DistAccounting,
    batch: u64,
    finished: bool,
}

impl DistExecutor {
    /// Build the fleet for `formula`: lower and fuse the plan (the same
    /// pipeline every worker reruns from the formula's ASCII), compute
    /// the shard geometry, create the slabs, spawn `q` workers, and run
    /// the handshake to `Ready`. On any failure everything spawned or
    /// created so far is torn down before returning.
    pub fn new(
        formula: &Spl,
        threads: usize,
        mu: usize,
        q: usize,
        cfg: DistConfig,
    ) -> Result<DistExecutor, DistError> {
        let plan = Plan::from_formula(formula, threads, mu)
            .map_err(|e| DistError::Lower(e.to_string()))?
            .fuse_exchanges();
        let spec = shard_plan(&plan, q)?;
        let bin = worker_binary()?;
        let tag = session_tag();
        let dir = shm_dir();
        let socket_path = dir.join(format!("{tag}.sock"));
        let listener = UnixListener::bind(&socket_path)?;
        listener.set_nonblocking(true)?;
        let mut guard = BootGuard {
            children: Vec::new(),
            paths: vec![socket_path.clone()],
            armed: true,
        };

        let region_len = plan.n / q;
        let mut slab_paths = Vec::with_capacity(q);
        let mut slabs = Vec::with_capacity(q);
        for s in 0..q {
            let p = dir.join(format!("{tag}-w{s}.slab"));
            let slab = Slab::create(&p, region_len)?;
            guard.paths.push(p.clone());
            slab_paths.push(p);
            slabs.push(slab);
        }
        for (s, slab_path) in slab_paths.iter().enumerate() {
            let child = Command::new(&bin)
                .arg(&socket_path)
                .arg(slab_path)
                .arg(s.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()?;
            guard.children.push(child);
        }

        // Accept phase: workers connect in arbitrary order; their Hello
        // frame says which shard each stream belongs to.
        let deadline = Instant::now() + cfg.handshake_timeout;
        let mut streams: Vec<Option<(UnixStream, u32)>> = (0..q).map(|_| None).collect();
        let mut connected = 0;
        while connected < q {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(cfg.handshake_timeout))?;
                    let mut stream = stream;
                    let hello =
                        wire::read_frame(&mut stream).map_err(|e| DistError::Handshake {
                            shard: connected,
                            detail: format!("hello: {e}"),
                        })?;
                    let Some(Frame::Hello { shard, pid }) = hello else {
                        return Err(DistError::Handshake {
                            shard: connected,
                            detail: format!("expected Hello, got {hello:?}"),
                        });
                    };
                    let s = usize::try_from(shard).expect("u32 fits usize");
                    if s >= q || streams[s].is_some() {
                        return Err(DistError::Handshake {
                            shard: s,
                            detail: "duplicate or out-of-range shard in Hello".to_string(),
                        });
                    }
                    streams[s] = Some((stream, pid));
                    connected += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(DistError::Handshake {
                            shard: connected,
                            detail: format!(
                                "only {connected}/{q} workers connected before the deadline"
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(DistError::Io(e)),
            }
        }

        // Config/ready phase: hand every worker the formula ASCII; each
        // recompiles the identical plan and confirms.
        let ascii = formula.to_string();
        for (s, slot) in streams.iter_mut().enumerate() {
            let (stream, _) = slot.as_mut().expect("all connected");
            wire::write_frame(
                stream,
                &Frame::Config {
                    shard: u32::try_from(s).expect("q fits u32"),
                    q: u32::try_from(q).expect("q fits u32"),
                    threads: u32::try_from(threads).expect("threads fits u32"),
                    mu: u32::try_from(mu).expect("mu fits u32"),
                    formula: ascii.clone(),
                },
            )
            .map_err(|e| DistError::Handshake {
                shard: s,
                detail: format!("config: {e}"),
            })?;
        }
        for (s, slot) in streams.iter_mut().enumerate() {
            let (stream, _) = slot.as_mut().expect("all connected");
            match wire::read_frame(stream) {
                Ok(Some(Frame::Ready { ok: true, .. })) => {}
                Ok(Some(Frame::Ready {
                    ok: false, message, ..
                })) => {
                    return Err(DistError::Handshake {
                        shard: s,
                        detail: message,
                    });
                }
                other => {
                    return Err(DistError::Handshake {
                        shard: s,
                        detail: format!("expected Ready, got {other:?}"),
                    });
                }
            }
            stream.set_read_timeout(Some(cfg.batch_timeout))?;
        }

        guard.armed = false;
        let children = std::mem::take(&mut guard.children);
        let mut workers = Vec::with_capacity(q);
        for (s, (child, slab)) in children.into_iter().zip(slabs).enumerate() {
            let (stream, pid) = streams[s].take().expect("all ready");
            workers.push(WorkerSlot {
                shard: s,
                pid,
                child,
                stream,
                slab,
                alive: true,
            });
        }

        let mut ex = DistExecutor {
            plan,
            spec,
            cfg,
            socket_path,
            slab_paths,
            workers,
            ws: PlanWorkspace::default(),
            sws: ShardWorkspace::default(),
            shard_in: vec![Cplx::ZERO; region_len],
            shard_out: vec![Cplx::ZERO; region_len],
            io_buf: Vec::with_capacity(region_len * 16),
            pending: Vec::with_capacity(q),
            failed: Vec::with_capacity(q),
            acct: DistAccounting {
                q,
                ..DistAccounting::default()
            },
            batch: 0,
            finished: false,
        };
        // Pre-size every reusable buffer (staging, rescue workspace) so
        // the batch path — including a first rescue — allocates nothing.
        let _ = ex.ws.stage_buffer(&ex.plan);
        execute_shard_into(
            &ex.plan,
            &ex.spec,
            0,
            &ex.shard_in,
            &mut ex.shard_out,
            &mut ex.sws,
        );
        Ok(ex)
    }

    /// The fused plan this fleet executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The shard geometry.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Accounting so far.
    pub fn accounting(&self) -> &DistAccounting {
        &self.acct
    }

    /// OS pids of all workers ever spawned (including quarantined ones).
    pub fn worker_pids(&self) -> Vec<u32> {
        self.workers.iter().map(|w| w.pid).collect()
    }

    /// Workers still trusted with batches.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Filesystem artifacts this fleet created (socket + slabs) — the
    /// leak-guard tests assert these vanish at shutdown.
    pub fn artifact_paths(&self) -> Vec<PathBuf> {
        let mut v = vec![self.socket_path.clone()];
        v.extend(self.slab_paths.iter().cloned());
        v
    }

    /// Execute one batch, allocation-free: scatter to workers, collect
    /// under the heartbeat deadline, rescue any failed shard on the
    /// manager, finish the tail in-process. The result is bitwise equal
    /// to [`Plan::execute_into`] regardless of how many workers died.
    pub fn execute_into(&mut self, x: &[Cplx], out: &mut [Cplx]) -> Result<(), DistError> {
        assert_eq!(x.len(), self.plan.n, "input length mismatch");
        assert_eq!(out.len(), self.plan.n, "output length mismatch");
        assert!(!self.finished, "executor already shut down");
        self.batch += 1;
        self.acct.batches += 1;
        let generation = self.batch;
        let q = self.spec.q;
        self.pending.clear();
        self.pending.resize(q, false);
        self.failed.clear();
        self.failed.resize(q, false);

        // Phase 1: scatter + dispatch to live workers.
        for s in 0..q {
            if !self.workers[s].alive {
                continue;
            }
            scatter_shard(&self.plan, &self.spec, s, x, &mut self.shard_in);
            let w = &mut self.workers[s];
            if let Err(e) = w
                .slab
                .publish(Dir::Input, generation, &self.shard_in, &mut self.io_buf)
            {
                quarantine(w, &mut self.acct, generation, format!("input publish: {e}"));
                self.failed[s] = true;
                continue;
            }
            let (directive, stall_ms) = fault_directive(s, generation, self.cfg.batch_timeout);
            if let Err(e) = wire::write_frame(
                &mut w.stream,
                &Frame::Dispatch {
                    batch: generation,
                    directive,
                    stall_ms,
                },
            ) {
                quarantine(w, &mut self.acct, generation, format!("dispatch: {e}"));
                self.failed[s] = true;
                continue;
            }
            self.pending[s] = true;
        }

        // Phase 2: collect (or rescue) every shard into the staging
        // buffer at its region offset.
        let stage = self.ws.stage_buffer(&self.plan);
        for s in 0..q {
            let r = self.spec.regions[s].clone();
            let dst = &mut stage[r.offset..r.offset + r.len];
            if self.pending[s] {
                let w = &mut self.workers[s];
                let verdict = collect_done(w, generation);
                match verdict {
                    Ok(()) => match w
                        .slab
                        .consume(Dir::Output, generation, dst, &mut self.io_buf)
                    {
                        Ok(()) => {
                            self.acct.worker_shards += 1;
                            continue;
                        }
                        Err(e) => {
                            quarantine(w, &mut self.acct, generation, format!("output slab: {e}"));
                        }
                    },
                    Err(reason) => quarantine(w, &mut self.acct, generation, reason),
                }
                self.failed[s] = true;
            }
            // The shard did not come back from a worker: run it here,
            // through the same code path a worker runs — bitwise the
            // same values.
            scatter_shard(&self.plan, &self.spec, s, x, &mut self.shard_in);
            execute_shard_into(
                &self.plan,
                &self.spec,
                s,
                &self.shard_in,
                dst,
                &mut self.sws,
            );
            if self.failed[s] {
                self.acct.rescued_shards += 1;
            } else {
                self.acct.manager_shards += 1;
            }
        }

        // Phase 3: the unsharded tail, in-process.
        self.plan
            .execute_tail_into(self.spec.shard_steps, out, &mut self.ws);
        Ok(())
    }

    /// Allocating convenience wrapper around [`DistExecutor::execute_into`].
    pub fn execute(&mut self, x: &[Cplx]) -> Result<Vec<Cplx>, DistError> {
        let mut out = vec![Cplx::ZERO; self.plan.n];
        self.execute_into(x, &mut out)?;
        Ok(out)
    }

    /// Drain the fleet: ask every live worker to exit, give it the
    /// grace period, `SIGKILL` stragglers, reap everything, and remove
    /// all filesystem artifacts.
    pub fn shutdown(mut self) -> DistShutdownReport {
        self.finish()
    }

    fn finish(&mut self) -> DistShutdownReport {
        if self.finished {
            return DistShutdownReport {
                clean_exits: 0,
                killed: 0,
                accounting: self.acct.clone(),
            };
        }
        self.finished = true;
        for w in &mut self.workers {
            if w.alive {
                let _ = wire::write_frame(&mut w.stream, &Frame::Shutdown);
            }
        }
        let deadline = Instant::now() + self.cfg.shutdown_timeout;
        let mut clean_exits = 0;
        let mut killed = 0;
        for w in &mut self.workers {
            if !w.alive {
                continue; // quarantine already killed and reaped it
            }
            loop {
                match w.child.try_wait() {
                    Ok(Some(_)) => {
                        clean_exits += 1;
                        break;
                    }
                    Ok(None) => {
                        if Instant::now() > deadline {
                            let _ = w.child.kill();
                            let _ = w.child.wait();
                            killed += 1;
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        killed += 1;
                        break;
                    }
                }
            }
            w.alive = false;
        }
        let _ = std::fs::remove_file(&self.socket_path);
        for p in &self.slab_paths {
            let _ = std::fs::remove_file(p);
        }
        DistShutdownReport {
            clean_exits,
            killed,
            accounting: self.acct.clone(),
        }
    }
}

impl Drop for DistExecutor {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}
