//! Static schedule model of the µ-oblivious FFTW-like baseline.
//!
//! Reconstructs, as symbolic footprints, exactly the access schedule that
//! `spiral_baselines::FftwLikeFft::trace` emits: a bit-reversal gather
//! (BufA → BufB, contiguous writes per thread), then `log2 n` in-place
//! butterfly passes over BufB, each split block-cyclically with a grain
//! chosen without knowledge of the cache-line length µ. Running the
//! generic footprint checks over this model demonstrates statically what
//! the simulator shows dynamically: fine grains and small sub-blocks put
//! two threads on one cache line (µ-granularity write overlap without any
//! element-granularity race).

use crate::footprint::{StepFootprint, ThreadFootprint};
use crate::iset::IndexSet;
use spiral_codegen::hook::Region;

/// The baseline's schedule parameters.
#[derive(Clone, Copy, Debug)]
pub struct FftwLikeSchedule {
    /// Transform size (power of two).
    pub n: usize,
    /// Worker count.
    pub threads: usize,
    /// Block-cyclic grain in loop iterations; `0` = contiguous split
    /// (one chunk per thread), the library's default.
    pub grain: usize,
}

fn effective_grain(grain: usize, iterations: usize, threads: usize) -> usize {
    if grain == 0 {
        iterations.div_ceil(threads).max(1)
    } else {
        grain
    }
}

fn rev_index(n: usize, i: usize) -> usize {
    let bits = n.trailing_zeros();
    if bits == 0 {
        0
    } else {
        let i = u32::try_from(i).expect("bit-reversal index below 2^32");
        i.reverse_bits() as usize >> (32 - bits)
    }
}

/// Build the complete per-step, per-thread footprints of the baseline's
/// parallel schedule (one step per barrier interval, matching
/// `FftwLikeFft::trace`).
pub fn fftw_like_footprints(sched: &FftwLikeSchedule) -> Vec<StepFootprint> {
    let n = sched.n;
    assert!(
        n.is_power_of_two(),
        "FFTW-like model requires a power of two"
    );
    let threads = sched.threads.max(1);
    let mut steps = Vec::new();

    // Step 0: bit-reversal gather, contiguous output split.
    let mut tfs = vec![ThreadFootprint::default(); threads];
    for (tid, tf) in tfs.iter_mut().enumerate() {
        let lo = n * tid / threads;
        let hi = n * (tid + 1) / threads;
        if hi > lo {
            let span = IndexSet::interval(lo, hi - lo);
            tf.reads
                .add(Region::BufA, span.map_indices(|i| rev_index(n, i)));
            tf.writes.add(Region::BufB, span);
        }
    }
    steps.push(StepFootprint {
        index: 0,
        kind: "bit-reversal",
        threads: tfs,
    });

    // Butterfly passes, in place in BufB.
    let mut len = 2;
    let mut index = 1;
    while len <= n {
        let half = len / 2;
        let groups = n / len;
        let mut tfs = vec![ThreadFootprint::default(); threads];
        if groups >= threads {
            // Group loop split block-cyclically: each group's butterflies
            // cover its whole `len`-element block.
            let grain = effective_grain(sched.grain, groups, threads);
            let chunks = groups.div_ceil(grain);
            for chunk in 0..chunks {
                let tid = chunk % threads;
                let g_lo = chunk * grain;
                let g_hi = (g_lo + grain).min(groups);
                for g in g_lo..g_hi {
                    let span = IndexSet::interval(g * len, len);
                    tfs[tid].reads.add(Region::BufB, span.clone());
                    tfs[tid].writes.add(Region::BufB, span);
                    tfs[tid].flops += 10 * half as u64;
                }
            }
        } else {
            // k loop of each group split block-cyclically: butterfly k
            // touches base+k and base+k+half — two intervals per chunk.
            let grain = effective_grain(sched.grain, half, threads);
            let chunks = half.div_ceil(grain);
            for base in (0..groups).map(|g| g * len) {
                for chunk in 0..chunks {
                    let tid = chunk % threads;
                    let k_lo = chunk * grain;
                    let k_hi = (k_lo + grain).min(half);
                    if k_hi > k_lo {
                        let mut span = IndexSet::interval(base + k_lo, k_hi - k_lo);
                        span.union_with(&IndexSet::interval(base + half + k_lo, k_hi - k_lo));
                        tfs[tid].reads.add(Region::BufB, span.clone());
                        tfs[tid].writes.add(Region::BufB, span);
                        tfs[tid].flops += 10 * (k_hi - k_lo) as u64;
                    }
                }
            }
        }
        steps.push(StepFootprint {
            index,
            kind: "butterfly",
            threads: tfs,
        });
        index += 1;
        len *= 2;
    }
    steps
}
