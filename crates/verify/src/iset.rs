//! Exact index sets as unions of arithmetic progressions.
//!
//! Every access set a plan step generates is a union of *runs*
//! `{start + i·stride : i < count}` — the loop nests of the stage IR are
//! affine, so their footprints close under the operations the analyzer
//! needs: shifting (region offsets), folding another loop dimension in
//! (Cartesian sum), mapping through a permutation table, and reduction to
//! cache-line granularity. Disjointness of two runs is decided exactly
//! with gcd/CRT arithmetic and yields a witness element on overlap.

/// One arithmetic progression `{start + i·stride : 0 ≤ i < count}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Run {
    /// First element.
    pub start: usize,
    /// Distance between consecutive elements (≥ 1).
    pub stride: usize,
    /// Number of elements (≥ 1).
    pub count: usize,
}

impl Run {
    /// Normalized constructor: a single-element run has stride 1, and a
    /// zero stride collapses the run to its single distinct element.
    pub fn new(start: usize, stride: usize, count: usize) -> Run {
        debug_assert!(count >= 1, "empty run");
        if count == 1 || stride == 0 {
            Run {
                start,
                stride: 1,
                count: if stride == 0 { 1 } else { count },
            }
        } else {
            Run {
                start,
                stride,
                count,
            }
        }
    }

    /// Last element of the progression.
    pub fn last(&self) -> usize {
        self.start + self.stride * (self.count - 1)
    }

    /// Exact membership test.
    pub fn contains(&self, x: usize) -> bool {
        x >= self.start && {
            let d = x - self.start;
            d.is_multiple_of(self.stride) && d / self.stride < self.count
        }
    }

    /// Smallest common element of two runs, if any (CRT intersection).
    pub fn intersect(&self, o: &Run) -> Option<usize> {
        if self.count == 1 {
            return o.contains(self.start).then_some(self.start);
        }
        if o.count == 1 {
            return self.contains(o.start).then_some(o.start);
        }
        let (a, s) = (self.start as i128, self.stride as i128);
        let (b, t) = (o.start as i128, o.stride as i128);
        let (g, u, _) = egcd(s, t);
        if (b - a) % g != 0 {
            return None;
        }
        // x = a + s·k with k ≡ (b−a)/g · u (mod t/g) solves both
        // congruences; lift the smallest such x into the overlap window.
        let tg = t / g;
        let k0 = ((((b - a) / g % tg) * (u % tg)) % tg + tg) % tg;
        let x0 = a + s * k0;
        let lcm = s / g * t;
        let lo = a.max(b);
        let x = if x0 >= lo {
            x0
        } else {
            x0 + (lo - x0 + lcm - 1) / lcm * lcm
        };
        let hi = (self.last() as i128).min(o.last() as i128);
        // x ≡ a (mod s) and x ≡ b (mod t), so bounds membership suffices;
        // x ≥ lo ≥ 0 and x ≤ hi ≤ a usize bound, so the conversion holds.
        (x <= hi).then(|| usize::try_from(x).expect("overlap witness within usize bounds"))
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a·x + b·y = g = gcd(a, b)`.
fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// A finite index set: union of [`Run`]s (runs may overlap; the set is
/// their union).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IndexSet {
    /// Constituent progressions.
    pub runs: Vec<Run>,
}

impl IndexSet {
    /// The empty set.
    pub fn empty() -> IndexSet {
        IndexSet { runs: Vec::new() }
    }

    /// A single progression.
    pub fn run(start: usize, stride: usize, count: usize) -> IndexSet {
        IndexSet {
            runs: vec![Run::new(start, stride, count)],
        }
    }

    /// The contiguous interval `[start, start + len)`; empty when `len = 0`.
    pub fn interval(start: usize, len: usize) -> IndexSet {
        if len == 0 {
            IndexSet::empty()
        } else {
            IndexSet::run(start, 1, len)
        }
    }

    /// Build from an arbitrary element list (sorted, deduplicated, then
    /// greedily recompressed into maximal runs).
    pub fn from_elems(mut v: Vec<usize>) -> IndexSet {
        v.sort_unstable();
        v.dedup();
        let mut runs = Vec::new();
        let mut i = 0;
        while i < v.len() {
            if i + 1 == v.len() {
                runs.push(Run::new(v[i], 1, 1));
                break;
            }
            let stride = v[i + 1] - v[i];
            let mut j = i + 1;
            while j + 1 < v.len() && v[j + 1] - v[j] == stride {
                j += 1;
            }
            runs.push(Run::new(v[i], stride, j - i + 1));
            i = j + 1;
        }
        IndexSet { runs }
    }

    /// True when the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<usize> {
        self.runs.iter().map(|r| r.last()).max()
    }

    /// All elements, in run order (duplicates across runs possible).
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for r in &self.runs {
            for i in 0..r.count {
                f(r.start + i * r.stride);
            }
        }
    }

    /// Distinct element count (enumerates).
    pub fn distinct_len(&self) -> usize {
        let mut v = Vec::new();
        self.for_each(|x| v.push(x));
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// Union in place.
    pub fn union_with(&mut self, other: &IndexSet) {
        self.runs.extend_from_slice(&other.runs);
    }

    /// The set shifted by `off`.
    pub fn shift(&self, off: usize) -> IndexSet {
        IndexSet {
            runs: self
                .runs
                .iter()
                .map(|r| Run {
                    start: r.start + off,
                    ..*r
                })
                .collect(),
        }
    }

    /// Cartesian sum with the progression `{i·stride : i < count}` — one
    /// more loop dimension folded into the footprint. Symbolic when the
    /// loop extends or interleaves existing runs; otherwise `count`
    /// shifted copies.
    pub fn fold_loop(&self, count: usize, stride: usize) -> IndexSet {
        if count <= 1 || stride == 0 {
            // A degenerate loop dimension adds no new elements (stride 0
            // revisits the same indices `count` times).
            return self.clone();
        }
        let mut runs = Vec::new();
        for r in &self.runs {
            if r.count == 1 {
                runs.push(Run::new(r.start, stride, count));
            } else if stride == r.stride * r.count {
                // The loop appends run-sized blocks end to end.
                runs.push(Run::new(r.start, r.stride, r.count * count));
            } else if r.stride == stride * count {
                // The loop interleaves inside each gap of the run.
                runs.push(Run::new(r.start, stride, count * r.count));
            } else {
                for k in 0..count {
                    runs.push(Run::new(r.start + k * stride, r.stride, r.count));
                }
            }
        }
        IndexSet { runs }
    }

    /// The image of the set under an arbitrary index map (enumerated and
    /// recompressed — used for permutation tables and gathers).
    pub fn map_indices(&self, f: impl Fn(usize) -> usize) -> IndexSet {
        let mut v = Vec::new();
        self.for_each(|x| v.push(f(x)));
        IndexSet::from_elems(v)
    }

    /// The set of cache lines (`index / mu`) the set touches. Exact:
    /// strides divisible by `mu` stay symbolic, contiguous runs become
    /// line intervals, anything else is enumerated and recompressed.
    pub fn lines(&self, mu: usize) -> IndexSet {
        if mu <= 1 {
            return self.clone();
        }
        let mut out = IndexSet::empty();
        let mut leftovers = Vec::new();
        for r in &self.runs {
            if r.stride % mu == 0 && r.count > 1 {
                // (start + i·stride)/µ = start/µ + i·(stride/µ), exactly.
                out.runs
                    .push(Run::new(r.start / mu, r.stride / mu, r.count));
            } else if r.stride == 1 {
                let first = r.start / mu;
                let last = r.last() / mu;
                out.runs.push(Run::new(first, 1, last - first + 1));
            } else {
                for i in 0..r.count {
                    leftovers.push((r.start + i * r.stride) / mu);
                }
            }
        }
        if !leftovers.is_empty() {
            out.union_with(&IndexSet::from_elems(leftovers));
        }
        out
    }

    /// A common element of the two sets, if any.
    pub fn intersect(&self, other: &IndexSet) -> Option<usize> {
        let mut best: Option<usize> = None;
        for a in &self.runs {
            for b in &other.runs {
                if let Some(w) = a.intersect(b) {
                    best = Some(best.map_or(w, |x| x.min(w)));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn elems(s: &IndexSet) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        s.for_each(|x| {
            out.insert(x);
        });
        out
    }

    #[test]
    fn run_membership_and_last() {
        let r = Run::new(3, 4, 5); // {3, 7, 11, 15, 19}
        assert_eq!(r.last(), 19);
        for x in [3usize, 7, 11, 15, 19] {
            assert!(r.contains(x));
        }
        for x in [0usize, 4, 20, 23, 2] {
            assert!(!r.contains(x), "{x}");
        }
    }

    #[test]
    fn crt_intersection_matches_enumeration() {
        let cases = [
            (Run::new(0, 3, 10), Run::new(1, 5, 8)),
            (Run::new(0, 2, 16), Run::new(1, 2, 16)), // parity-disjoint
            (Run::new(4, 6, 7), Run::new(10, 9, 5)),
            (Run::new(0, 1, 32), Run::new(17, 4, 3)),
            (Run::new(5, 7, 3), Run::new(5, 11, 3)),
            (Run::new(100, 12, 4), Run::new(0, 8, 10)),
        ];
        for (a, b) in cases {
            let brute: BTreeSet<usize> = (0..a.count)
                .map(|i| a.start + i * a.stride)
                .filter(|&x| b.contains(x))
                .collect();
            match a.intersect(&b) {
                Some(w) => {
                    assert!(a.contains(w) && b.contains(w), "{a:?} {b:?} {w}");
                    assert_eq!(Some(&w), brute.iter().next(), "{a:?} {b:?}");
                }
                None => assert!(brute.is_empty(), "{a:?} {b:?} missed {brute:?}"),
            }
        }
    }

    #[test]
    fn fold_loop_merges_blocks_and_interleaves() {
        // Contiguous extension: {0,1} folded over count=3 stride=2 →
        // {0..6} as one run.
        let s = IndexSet::interval(0, 2).fold_loop(3, 2);
        assert_eq!(s.runs.len(), 1);
        assert_eq!(elems(&s), (0..6).collect());
        // Interleave: {0, 6} (stride 6) folded over count=3 stride=2 →
        // {0,2,4,6,8,10} as one run.
        let s = IndexSet::run(0, 6, 2).fold_loop(3, 2);
        assert_eq!(s.runs.len(), 1);
        assert_eq!(elems(&s), (0..6).map(|i| 2 * i).collect());
        // General case: copies.
        let s = IndexSet::run(0, 4, 2).fold_loop(2, 1);
        assert_eq!(elems(&s), [0usize, 1, 4, 5].into_iter().collect());
    }

    #[test]
    fn from_elems_compresses_progressions() {
        let s = IndexSet::from_elems(vec![9, 1, 3, 5, 7, 9]);
        assert_eq!(s.runs, vec![Run::new(1, 2, 5)]);
        let s = IndexSet::from_elems(vec![0, 1, 2, 10, 20, 30]);
        assert_eq!(elems(&s), [0usize, 1, 2, 10, 20, 30].into_iter().collect());
    }

    #[test]
    fn lines_exact_on_all_shapes() {
        // stride % mu == 0.
        let s = IndexSet::run(8, 8, 4).lines(4);
        assert_eq!(elems(&s), [2usize, 4, 6, 8].into_iter().collect());
        // contiguous.
        let s = IndexSet::interval(3, 7).lines(4); // elems 3..10 → lines 0,1,2
        assert_eq!(elems(&s), [0usize, 1, 2].into_iter().collect());
        // irregular stride: enumerate.
        let s = IndexSet::run(0, 3, 5).lines(4); // {0,3,6,9,12} → {0,1,2,3}
        assert_eq!(elems(&s), [0usize, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn set_intersection_witness() {
        let a = IndexSet::run(0, 4, 8); // multiples of 4 below 32
        let b = IndexSet::run(2, 4, 8); // ≡ 2 (mod 4)
        assert_eq!(a.intersect(&b), None);
        let c = IndexSet::run(12, 6, 4); // {12, 18, 24, 30}
        let w = a.intersect(&c).unwrap();
        assert_eq!(w, 12);
    }

    #[test]
    fn map_indices_through_table() {
        let table: Vec<usize> = vec![3, 1, 2, 0];
        let s = IndexSet::interval(0, 4).map_indices(|i| table[i]);
        assert_eq!(elems(&s), (0..4).collect());
    }
}
