//! `spiral-verify` — static analyzer for compiled plans.
//!
//! The paper's Definition 1 demands that generated parallel programs be
//! *load balanced*, *avoid false sharing*, and need only barriers for
//! synchronization; the rewriting system (rules (6)–(11), formula (14))
//! is designed so every derived program has these properties, and the
//! parallel executor's `unsafe` shared-buffer access is sound exactly
//! because each step's writes are thread-disjoint. This crate checks all
//! of that *statically*, from the stage IR alone:
//!
//! * **Footprints** ([`footprint`]): per step and thread, exact read and
//!   write index sets computed symbolically from the affine loop nests
//!   (stride runs folded per loop dimension; permutation tables and
//!   fused gathers mapped exactly).
//! * **Bounds**: every index inside its ping-pong buffer or scratch.
//! * **Race freedom**: per step, writes pairwise thread-disjoint and
//!   disjoint from other threads' reads at element granularity — the
//!   property that makes the executor's `unsafe` sound.
//! * **False-sharing freedom**: per step, no cache line (µ elements)
//!   touched for writing by one thread and for anything by another —
//!   Definition 1's structural criterion. A complementary cache-line
//!   *tenure audit* ([`audit`]) replays the statically known schedule
//!   through the coherence-directory automaton and decides the exact
//!   machine-level false-sharing count that `spiral-sim` would observe.
//! * **Load balance**: per-thread flop totals within a configurable
//!   ratio of the mean.
//! * **Barrier audit**: barriers whose removal would violate no
//!   cross-thread dependency are flagged as redundant.
//!
//! [`verify_plan`] runs everything and returns a serializable [`Report`].
//! [`install_executor_guard`] registers the soundness checks (bounds +
//! races) with `spiral-codegen`'s validator registry so debug builds of
//! `ParallelExecutor` verify every plan before running it.

pub mod audit;
pub mod baseline;
pub mod certify;
pub mod differential;
pub mod footprint;
pub mod iset;
pub mod timeline;

use crate::audit::audit_plan;
use crate::baseline::{fftw_like_footprints, FftwLikeSchedule};
use crate::footprint::{plan_footprints, StepFootprint};
use crate::iset::IndexSet;
use serde::{Deserialize, Serialize};
use spiral_codegen::hook::Region;
use spiral_codegen::plan::Plan;

/// What kind of defect a diagnostic reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiagKind {
    /// An access lands outside its buffer.
    OutOfBounds,
    /// Two threads touch the same element in one step, at least one
    /// writing — the executor's `unsafe` would be unsound.
    Race,
    /// Two threads share a cache line in one step (or across steps, per
    /// the tenure audit) on disjoint elements.
    FalseSharing,
    /// Per-thread work differs by more than the allowed ratio.
    LoadImbalance,
    /// A barrier protects no cross-thread dependency.
    RedundantBarrier,
    /// A step leaves part of its destination buffer unwritten.
    IncompleteWrite,
    /// A recorded timeline event is internally inconsistent (inverted
    /// span, out-of-range thread or stage).
    TimelineMalformed,
    /// One thread's activity spans (compute / barrier wait / tuner
    /// candidate) overlap in time.
    TimelineOverlap,
    /// An activity span lies outside every pool-job span of its thread.
    TimelineNesting,
    /// A stage's barrier accounting is off (release count != threads),
    /// or a watchdog fired during the recorded run.
    TimelineBarrier,
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// Violates correctness or the fully-optimized contract.
    Error,
    /// Suspicious but not unsound.
    Warning,
    /// Optimization opportunity.
    Info,
}

impl Severity {
    fn rank(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Info => 2,
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Defect class.
    pub kind: DiagKind,
    /// Severity grade.
    pub severity: Severity,
    /// Step the finding is anchored to, if step-local.
    pub step: Option<usize>,
    /// Threads involved.
    pub threads: Vec<usize>,
    /// Buffer region involved (`"BufA"`, `"BufB"`, `"Tmp(0)"`), if any.
    pub region: Option<String>,
    /// A witness index (element, or cache line for false sharing).
    pub witness: Option<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

/// Analyzer configuration.
#[derive(Clone, Copy, Debug)]
pub struct VerifyOptions {
    /// Cache-line length in elements to check against; `None` uses the
    /// plan's own µ. Set it to a machine's µ to examine a plan generated
    /// for a different (or no) line length.
    pub line: Option<usize>,
    /// Maximum allowed max/mean per-thread flop ratio.
    pub balance_ratio: f64,
    /// Run the cross-step cache-line tenure audit.
    pub tenure_audit: bool,
    /// Audit barriers for redundancy.
    pub barrier_audit: bool,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            line: None,
            balance_ratio: 1.05,
            tenure_audit: true,
            barrier_audit: true,
        }
    }
}

/// The analyzer's verdict over one plan (serializable).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Report {
    /// Transform size.
    pub n: usize,
    /// Thread count analyzed.
    pub threads: usize,
    /// Cache-line length (elements) the checks used.
    pub mu: usize,
    /// Total real flops per thread across all steps.
    pub per_thread_flops: Vec<u64>,
    /// Findings, most severe first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// No findings at all — the plan satisfies Definition 1 and the
    /// executor's soundness contract.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Any error-grade finding.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Any finding of `kind`.
    pub fn has_kind(&self, kind: DiagKind) -> bool {
        self.diagnostics.iter().any(|d| d.kind == kind)
    }

    /// Findings that make the parallel executor's `unsafe` unsound
    /// (races and out-of-bounds accesses).
    pub fn soundness_errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| matches!(d.kind, DiagKind::Race | DiagKind::OutOfBounds))
    }
}

/// Buffer capacities for the bounds check.
#[derive(Clone, Copy, Debug)]
pub struct RegionCaps {
    /// Elements in each ping-pong buffer.
    pub buf: usize,
    /// Elements in each per-thread scratch buffer.
    pub tmp: usize,
}

impl RegionCaps {
    fn of(&self, region: Region) -> usize {
        match region {
            Region::BufA | Region::BufB => self.buf,
            Region::Tmp(_) => self.tmp,
        }
    }
}

fn region_name(r: Region) -> String {
    format!("{r:?}")
}

/// Run the generic structural checks (bounds, races, false sharing, load
/// balance, barrier audit) over any schedule's footprints.
pub fn check_footprints(
    steps: &[StepFootprint],
    caps: &RegionCaps,
    mu: usize,
    opts: &VerifyOptions,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for sf in steps {
        check_bounds(sf, caps, &mut diags);
        check_step_conflicts(sf, mu, &mut diags);
    }
    if opts.barrier_audit {
        for pair in steps.windows(2) {
            check_barrier(&pair[0], &pair[1], &mut diags);
        }
    }
    check_balance(steps, opts.balance_ratio, &mut diags);
    diags
}

fn check_bounds(sf: &StepFootprint, caps: &RegionCaps, diags: &mut Vec<Diagnostic>) {
    for (tid, tf) in sf.threads.iter().enumerate() {
        for (is_write, rs) in [(false, &tf.reads), (true, &tf.writes)] {
            for (region, set) in rs.iter() {
                let cap = caps.of(*region);
                if let Some(max) = set.max() {
                    if max >= cap {
                        diags.push(Diagnostic {
                            kind: DiagKind::OutOfBounds,
                            severity: Severity::Error,
                            step: Some(sf.index),
                            threads: vec![tid],
                            region: Some(region_name(*region)),
                            witness: Some(max),
                            detail: format!(
                                "step {} ({}): thread {tid} {} index {max} outside \
                                 {} (capacity {cap})",
                                sf.index,
                                sf.kind,
                                if is_write { "writes" } else { "reads" },
                                region_name(*region),
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Per-step cross-thread conflicts: element-granularity races and
/// µ-granularity false sharing (only reported where no race exists — a
/// race subsumes the line conflict).
fn check_step_conflicts(sf: &StepFootprint, mu: usize, diags: &mut Vec<Diagnostic>) {
    // Regions touched in this step.
    let mut regions: Vec<Region> = Vec::new();
    for tf in &sf.threads {
        for (r, _) in tf.reads.iter().chain(tf.writes.iter()) {
            if !regions.contains(r) {
                regions.push(*r);
            }
        }
    }
    for region in regions {
        let empty = IndexSet::empty();
        let get = |rs: &crate::footprint::RegionSet| -> IndexSet {
            rs.get(region).cloned().unwrap_or_else(|| empty.clone())
        };
        let per_tid: Vec<(IndexSet, IndexSet)> = sf
            .threads
            .iter()
            .map(|tf| (get(&tf.reads), get(&tf.writes)))
            .collect();
        let lines: Vec<(IndexSet, IndexSet)> = per_tid
            .iter()
            .map(|(r, w)| (r.lines(mu), w.lines(mu)))
            .collect();
        let mut race_threads: Vec<usize> = Vec::new();
        let mut race_witness = None;
        let mut fs_threads: Vec<usize> = Vec::new();
        let mut fs_witness = None;
        for t in 0..sf.threads.len() {
            for u in t + 1..sf.threads.len() {
                let (rt, wt) = (&per_tid[t].0, &per_tid[t].1);
                let (ru, wu) = (&per_tid[u].0, &per_tid[u].1);
                let conflict = wt
                    .intersect(wu)
                    .or_else(|| wt.intersect(ru))
                    .or_else(|| rt.intersect(wu));
                if let Some(w) = conflict {
                    for x in [t, u] {
                        if !race_threads.contains(&x) {
                            race_threads.push(x);
                        }
                    }
                    race_witness.get_or_insert(w);
                    continue;
                }
                let (rlt, wlt) = (&lines[t].0, &lines[t].1);
                let (rlu, wlu) = (&lines[u].0, &lines[u].1);
                let line_conflict = wlt
                    .intersect(wlu)
                    .or_else(|| wlt.intersect(rlu))
                    .or_else(|| rlt.intersect(wlu));
                if let Some(l) = line_conflict {
                    for x in [t, u] {
                        if !fs_threads.contains(&x) {
                            fs_threads.push(x);
                        }
                    }
                    fs_witness.get_or_insert(l);
                }
            }
        }
        if let Some(w) = race_witness {
            diags.push(Diagnostic {
                kind: DiagKind::Race,
                severity: Severity::Error,
                step: Some(sf.index),
                threads: race_threads,
                region: Some(region_name(region)),
                witness: Some(w),
                detail: format!(
                    "step {} ({}): threads access element {w} of {} concurrently \
                     with at least one write — barrier-free data race",
                    sf.index,
                    sf.kind,
                    region_name(region),
                ),
            });
        }
        if let Some(l) = fs_witness {
            diags.push(Diagnostic {
                kind: DiagKind::FalseSharing,
                severity: Severity::Error,
                step: Some(sf.index),
                threads: fs_threads,
                region: Some(region_name(region)),
                witness: Some(l),
                detail: format!(
                    "step {} ({}): cache line {l} of {} (µ = {mu}) is shared \
                     between threads on disjoint elements — false sharing",
                    sf.index,
                    sf.kind,
                    region_name(region),
                ),
            });
        }
    }
}

/// The barrier after `a` is redundant iff no cross-thread dependency
/// (RAW, WAR, or WAW at element granularity) crosses from `a` into `b`.
fn check_barrier(a: &StepFootprint, b: &StepFootprint, diags: &mut Vec<Diagnostic>) {
    for (t, ta) in a.threads.iter().enumerate() {
        for (u, tb) in b.threads.iter().enumerate() {
            if t == u {
                continue;
            }
            for (region, wa) in ta.writes.iter() {
                let touched = tb
                    .reads
                    .get(*region)
                    .and_then(|s| wa.intersect(s))
                    .or_else(|| tb.writes.get(*region).and_then(|s| wa.intersect(s)));
                if touched.is_some() {
                    return;
                }
            }
            for (region, ra) in ta.reads.iter() {
                if let Some(wb) = tb.writes.get(*region) {
                    if ra.intersect(wb).is_some() {
                        return;
                    }
                }
            }
        }
    }
    diags.push(Diagnostic {
        kind: DiagKind::RedundantBarrier,
        severity: Severity::Info,
        step: Some(a.index),
        threads: Vec::new(),
        region: None,
        witness: None,
        detail: format!(
            "barrier after step {} ({}) protects no cross-thread dependency \
             into step {} ({})",
            a.index, a.kind, b.index, b.kind
        ),
    });
}

fn check_balance(steps: &[StepFootprint], ratio: f64, diags: &mut Vec<Diagnostic>) {
    let threads = steps.iter().map(|s| s.threads.len()).max().unwrap_or(0);
    if threads < 2 {
        return;
    }
    let per = per_thread_flops(steps, threads);
    let total: u64 = per.iter().sum();
    if total == 0 {
        return;
    }
    let mean = total as f64 / threads as f64;
    let max = *per.iter().max().unwrap() as f64;
    let actual = max / mean;
    if actual > ratio {
        diags.push(Diagnostic {
            kind: DiagKind::LoadImbalance,
            severity: Severity::Warning,
            step: None,
            threads: (0..threads).collect(),
            region: None,
            witness: None,
            detail: format!(
                "per-thread flops {per:?}: max/mean = {actual:.3} exceeds the \
                 allowed {ratio:.3}"
            ),
        });
    }
}

/// Total flops per thread across all steps.
pub fn per_thread_flops(steps: &[StepFootprint], threads: usize) -> Vec<u64> {
    let mut per = vec![0u64; threads];
    for sf in steps {
        for (tid, tf) in sf.threads.iter().enumerate() {
            per[tid % threads.max(1)] += tf.flops;
        }
    }
    per
}

/// Static per-stage load-imbalance ratios of a plan: for each step, the
/// `max/mean` of per-thread flops under the executor's static schedule
/// (thread `t` runs footprint entries `t, t+p, …`). A stage with zero
/// flops (pure data movement) reports `1.0` — it is bounded by memory,
/// not compute, so flop balance is not meaningful for it.
///
/// This is the static counterpart of the *measured* per-stage imbalance
/// a `spiral_trace::RunProfile` reports; the observability layer
/// cross-validates the two.
pub fn static_stage_balance(plan: &Plan) -> Vec<f64> {
    let threads = plan.threads.max(1);
    plan_footprints(plan)
        .iter()
        .map(|sf| {
            let mut per = vec![0u64; threads];
            for (tid, tf) in sf.threads.iter().enumerate() {
                per[tid % threads] += tf.flops;
            }
            let total: u64 = per.iter().sum();
            if total == 0 {
                return 1.0;
            }
            let max = *per.iter().max().unwrap() as f64;
            max * threads as f64 / total as f64
        })
        .collect()
}

/// Check that every step fully writes its expected destination region
/// (the ping-pong invariant: stale elements would be read downstream).
pub fn check_coverage(
    steps: &[StepFootprint],
    n: usize,
    expect_dst: impl Fn(usize) -> Region,
    diags: &mut Vec<Diagnostic>,
) {
    for sf in steps {
        let dst = expect_dst(sf.index);
        let mut covered = vec![false; n];
        for tf in &sf.threads {
            if let Some(set) = tf.writes.get(dst) {
                set.for_each(|x| {
                    if x < n {
                        covered[x] = true;
                    }
                });
            }
        }
        let missing = covered.iter().filter(|&&c| !c).count();
        if missing > 0 {
            let first = covered.iter().position(|&c| !c);
            diags.push(Diagnostic {
                kind: DiagKind::IncompleteWrite,
                severity: Severity::Warning,
                step: Some(sf.index),
                threads: Vec::new(),
                region: Some(region_name(dst)),
                witness: first,
                detail: format!(
                    "step {} ({}): {missing} element(s) of {} left unwritten \
                     (first at index {})",
                    sf.index,
                    sf.kind,
                    region_name(dst),
                    first.unwrap_or(0),
                ),
            });
        }
    }
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| (d.severity.rank(), d.step.unwrap_or(usize::MAX)));
}

/// Statically verify a compiled plan: symbolic footprints, bounds, race
/// freedom, false-sharing freedom, write coverage, load balance, barrier
/// audit, and (by default) the exact cross-step tenure audit.
pub fn verify_plan(plan: &Plan, opts: &VerifyOptions) -> Report {
    let mu = opts.line.unwrap_or(plan.mu).max(1);
    let steps = plan_footprints(plan);
    let caps = RegionCaps {
        buf: plan.n,
        tmp: plan.max_local_dim().max(1),
    };
    let mut diagnostics = check_footprints(&steps, &caps, mu, opts);
    check_coverage(
        &steps,
        plan.n,
        |si| {
            if si % 2 == 0 {
                Region::BufB
            } else {
                Region::BufA
            }
        },
        &mut diagnostics,
    );
    if opts.tenure_audit
        && plan.threads > 1
        && mu <= 64
        && !diagnostics.iter().any(|d| d.kind == DiagKind::FalseSharing)
    {
        // The per-step checks passed; decide the exact machine-level
        // verdict for cross-step line-granularity effects.
        let audit = audit_plan(plan, mu);
        if audit.false_sharing > 0 {
            let ev = audit.events.first();
            diagnostics.push(Diagnostic {
                kind: DiagKind::FalseSharing,
                severity: Severity::Error,
                step: ev.map(|e| e.step),
                threads: ev.map(|e| vec![e.tid]).unwrap_or_default(),
                region: None,
                witness: ev.map(|e| usize::try_from(e.line).expect("cache line index fits usize")),
                detail: format!(
                    "tenure audit: {} cache-line transfer(s) moved no needed \
                     data (µ = {mu}) — cross-step false sharing",
                    audit.false_sharing
                ),
            });
        }
    }
    sort_diags(&mut diagnostics);
    let threads = plan.threads.max(1);
    Report {
        n: plan.n,
        threads,
        mu,
        per_thread_flops: per_thread_flops(&steps, threads),
        diagnostics,
    }
}

/// Statically verify the µ-oblivious FFTW-like baseline schedule at the
/// given cache-line length. The generated multicore-CT plans pass
/// [`verify_plan`] with zero findings; this model demonstrates that the
/// same checks reject a µ-oblivious parallel Cooley–Tukey whenever its
/// block-cyclic slices undercut a cache line.
pub fn verify_fftw_like(sched: &FftwLikeSchedule, mu: usize, opts: &VerifyOptions) -> Report {
    let steps = fftw_like_footprints(sched);
    let caps = RegionCaps {
        buf: sched.n,
        tmp: 1,
    };
    let mut diagnostics = check_footprints(&steps, &caps, mu.max(1), opts);
    check_coverage(&steps, sched.n, |_| Region::BufB, &mut diagnostics);
    sort_diags(&mut diagnostics);
    let threads = sched.threads.max(1);
    Report {
        n: sched.n,
        threads,
        mu: mu.max(1),
        per_thread_flops: per_thread_flops(&steps, threads),
        diagnostics,
    }
}

/// Register the analyzer's soundness checks (bounds + races) and the
/// dataflow certification pass with the executor's validator registry:
/// debug builds of `ParallelExecutor` then verify every plan before
/// touching the shared buffers.
pub fn install_executor_guard() {
    spiral_codegen::plan::install_validator(executor_guard);
}

fn executor_guard(plan: &Plan) -> Result<(), String> {
    // Soundness only: a µ-oblivious (slow) plan is still safe to run.
    let opts = VerifyOptions {
        tenure_audit: false,
        barrier_audit: false,
        ..Default::default()
    };
    let report = verify_plan(plan, &opts);
    let mut errs: Vec<String> = report
        .soundness_errors()
        .map(|d| d.detail.clone())
        .collect();
    errs.extend(
        certify::dataflow::certify_dataflow(plan)
            .into_iter()
            .map(|f| f.to_string()),
    );
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::plan::Step;
    use spiral_codegen::stage::LocalProgram;
    use spiral_spl::cplx::Cplx;
    use std::sync::Arc;

    fn par_plan(n: usize, threads: usize, mu: usize, chunk: usize, dims: &[usize]) -> Plan {
        Plan {
            n,
            threads,
            mu,
            vec_width: 1,
            dist_procs: 1,
            steps: vec![Step::Par {
                chunk,
                programs: dims.iter().map(|&d| LocalProgram::identity(d)).collect(),
                gather: None,
            }],
        }
    }

    #[test]
    fn disjoint_identity_chunks_are_clean_of_errors() {
        let plan = par_plan(16, 2, 4, 8, &[8, 8]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn overlapping_chunks_race() {
        // Chunk stride 4 but programs of dim 8: chunk 0 writes [0,8),
        // chunk 1 writes [4,12) — element overlap across threads.
        let plan = par_plan(16, 2, 4, 4, &[8, 8]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(report.has_kind(DiagKind::Race), "{:?}", report.diagnostics);
        assert!(report.soundness_errors().count() > 0);
    }

    #[test]
    fn sub_line_chunks_false_share_without_racing() {
        // µ = 4 but chunks of 2: threads 0 and 1 split every line.
        let plan = par_plan(8, 2, 4, 2, &[2, 2, 2, 2]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::FalseSharing),
            "{:?}",
            report.diagnostics
        );
        assert!(!report.has_kind(DiagKind::Race), "{:?}", report.diagnostics);
        // Soundness is intact: false sharing is a performance defect.
        assert_eq!(report.soundness_errors().count(), 0);
    }

    #[test]
    fn out_of_bounds_write_detected() {
        // Two chunks of 8 on an 8-point plan: chunk 1 writes [8,16).
        let plan = par_plan(8, 2, 4, 8, &[8, 8]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::OutOfBounds),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn aligned_scale_then_par_has_redundant_barrier() {
        // ScaleAll splits by lines, the following Par by equal chunks:
        // identical partitions — no cross-thread dependency, so the
        // barrier between them is redundant.
        let n = 16;
        let plan = Plan {
            n,
            threads: 2,
            mu: 4,
            vec_width: 1,
            dist_procs: 1,
            steps: vec![
                Step::ScaleAll(Arc::new(vec![Cplx::ONE; n])),
                Step::Par {
                    chunk: 8,
                    programs: vec![LocalProgram::identity(8); 2],
                    gather: None,
                },
            ],
        };
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::RedundantBarrier),
            "{:?}",
            report.diagnostics
        );
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
    }

    #[test]
    fn unequal_work_warns_imbalance() {
        // Thread 0 runs a scale stage (6 flops/element); thread 1 copies.
        use spiral_codegen::stage::LocalStage;
        let scale = LocalProgram {
            dim: 8,
            stages: vec![LocalStage::Scale(Arc::new(vec![Cplx::ONE; 8]))],
        };
        let plan = Plan {
            n: 16,
            threads: 2,
            mu: 4,
            vec_width: 1,
            dist_procs: 1,
            steps: vec![Step::Par {
                chunk: 8,
                programs: vec![scale, LocalProgram::identity(8)],
                gather: None,
            }],
        };
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::LoadImbalance),
            "{:?}",
            report.diagnostics
        );
        assert_eq!(report.per_thread_flops, vec![48, 0]);
    }

    #[test]
    fn incomplete_write_warns() {
        // One chunk of 8 on a 16-point plan: [8,16) never written.
        let plan = par_plan(16, 2, 4, 8, &[8]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::IncompleteWrite),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn report_serializes_and_round_trips() {
        let plan = par_plan(8, 2, 4, 2, &[2, 2, 2, 2]);
        let report = verify_plan(&plan, &VerifyOptions::default());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("FalseSharing"), "{json}");
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back.diagnostics, report.diagnostics);
        assert_eq!(back.n, report.n);
    }

    #[test]
    fn executor_guard_rejects_races_only() {
        assert!(executor_guard(&par_plan(16, 2, 4, 4, &[8, 8])).is_err());
        // False sharing alone is safe to execute.
        assert!(executor_guard(&par_plan(8, 2, 4, 2, &[2, 2, 2, 2])).is_ok());
    }
}
