//! Differential accuracy harness for the short-vector backend.
//!
//! Every vector plan must agree with two independent oracles:
//!
//! 1. **the scalar interpreter** — the ν-lane path runs the *identical*
//!    operation sequence per lane, so the bound is tight: ≤ [`MAX_ULPS`]
//!    ulps per element (in practice 0 — bit equality — which this
//!    harness deliberately does not assume, so a future fused-multiply
//!    lowering stays within policy rather than breaking the suite);
//! 2. **the naive `O(n²)` reference DFT** — direct summation of
//!    `Σ_j x_j · ω_n^{−kj}`, sharing no code with the plan pipeline.
//!    Floating-point error of an FFT grows like `O(log n)`, so the
//!    tolerance scales with the transform size and input magnitude
//!    (see [`reference_tolerance`]).
//!
//! The harness is what *gates* the vector backend: certification proves
//! the IR's structure and exact value semantics for small `n`, while
//! this module compares concrete executions at any size, over random and
//! adversarial inputs. A deliberately mis-rotated twiddle table (the
//! negative control in `tests/differential.rs`) must — and does — fail
//! here even when its corruption is internally consistent enough to slip
//! past the structural checks.

use spiral_codegen::plan::Plan;
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;

/// Per-element ulp budget for vector-vs-scalar agreement.
pub const MAX_ULPS: u64 = 4;

/// Distance in units-in-the-last-place between two finite doubles:
/// the number of representable values strictly between them. `0` means
/// bit-equal (with `-0.0 == +0.0`); any NaN or infinity on either side
/// is an automatic `u64::MAX` — a vector lane that produced a non-finite
/// value never "agrees" with a finite scalar one.
pub fn ulps_f64(a: f64, b: f64) -> u64 {
    if !a.is_finite() || !b.is_finite() {
        // Non-finite values only agree when bit-identical (same NaN
        // payload or same signed infinity).
        return if a.to_bits() == b.to_bits() {
            0
        } else {
            u64::MAX
        };
    }
    // Map the double line onto a monotone integer line: negatives are
    // reflected so ordering matches numeric ordering, then the ulp
    // distance is an integer difference.
    fn key(x: f64) -> i64 {
        let b = x.to_bits().cast_signed();
        // b ∈ [i64::MIN, -1] here, so the subtraction cannot overflow.
        if b < 0 {
            i64::MIN.wrapping_sub(b)
        } else {
            b
        }
    }
    key(a).abs_diff(key(b))
}

/// Ulp distance between complex values: the worse of the two components.
pub fn ulps_cplx(a: Cplx, b: Cplx) -> u64 {
    ulps_f64(a.re, b.re).max(ulps_f64(a.im, b.im))
}

/// Largest per-element ulp distance across two equal-length slices.
///
/// # Panics
/// When the slices differ in length — that is a harness bug, not a
/// numeric disagreement.
pub fn max_ulps(a: &[Cplx], b: &[Cplx]) -> u64 {
    assert_eq!(a.len(), b.len(), "differential slices differ in length");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ulps_cplx(x, y))
        .max()
        .unwrap_or(0)
}

/// Naive `O(n²)` reference DFT by direct summation — the independent
/// oracle: no codelets, no twiddle tables, no stage IR.
pub fn reference_dft(x: &[Cplx]) -> Vec<Cplx> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Cplx::ZERO;
            for (j, &v) in x.iter().enumerate() {
                let w = Cplx::cis(-2.0 * std::f64::consts::PI * ((k * j) % n) as f64 / n as f64);
                acc += v * w;
            }
            acc
        })
        .collect()
}

/// Absolute l∞ tolerance for comparing an `n`-point FFT output against
/// the naive reference on input `x`. Both sides accumulate rounding —
/// the FFT over `log₂ n` levels, the summation over `n` terms — so the
/// bound scales with `‖x‖₁` (the worst-case output magnitude) times a
/// generous `O(log n)` factor.
pub fn reference_tolerance(x: &[Cplx]) -> f64 {
    let norm1: f64 = x.iter().map(|c| c.abs()).sum();
    let levels = (x.len().max(2) as f64).log2();
    // ~30 ulps of headroom per level on the accumulated magnitude, plus
    // an absolute floor so all-denormal inputs don't demand exactness
    // finer than a rounding step.
    1e-14 * norm1 * levels + 1e-300
}

/// Verdict of one differential comparison.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Transform size.
    pub n: usize,
    /// Lane width of the vector plan under test.
    pub vec_width: usize,
    /// Worst per-element ulp distance between the vector and scalar
    /// executions.
    pub ulps_vs_scalar: u64,
    /// Worst per-element absolute error of the *vector* execution
    /// against the naive reference DFT.
    pub err_vs_reference: f64,
    /// The tolerance [`reference_tolerance`] granted for this input.
    pub reference_tol: f64,
}

impl DiffReport {
    /// Both legs within policy: vector ≈ scalar within [`MAX_ULPS`] and
    /// vector ≈ reference within the scaled tolerance.
    pub fn passes(&self) -> bool {
        self.ulps_vs_scalar <= MAX_ULPS && self.err_vs_reference <= self.reference_tol
    }
}

/// Compare a vector plan against the scalar execution of `scalar_plan`
/// and the naive reference, on one input.
pub fn compare_plans(vector: &Plan, scalar: &Plan, x: &[Cplx]) -> DiffReport {
    let yv = vector.execute(x);
    let ys = scalar.execute(x);
    let yr = reference_dft(x);
    DiffReport {
        n: vector.n,
        vec_width: vector.vec_width,
        ulps_vs_scalar: max_ulps(&yv, &ys),
        err_vs_reference: spiral_spl::cplx::max_dist(&yv, &yr),
        reference_tol: reference_tolerance(x),
    }
}

/// Compile `formula` twice — untagged (scalar) and wrapped in `vec(ν)` —
/// and differentially compare the two executions plus the reference, on
/// one input. `Err` carries the lowering failure, which in this harness
/// is a test bug, not a numeric finding.
pub fn differential_check(
    formula: &Spl,
    threads: usize,
    mu: usize,
    nu: usize,
    x: &[Cplx],
) -> Result<DiffReport, String> {
    let scalar = Plan::from_formula(formula, threads, mu)
        .map_err(|e| format!("scalar lowering failed: {e}"))?;
    let tagged = spiral_spl::builder::vec_tag(nu.max(1), formula.clone());
    let vector = Plan::from_formula(&tagged, threads, mu)
        .map_err(|e| format!("vector lowering failed: {e}"))?;
    let (scalar, vector) = if threads > 1 {
        (scalar.fuse_exchanges(), vector.fuse_exchanges())
    } else {
        (scalar, vector)
    };
    Ok(compare_plans(&vector, &scalar, x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulps_f64(1.0, 1.0), 0);
        assert_eq!(ulps_f64(0.0, -0.0), 0);
        assert_eq!(ulps_f64(1.0, f64::from_bits(1.0f64.to_bits() + 1)), 1);
        assert_eq!(ulps_f64(-1.0, f64::from_bits((-1.0f64).to_bits() + 1)), 1);
        // Straddling zero: distance counts representable values across
        // the sign boundary, monotonically.
        let tiny = f64::from_bits(1);
        assert_eq!(ulps_f64(tiny, -tiny), 2);
        assert_eq!(ulps_f64(f64::NAN, 1.0), u64::MAX);
        assert_eq!(ulps_f64(f64::INFINITY, f64::MAX), u64::MAX);
        assert!(ulps_f64(1.0, 1.0 + f64::EPSILON) <= 1);
    }

    #[test]
    fn reference_dft_matches_closed_forms() {
        // DFT of a delta is all ones; DFT of all-ones is n·delta.
        let n = 8;
        let mut delta = vec![Cplx::ZERO; n];
        delta[0] = Cplx::ONE;
        for v in reference_dft(&delta) {
            assert!(v.approx_eq(Cplx::ONE, 1e-12));
        }
        let ones = vec![Cplx::ONE; n];
        let y = reference_dft(&ones);
        assert!(y[0].approx_eq(Cplx::real(n as f64), 1e-12));
        for v in &y[1..] {
            assert!(v.approx_eq(Cplx::ZERO, 1e-12));
        }
    }

    #[test]
    fn differential_check_passes_on_healthy_formula() {
        let f = spiral_rewrite::sequential_dft(64, 8);
        let x: Vec<Cplx> = (0..64)
            .map(|j| Cplx::new((j as f64).sin(), (j as f64).cos()))
            .collect();
        for nu in [1usize, 2, 4] {
            let rep = differential_check(&f, 1, 4, nu, &x).unwrap();
            assert!(
                rep.passes(),
                "nu={nu}: {} ulps, {:.3e} vs tol {:.3e}",
                rep.ulps_vs_scalar,
                rep.err_vs_reference,
                rep.reference_tol
            );
        }
    }
}
