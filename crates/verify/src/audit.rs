//! Cache-line tenure audit: an exact cross-step false-sharing decision
//! procedure.
//!
//! The per-step footprint checks prove the *intra-step* half of
//! Definition 1 (no cache line written by two threads between barriers).
//! False sharing can additionally arise *across* steps at line
//! granularity — a thread inheriting a line whose previous owner touched
//! only other elements. That effect depends on access order, so it is
//! decided by replaying the plan's statically known access schedule
//! through a coherence-directory automaton: per line, the dirty owner,
//! the sharer set, and the *tenure mask* of elements touched since the
//! line last changed hands. A transfer whose incoming element was never
//! touched in the previous tenure moves no needed data — false sharing.
//!
//! The automaton is exactly the directory logic of `spiral-sim`'s
//! `SmpSim` (minus caches and clocks, which never affect the directory),
//! so the verdict here agrees with the dynamic simulator's
//! `false_sharing` counter by construction — an independent
//! implementation cross-validated in this crate's test suite.

use spiral_codegen::hook::{MemHook, Region};
use spiral_codegen::plan::Plan;
use std::collections::HashMap;

/// Directory state of one cache line.
#[derive(Clone, Copy, Default)]
struct LineState {
    /// Thread holding the line modified, if any.
    dirty: Option<u32>,
    /// Bitmask of threads with a copy.
    sharers: u64,
    /// Elements (bit `e mod µ`) touched during the current tenure.
    tenure: u64,
}

/// One false-sharing event observed by the audit.
#[derive(Clone, Copy, Debug)]
pub struct FalseShareEvent {
    /// Step (barrier interval) in which the transfer happened.
    pub step: usize,
    /// Thread that triggered the transfer.
    pub tid: usize,
    /// Line address (in the [`Region::base`] element address space).
    pub line: u64,
}

/// A [`MemHook`] that runs the directory automaton over a traced
/// schedule. Feed it via [`Plan::run_traced`] (see [`audit_plan`]) or any
/// other schedule model (e.g. the FFTW-like baseline trace).
pub struct LineTenureAudit {
    n: usize,
    mu: usize,
    dir: HashMap<u64, LineState>,
    step: usize,
    /// Total line transfers between threads.
    pub transfers: u64,
    /// Transfers moving no needed data (disjoint elements).
    pub false_sharing: u64,
    /// First few false-sharing events, for diagnostics.
    pub events: Vec<FalseShareEvent>,
}

const MAX_EVENTS: usize = 16;

impl LineTenureAudit {
    /// Fresh audit for an `n`-element transform with `mu`-element lines.
    pub fn new(n: usize, mu: usize) -> LineTenureAudit {
        let mu = mu.max(1);
        assert!(mu <= 64, "tenure mask supports lines up to 64 elements");
        LineTenureAudit {
            n,
            mu,
            dir: HashMap::new(),
            step: 0,
            transfers: 0,
            false_sharing: 0,
            events: Vec::new(),
        }
    }

    fn transfer(&mut self, tid: usize, line: u64, stale: bool) {
        self.transfers += 1;
        if stale {
            self.false_sharing += 1;
            if self.events.len() < MAX_EVENTS {
                self.events.push(FalseShareEvent {
                    step: self.step,
                    tid,
                    line,
                });
            }
        }
    }

    fn access(&mut self, tid: usize, region: Region, idx: usize, is_write: bool) {
        let elem = region.base(self.n, self.mu) + idx;
        let line = (elem / self.mu) as u64;
        let elem_bit = 1u64 << (elem % self.mu);
        let my_bit = 1u64 << (tid % 64);
        let entry = self.dir.entry(line).or_default();
        let mut transfer_stale = None;
        if is_write {
            let others = (entry.sharers & !my_bit) != 0
                || matches!(entry.dirty, Some(d) if d as usize != tid);
            if others {
                transfer_stale = Some(entry.tenure & elem_bit == 0);
                entry.tenure = 0;
            }
            entry.dirty = Some(u32::try_from(tid).expect("thread id fits u32"));
            entry.sharers = my_bit;
        } else {
            if let Some(d) = entry.dirty {
                if d as usize != tid {
                    transfer_stale = Some(entry.tenure & elem_bit == 0);
                    entry.tenure = 0;
                    entry.dirty = None;
                }
            }
            entry.sharers |= my_bit;
        }
        entry.tenure |= elem_bit;
        if let Some(stale) = transfer_stale {
            self.transfer(tid, line, stale);
        }
    }
}

impl MemHook for LineTenureAudit {
    fn read(&mut self, tid: usize, region: Region, idx: usize) {
        self.access(tid, region, idx, false);
    }
    fn write(&mut self, tid: usize, region: Region, idx: usize) {
        self.access(tid, region, idx, true);
    }
    fn flops(&mut self, _tid: usize, _count: u64) {}
    fn barrier(&mut self) {
        self.step += 1;
    }
}

/// Run the audit over `plan`'s complete traced schedule with `mu`-element
/// lines. `mu` may differ from `plan.mu` (verifying a µ-oblivious plan
/// against a machine's real line length).
pub fn audit_plan(plan: &Plan, mu: usize) -> LineTenureAudit {
    let mut audit = LineTenureAudit::new(plan.n, mu);
    plan.run_traced(&mut audit);
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn true_sharing_not_counted_as_false() {
        let mut a = LineTenureAudit::new(64, 4);
        a.write(0, Region::BufA, 0);
        a.read(1, Region::BufA, 0);
        assert_eq!(a.transfers, 1);
        assert_eq!(a.false_sharing, 0);
    }

    #[test]
    fn disjoint_elements_same_line_is_false_sharing() {
        let mut a = LineTenureAudit::new(64, 4);
        a.write(0, Region::BufA, 0);
        a.write(1, Region::BufA, 1);
        a.write(0, Region::BufA, 0);
        assert!(a.false_sharing >= 2, "{}", a.false_sharing);
    }

    #[test]
    fn line_boundary_isolates() {
        let mut a = LineTenureAudit::new(64, 4);
        a.write(0, Region::BufA, 0);
        a.write(1, Region::BufA, 4);
        assert_eq!(a.transfers, 0);
    }

    #[test]
    fn tmp_regions_are_private() {
        let mut a = LineTenureAudit::new(64, 4);
        a.write(0, Region::Tmp(0), 0);
        a.write(1, Region::Tmp(1), 0);
        a.write(0, Region::Tmp(0), 0);
        assert_eq!(a.transfers, 0);
    }

    #[test]
    fn full_line_handoff_is_clean() {
        // Thread 0 writes a whole line; thread 1 reads it entirely, then
        // thread 0 rewrites it. All transfers move needed data.
        let mut a = LineTenureAudit::new(64, 4);
        for i in 0..4 {
            a.write(0, Region::BufA, i);
        }
        for i in 0..4 {
            a.read(1, Region::BufA, i);
        }
        for i in 0..4 {
            a.write(0, Region::BufA, i);
        }
        assert!(a.transfers >= 2);
        assert_eq!(a.false_sharing, 0);
    }

    #[test]
    fn events_carry_step_attribution() {
        let mut a = LineTenureAudit::new(64, 4);
        a.write(0, Region::BufA, 0);
        a.barrier();
        a.write(1, Region::BufA, 1);
        assert_eq!(a.false_sharing, 1);
        assert_eq!(a.events[0].step, 1);
        assert_eq!(a.events[0].tid, 1);
    }
}
