//! Symbolic per-step, per-thread memory footprints of a compiled plan.
//!
//! Mirrors [`Plan::run_traced`] exactly — same buffer ping-pong, same
//! chunk-to-thread assignment (`c mod threads`), same contiguous `share`
//! splits for exchanges and scaling, same stage-level tmp/dst alternation
//! and gather indirection — but computes each thread's read and write
//! *index sets* from the affine loop nests instead of enumerating the
//! access stream. Kernel stages stay symbolic (their loop dims fold into
//! stride runs); permutation tables and gathers are mapped exactly and
//! recompressed.

use crate::iset::IndexSet;
use spiral_codegen::hook::Region;
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::{KernelStage, LocalProgram, LocalStage};

/// Index sets grouped by buffer region.
#[derive(Clone, Debug, Default)]
pub struct RegionSet {
    entries: Vec<(Region, IndexSet)>,
}

impl RegionSet {
    /// Union `set` into the entry for `region`.
    pub fn add(&mut self, region: Region, set: IndexSet) {
        if set.is_empty() {
            return;
        }
        match self.entries.iter_mut().find(|(r, _)| *r == region) {
            Some((_, s)) => s.union_with(&set),
            None => self.entries.push((region, set)),
        }
    }

    /// The set for `region`, if the thread touches it.
    pub fn get(&self, region: Region) -> Option<&IndexSet> {
        self.entries
            .iter()
            .find(|(r, _)| *r == region)
            .map(|(_, s)| s)
    }

    /// All `(region, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(Region, IndexSet)> {
        self.entries.iter()
    }

    /// True when the thread touches nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// What one thread touches during one step.
#[derive(Clone, Debug, Default)]
pub struct ThreadFootprint {
    /// Elements read, per region.
    pub reads: RegionSet,
    /// Elements written, per region.
    pub writes: RegionSet,
    /// Real flops this thread executes in the step.
    pub flops: u64,
}

/// The footprint of one synchronization-delimited step.
#[derive(Clone, Debug)]
pub struct StepFootprint {
    /// Step index within the plan.
    pub index: usize,
    /// Step kind, for diagnostics ("seq", "par", "exchange", "scale", …).
    pub kind: &'static str,
    /// One footprint per thread id (length = thread count).
    pub threads: Vec<ThreadFootprint>,
}

/// Contiguous share `[lo, hi)` of `total` items for thread `tid` of `p` —
/// must match the executor's static schedule exactly.
pub(crate) fn share(total: usize, p: usize, tid: usize) -> (usize, usize) {
    let base = total / p;
    let rem = total % p;
    let lo = tid * base + tid.min(rem);
    (lo, lo + base + usize::from(tid < rem))
}

/// Input/output index sets of one kernel stage, in stage-local terms
/// (before any region offset), mirroring [`KernelStage::trace`].
fn kernel_sets(k: &KernelStage) -> (IndexSet, IndexSet) {
    let c = k.codelet.size();
    let mut reads = IndexSet::run(k.in_off, k.in_t_stride.max(1), c);
    let mut writes = IndexSet::run(k.out_off, k.out_t_stride.max(1), c);
    for l in &k.loops {
        reads = reads.fold_loop(l.count, l.in_stride);
        writes = writes.fold_loop(l.count, l.out_stride);
    }
    // Fused permutations apply to the complete affine index. An index
    // outside the table marks a malformed stage; map it far out of range
    // so the bounds check reports it instead of panicking here.
    if let Some(m) = &k.in_map {
        reads = reads.map_indices(|i| m.get(i).map_or(usize::MAX / 2, |&v| v as usize));
    }
    if let Some(m) = &k.out_map {
        writes = writes.map_indices(|i| m.get(i).map_or(usize::MAX / 2, |&v| v as usize));
    }
    (reads, writes)
}

/// Stage-local read/write sets of any stage kind.
fn stage_sets(stage: &LocalStage, dim: usize) -> (IndexSet, IndexSet) {
    match stage {
        LocalStage::Kernel(k) => kernel_sets(k),
        LocalStage::Permute(t) => (
            IndexSet::from_elems(t.iter().map(|&v| v as usize).collect()),
            IndexSet::interval(0, t.len()),
        ),
        LocalStage::Scale(_) => (IndexSet::interval(0, dim), IndexSet::interval(0, dim)),
    }
}

/// Accumulate the footprint of one chunk program into `tf` — the symbolic
/// twin of the tracer's `trace_local_gathered`.
#[allow(clippy::too_many_arguments)]
fn local_footprint(
    prog: &LocalProgram,
    tf: &mut ThreadFootprint,
    tid: usize,
    src: Region,
    src_off: usize,
    dst: Region,
    dst_off: usize,
    gather: Option<&[u32]>,
) {
    let map_src = |set: IndexSet| -> IndexSet {
        match gather {
            Some(g) => {
                set.map_indices(|i| g.get(src_off + i).map_or(usize::MAX / 2, |&v| v as usize))
            }
            None => set.shift(src_off),
        }
    };
    let l = prog.stages.len();
    if l == 0 {
        // Identity chunk: straight copy.
        tf.reads.add(src, map_src(IndexSet::interval(0, prog.dim)));
        tf.writes.add(dst, IndexSet::interval(dst_off, prog.dim));
        return;
    }
    let tmp = Region::Tmp(tid);
    for (k, stage) in prog.stages.iter().enumerate() {
        let to_dst = (l - 1 - k).is_multiple_of(2);
        let first = k == 0;
        let (rset, wset) = stage_sets(stage, prog.dim);
        if first {
            tf.reads.add(src, map_src(rset));
        } else if to_dst {
            tf.reads.add(tmp, rset);
        } else {
            tf.reads.add(dst, rset.shift(dst_off));
        }
        if to_dst {
            tf.writes.add(dst, wset.shift(dst_off));
        } else {
            tf.writes.add(tmp, wset);
        }
        tf.flops += stage.flops(prog.dim);
    }
}

/// Compute the complete per-step, per-thread footprints of `plan`.
pub fn plan_footprints(plan: &Plan) -> Vec<StepFootprint> {
    let threads = plan.threads.max(1);
    let (mut src, mut dst) = (Region::BufA, Region::BufB);
    let mut out = Vec::with_capacity(plan.steps.len());
    for (index, step) in plan.steps.iter().enumerate() {
        let mut tfs = vec![ThreadFootprint::default(); threads];
        let kind = match step {
            Step::Seq(prog) => {
                local_footprint(prog, &mut tfs[0], 0, src, 0, dst, 0, None);
                "seq"
            }
            Step::Par {
                chunk,
                programs,
                gather,
            } => {
                for (c, prog) in programs.iter().enumerate() {
                    let tid = c % threads;
                    local_footprint(
                        prog,
                        &mut tfs[tid],
                        tid,
                        src,
                        c * chunk,
                        dst,
                        c * chunk,
                        gather.as_ref().map(|g| g.as_slice()),
                    );
                }
                "par"
            }
            Step::Exchange { table, mu } => {
                let blocks = plan.n / mu;
                for (tid, tf) in tfs.iter_mut().enumerate() {
                    let (lo, hi) = share(blocks, threads, tid);
                    if hi > lo {
                        let span = IndexSet::interval(lo * mu, (hi - lo) * mu);
                        tf.reads.add(
                            src,
                            span.map_indices(|e| {
                                table.get(e).map_or(usize::MAX / 2, |&v| v as usize)
                            }),
                        );
                        tf.writes.add(dst, span);
                    }
                }
                "exchange"
            }
            Step::ScaleAll(_) => {
                let blocks = plan.n / plan.mu;
                for (tid, tf) in tfs.iter_mut().enumerate() {
                    let (lo, hi) = share(blocks, threads, tid);
                    if hi > lo {
                        let span = IndexSet::interval(lo * plan.mu, (hi - lo) * plan.mu);
                        tf.reads.add(src, span.clone());
                        tf.writes.add(dst, span);
                        tf.flops += 6 * ((hi - lo) * plan.mu) as u64;
                    }
                }
                "scale"
            }
        };
        out.push(StepFootprint {
            index,
            kind,
            threads: tfs,
        });
        std::mem::swap(&mut src, &mut dst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::hook::MemHook;
    use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
    use std::collections::{BTreeSet, HashMap};

    /// Collects exact (step, tid, region, index) access sets from the
    /// tracer, for cross-checking the symbolic footprints.
    #[derive(Default)]
    struct SetHook {
        step: usize,
        reads: HashMap<(usize, usize, String), BTreeSet<usize>>,
        writes: HashMap<(usize, usize, String), BTreeSet<usize>>,
        flops: HashMap<(usize, usize), u64>,
    }

    impl MemHook for SetHook {
        fn read(&mut self, tid: usize, region: Region, idx: usize) {
            self.reads
                .entry((self.step, tid, format!("{region:?}")))
                .or_default()
                .insert(idx);
        }
        fn write(&mut self, tid: usize, region: Region, idx: usize) {
            self.writes
                .entry((self.step, tid, format!("{region:?}")))
                .or_default()
                .insert(idx);
        }
        fn flops(&mut self, tid: usize, count: u64) {
            *self.flops.entry((self.step, tid)).or_default() += count;
        }
        fn barrier(&mut self) {
            self.step += 1;
        }
    }

    fn footprint_sets(
        steps: &[StepFootprint],
        writes: bool,
    ) -> HashMap<(usize, usize, String), BTreeSet<usize>> {
        let mut out: HashMap<(usize, usize, String), BTreeSet<usize>> = HashMap::new();
        for sf in steps {
            for (tid, tf) in sf.threads.iter().enumerate() {
                let rs = if writes { &tf.writes } else { &tf.reads };
                for (region, set) in rs.iter() {
                    let e = out
                        .entry((sf.index, tid, format!("{region:?}")))
                        .or_default();
                    set.for_each(|x| {
                        e.insert(x);
                    });
                }
            }
        }
        out
    }

    #[test]
    fn footprints_equal_traced_access_sets() {
        use spiral_codegen::plan::Plan;
        let cases: Vec<Plan> = vec![
            Plan::from_formula(&sequential_dft(64, 8), 1, 4).unwrap(),
            Plan::from_formula(&multicore_dft_expanded(64, 2, 4, None, 8).unwrap(), 2, 4).unwrap(),
            Plan::from_formula(&multicore_dft_expanded(256, 4, 4, None, 8).unwrap(), 4, 4).unwrap(),
            Plan::from_formula(&multicore_dft_expanded(256, 2, 4, None, 8).unwrap(), 2, 4)
                .unwrap()
                .fuse_exchanges(),
            Plan::from_formula(&multicore_dft_expanded(1024, 4, 8, None, 8).unwrap(), 4, 8)
                .unwrap()
                .fuse_exchanges(),
        ];
        for plan in &cases {
            let mut hook = SetHook::default();
            plan.run_traced(&mut hook);
            let fps = plan_footprints(plan);
            assert_eq!(
                footprint_sets(&fps, false),
                hook.reads,
                "reads n={}",
                plan.n
            );
            assert_eq!(
                footprint_sets(&fps, true),
                hook.writes,
                "writes n={}",
                plan.n
            );
            // Per-thread flops agree step by step.
            for sf in &fps {
                for (tid, tf) in sf.threads.iter().enumerate() {
                    let traced = hook.flops.get(&(sf.index, tid)).copied().unwrap_or(0);
                    assert_eq!(tf.flops, traced, "step {} tid {tid}", sf.index);
                }
            }
        }
    }

    #[test]
    fn share_matches_plan_splitting() {
        for total in [0usize, 1, 7, 64, 100] {
            for p in [1usize, 2, 3, 4] {
                let mut covered = 0;
                let mut prev = 0;
                for tid in 0..p {
                    let (lo, hi) = share(total, p, tid);
                    assert_eq!(lo, prev);
                    prev = hi;
                    covered += hi - lo;
                }
                assert_eq!(covered, total);
            }
        }
    }
}
