//! Sanity checking of recorded execution timelines.
//!
//! The static analyzers in this crate judge a *plan*; this module judges
//! a *run*: the stream of timestamped spans and instants a
//! `spiral-trace` `Timeline` recorded. A well-formed run obeys
//! structural invariants that follow directly from the execution model —
//! one thread does one thing at a time, stage work happens inside the
//! thread's pool job, and a stage's barrier releases every thread
//! exactly once — and a timeline that violates them points at recorder
//! bugs, clock trouble, or a genuinely broken run (e.g. a watchdog
//! fire).
//!
//! The event model here is deliberately standalone (not the
//! `spiral-trace` types): `spiral-verify` sits below the collector crate
//! in the dependency order, so callers map their events into
//! [`TlEvent`]s — a four-field copy — and get [`Diagnostic`]s back.

use crate::{DiagKind, Diagnostic, Severity};

/// Kind of one timeline event, mirroring the recorder's span/mark split.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlKind {
    /// Span: a thread's whole pool job.
    PoolJob,
    /// Span: one thread's portion of one stage.
    StageCompute,
    /// Span: blocked at the stage barrier.
    BarrierWait,
    /// Span: the tuner evaluating one candidate.
    TunerCandidate,
    /// Span: one whole transform executed as part of a batch (`stage` is
    /// the transform index within the batch, not a plan stage).
    BatchTransform,
    /// Instant: the stage barrier released this thread.
    BarrierRelease,
    /// Instant: a watchdog expired on this thread.
    WatchdogFire,
    /// Instant: the tuner quarantined a candidate.
    TunerReject,
    /// Span: one served network request on a server worker thread
    /// (`stage` is the worker's request sequence number, not a plan
    /// stage).
    RequestServe,
    /// Span: one coalesced batch pushed through the executor by a
    /// serving dispatcher (`stage` is the dispatch sequence number, not
    /// a plan stage).
    PoolExecute,
    /// Instant: a serving SLO breach (`stage` is the triggering
    /// request's sequence number, not a plan stage).
    SloBreach,
}

impl TlKind {
    /// True for the exclusive *activity* spans — the things a thread
    /// does one at a time (pool jobs are containers, instants are
    /// points).
    fn is_activity(self) -> bool {
        matches!(
            self,
            TlKind::StageCompute
                | TlKind::BarrierWait
                | TlKind::TunerCandidate
                | TlKind::BatchTransform
                | TlKind::RequestServe
                | TlKind::PoolExecute
        )
    }

    /// True for kinds whose `stage` field indexes a plan stage (tuner
    /// events index candidates instead).
    fn stage_indexed(self) -> bool {
        matches!(
            self,
            TlKind::StageCompute
                | TlKind::BarrierWait
                | TlKind::BarrierRelease
                | TlKind::WatchdogFire
        )
    }
}

/// One timeline event: timestamps in nanoseconds from any common epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlEvent {
    /// Recording thread.
    pub tid: usize,
    /// Event kind.
    pub kind: TlKind,
    /// Stage index (executor events), candidate index (tuner events),
    /// 0 (pool jobs).
    pub stage: u32,
    /// Span start / instant position.
    pub start_ns: u64,
    /// Span end; equals `start_ns` for instants.
    pub end_ns: u64,
}

/// Check a recorded timeline of a `threads`-thread, `stages`-stage run.
///
/// Findings, most severe first:
///
/// * **Error / [`DiagKind::TimelineMalformed`]** — inverted span
///   (`end < start`), out-of-range thread id, or a stage-indexed event
///   whose stage is `>= stages`.
/// * **Error / [`DiagKind::TimelineOverlap`]** — two activity spans
///   (compute / barrier-wait / tuner-candidate) of one thread overlap in
///   time: a thread does one thing at a time.
/// * **Error / [`DiagKind::TimelineNesting`]** — a thread recorded pool
///   jobs, but one of its activity spans lies outside every pool job.
/// * **Error / [`DiagKind::TimelineBarrier`]** — a stage with barrier
///   events whose barrier-release count differs from `threads`.
/// * **Warning / [`DiagKind::TimelineBarrier`]** — a watchdog fired:
///   structurally valid, but the run it describes timed out.
pub fn verify_timeline(events: &[TlEvent], threads: usize, stages: usize) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // --- shape: spans ordered, ids in range ---------------------------
    for e in events {
        if e.end_ns < e.start_ns {
            diags.push(diag(
                DiagKind::TimelineMalformed,
                Severity::Error,
                e,
                format!(
                    "inverted span: {:?} on thread {} ends at {} before it starts at {}",
                    e.kind, e.tid, e.end_ns, e.start_ns
                ),
            ));
        }
        if e.tid >= threads {
            diags.push(diag(
                DiagKind::TimelineMalformed,
                Severity::Error,
                e,
                format!(
                    "thread id {} out of range for a {threads}-thread run",
                    e.tid
                ),
            ));
        }
        if e.kind.stage_indexed() && e.stage as usize >= stages {
            diags.push(diag(
                DiagKind::TimelineMalformed,
                Severity::Error,
                e,
                format!(
                    "{:?} references stage {} of a {stages}-stage plan",
                    e.kind, e.stage
                ),
            ));
        }
    }

    // --- per-thread exclusivity and nesting ---------------------------
    for tid in 0..threads {
        let mut activity: Vec<&TlEvent> = events
            .iter()
            .filter(|e| e.tid == tid && e.kind.is_activity() && e.end_ns >= e.start_ns)
            .collect();
        activity.sort_by_key(|e| (e.start_ns, e.end_ns));
        for w in activity.windows(2) {
            // Sorted by start, so overlap is exactly "next starts before
            // previous ends". Touching endpoints (end == start) are fine:
            // compute hands off to the barrier wait at one instant.
            if w[1].start_ns < w[0].end_ns {
                diags.push(diag(
                    DiagKind::TimelineOverlap,
                    Severity::Error,
                    w[1],
                    format!(
                        "thread {tid}: {:?} (stage {}) starting at {} overlaps {:?} (stage {}) \
                         still running until {}",
                        w[1].kind, w[1].stage, w[1].start_ns, w[0].kind, w[0].stage, w[0].end_ns
                    ),
                ));
            }
        }

        let jobs: Vec<&TlEvent> = events
            .iter()
            .filter(|e| e.tid == tid && e.kind == TlKind::PoolJob && e.end_ns >= e.start_ns)
            .collect();
        if jobs.is_empty() {
            // Single-threaded / non-pooled execution records no pool
            // jobs; there is nothing to nest inside.
            continue;
        }
        for a in &activity {
            if a.kind == TlKind::TunerCandidate || a.kind == TlKind::RequestServe {
                // Tuner spans are recorded by the coordinating thread
                // *around* whole runs, not inside a pool job; request
                // spans live on server worker threads that never run
                // pool jobs at all.
                continue;
            }
            let nested = jobs
                .iter()
                .any(|j| j.start_ns <= a.start_ns && a.end_ns <= j.end_ns);
            if !nested {
                diags.push(diag(
                    DiagKind::TimelineNesting,
                    Severity::Error,
                    a,
                    format!(
                        "thread {tid}: {:?} (stage {}) at [{}, {}] lies outside every pool job \
                         span of its thread",
                        a.kind, a.stage, a.start_ns, a.end_ns
                    ),
                ));
            }
        }
    }

    // --- per-stage barrier accounting ---------------------------------
    for si in 0..stages {
        let releases = events
            .iter()
            .filter(|e| e.kind == TlKind::BarrierRelease && e.stage as usize == si)
            .count();
        let waits = events
            .iter()
            .filter(|e| e.kind == TlKind::BarrierWait && e.stage as usize == si)
            .count();
        if (releases > 0 || waits > 0) && releases != threads {
            diags.push(Diagnostic {
                kind: DiagKind::TimelineBarrier,
                severity: Severity::Error,
                step: Some(si),
                threads: (0..threads).collect(),
                region: None,
                witness: Some(releases),
                detail: format!(
                    "stage {si}: {releases} barrier-release instants recorded, expected exactly \
                     {threads} (one per thread); {waits} barrier waits seen"
                ),
            });
        }
    }

    for e in events.iter().filter(|e| e.kind == TlKind::WatchdogFire) {
        diags.push(diag(
            DiagKind::TimelineBarrier,
            Severity::Warning,
            e,
            format!(
                "watchdog fired on thread {} at stage {}: the recorded run timed out",
                e.tid, e.stage
            ),
        ));
    }

    diags.sort_by_key(|d| (d.severity.rank(), d.step));
    diags
}

fn diag(kind: DiagKind, severity: Severity, e: &TlEvent, detail: String) -> Diagnostic {
    Diagnostic {
        kind,
        severity,
        step: e.kind.stage_indexed().then_some(e.stage as usize),
        threads: vec![e.tid],
        region: None,
        witness: None,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tid: usize, kind: TlKind, stage: u32, start_ns: u64, end_ns: u64) -> TlEvent {
        TlEvent {
            tid,
            kind,
            stage,
            start_ns,
            end_ns,
        }
    }

    fn mark(tid: usize, kind: TlKind, stage: u32, at: u64) -> TlEvent {
        span(tid, kind, stage, at, at)
    }

    /// A clean 2-thread, 2-stage run.
    fn clean_run() -> Vec<TlEvent> {
        let mut ev = Vec::new();
        for tid in 0..2 {
            ev.push(span(tid, TlKind::PoolJob, 0, 0, 1000));
            ev.push(span(tid, TlKind::StageCompute, 0, 10, 400));
            ev.push(span(tid, TlKind::BarrierWait, 0, 400, 450));
            ev.push(mark(tid, TlKind::BarrierRelease, 0, 450));
            ev.push(span(tid, TlKind::StageCompute, 1, 450, 900));
            ev.push(span(tid, TlKind::BarrierWait, 1, 900, 950));
            ev.push(mark(tid, TlKind::BarrierRelease, 1, 950));
        }
        ev
    }

    #[test]
    fn clean_run_has_no_findings() {
        assert!(verify_timeline(&clean_run(), 2, 2).is_empty());
    }

    #[test]
    fn overlapping_activity_is_an_error() {
        let mut ev = clean_run();
        // Thread 0 "computes" stage 1 while still waiting on stage 0.
        ev.push(span(0, TlKind::StageCompute, 1, 420, 440));
        let diags = verify_timeline(&ev, 2, 2);
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagKind::TimelineOverlap && d.severity == Severity::Error));
    }

    #[test]
    fn activity_outside_pool_job_is_an_error() {
        let mut ev = clean_run();
        ev.push(span(1, TlKind::StageCompute, 1, 1100, 1200));
        let diags = verify_timeline(&ev, 2, 2);
        assert!(diags.iter().any(|d| d.kind == DiagKind::TimelineNesting));
    }

    #[test]
    fn no_pool_jobs_means_no_nesting_requirement() {
        // Sequential execution records stage spans but no pool jobs.
        let ev = vec![
            span(0, TlKind::StageCompute, 0, 0, 100),
            span(0, TlKind::StageCompute, 1, 100, 200),
        ];
        assert!(verify_timeline(&ev, 1, 2).is_empty());
    }

    #[test]
    fn missing_barrier_release_is_an_error() {
        let mut ev = clean_run();
        // Drop one of thread 1's release marks.
        let idx = ev
            .iter()
            .position(|e| e.tid == 1 && e.kind == TlKind::BarrierRelease && e.stage == 1)
            .unwrap();
        ev.remove(idx);
        let diags = verify_timeline(&ev, 2, 2);
        let d = diags
            .iter()
            .find(|d| d.kind == DiagKind::TimelineBarrier)
            .expect("barrier count finding");
        assert_eq!(d.step, Some(1));
        assert_eq!(d.witness, Some(1)); // one release seen, two expected
    }

    #[test]
    fn inverted_span_and_bad_stage_are_malformed() {
        let ev = vec![
            span(0, TlKind::StageCompute, 0, 500, 400),
            mark(0, TlKind::BarrierRelease, 9, 600),
            span(7, TlKind::PoolJob, 0, 0, 10),
        ];
        let diags = verify_timeline(&ev, 2, 2);
        let malformed = diags
            .iter()
            .filter(|d| d.kind == DiagKind::TimelineMalformed)
            .count();
        assert_eq!(malformed, 3);
    }

    #[test]
    fn watchdog_fire_is_a_warning_not_an_error() {
        let mut ev = clean_run();
        ev.push(mark(1, TlKind::WatchdogFire, 1, 940));
        let diags = verify_timeline(&ev, 2, 2);
        assert!(diags
            .iter()
            .any(|d| d.kind == DiagKind::TimelineBarrier && d.severity == Severity::Warning));
        assert!(!diags.iter().any(|d| d.severity == Severity::Error));
    }

    #[test]
    fn request_spans_need_not_nest_but_stay_exclusive() {
        let mut ev = clean_run();
        // A server worker thread serves requests outside any pool job.
        ev.push(span(1, TlKind::RequestServe, 0, 2000, 2500));
        ev.push(span(1, TlKind::RequestServe, 1, 2500, 3000));
        assert!(verify_timeline(&ev, 2, 2).is_empty());
        // But two requests on one thread must not overlap in time.
        ev.push(span(1, TlKind::RequestServe, 2, 2400, 2600));
        let diags = verify_timeline(&ev, 2, 2);
        assert!(diags.iter().any(|d| d.kind == DiagKind::TimelineOverlap));
    }

    #[test]
    fn tuner_spans_need_not_nest_in_pool_jobs() {
        let mut ev = clean_run();
        // The coordinating thread evaluates candidates outside any job.
        ev.push(span(0, TlKind::TunerCandidate, 0, 2000, 3000));
        ev.push(span(0, TlKind::TunerCandidate, 1, 3000, 4000));
        ev.push(mark(0, TlKind::TunerReject, 1, 4000));
        assert!(verify_timeline(&ev, 2, 2).is_empty());
    }
}
