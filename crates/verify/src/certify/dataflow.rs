//! Dataflow certification: abstract interpretation of a plan's buffer
//! value flow, for all transform sizes.
//!
//! The abstract state is, per ping-pong buffer, the set of elements
//! holding a *current-generation* value. The input buffer starts fully
//! valid, its partner fully stale. Each step is interpreted over that
//! state, proving:
//!
//! * **bounds** — every affine, mapped, or gathered index lands inside
//!   its buffer, permutation table, or twiddle table;
//! * **init-before-read** — no read of a stale (previous-generation or
//!   never-written) element, through all four ping-pong cases of
//!   [`LocalProgram::run_view`] including the chunk-local `tmp`/`dst`
//!   alternation;
//! * **write-once per stage** — no stage writes an element twice (the
//!   parallel executor's disjointness contract at value granularity);
//! * **full coverage per stage** — every out-of-place stage writes its
//!   whole target vector, so the next stage never reads garbage;
//! * **workspace disjointness** — chunk programs stay inside their
//!   `dst` slice and their private `tmp`; cross-chunk overlap is
//!   impossible once per-chunk bounds hold;
//! * **exchange legality** — exchange and fused-gather tables are
//!   bijections of `[0, n)`, and explicit exchanges move whole µ-element
//!   blocks (the paper's `P ⊗̄ I_µ` false-sharing-freedom structure);
//! * **ν-alignment of vector-marked stages** — a stage carrying
//!   `vec_width = ν > 1` must satisfy the vectorizer's alignment
//!   preconditions (contiguous innermost lane loop, ν-granular offsets
//!   and strides, lane-contiguous gather blocks), and its lane-grouped
//!   twiddle tables must correspond bit-for-bit to the scalar tables
//!   under the lane shuffle `lanes[g·c·ν + t·ν + l] = w[(g·ν + l)·c + t]`
//!   — a swapped or mis-derived shuffle is rejected IR, not a fallback;
//! * **output coverage** — after the last step, every element of the
//!   result buffer holds a current value.
//!
//! The pass stops at the first violation: beyond it the abstract state
//! no longer describes the concrete execution.

use super::{CertFinding, CertPass};
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::{KernelStage, LocalProgram, LocalStage};

/// Certify the plan's dataflow. Empty result = certified; otherwise the
/// first violation found, localized to step/stage/index.
pub fn certify_dataflow(plan: &Plan) -> Vec<CertFinding> {
    match run(plan) {
        Ok(()) => Vec::new(),
        Err(f) => vec![f],
    }
}

fn fail(
    step: Option<usize>,
    stage: Option<usize>,
    index: Option<usize>,
    detail: String,
) -> CertFinding {
    CertFinding {
        pass: CertPass::Dataflow,
        step,
        stage,
        index,
        detail,
    }
}

fn run(plan: &Plan) -> Result<(), CertFinding> {
    let n = plan.n;
    // Validity of the *source* buffer at the top of each step; after the
    // step the freshly written set becomes the next source.
    let mut src_valid = vec![true; n];
    for (si, step) in plan.steps.iter().enumerate() {
        let mut written = vec![false; n];
        match step {
            Step::Seq(prog) => {
                if prog.dim != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!(
                            "sequential program dimension {} does not match plan size {n}",
                            prog.dim
                        ),
                    ));
                }
                analyze_program(prog, si, None, 0, &src_valid, &mut written)?;
            }
            Step::Par {
                chunk,
                programs,
                gather,
            } => {
                if chunk * programs.len() != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!(
                            "{} chunk(s) of {chunk} do not tile the {n}-point vector",
                            programs.len()
                        ),
                    ));
                }
                if let Some(g) = gather {
                    if g.len() != n {
                        return Err(fail(
                            Some(si),
                            None,
                            None,
                            format!("fused gather table has {} entries, expected {n}", g.len()),
                        ));
                    }
                    check_bijection(g, n, si, "fused exchange gather")?;
                }
                for (c, prog) in programs.iter().enumerate() {
                    if prog.dim != *chunk {
                        return Err(fail(
                            Some(si),
                            None,
                            Some(c),
                            format!(
                                "chunk {c} program has dimension {}, expected chunk size {chunk}",
                                prog.dim
                            ),
                        ));
                    }
                    analyze_program(
                        prog,
                        si,
                        gather.as_deref().map(|g| g.as_slice()),
                        c * chunk,
                        &src_valid,
                        &mut written,
                    )?;
                }
            }
            Step::Exchange { table, mu } => {
                if table.len() != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!("exchange table has {} entries, expected {n}", table.len()),
                    ));
                }
                check_bijection(table, n, si, "exchange")?;
                check_block_granularity(table, *mu, si)?;
                for (i, &s) in table.iter().enumerate() {
                    if !src_valid[s as usize] {
                        return Err(fail(
                            Some(si),
                            None,
                            Some(i),
                            format!("exchange reads stale source element {s}"),
                        ));
                    }
                    written[i] = true;
                }
            }
            Step::ScaleAll(w) => {
                if w.len() != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!("scale table has {} entries, expected {n}", w.len()),
                    ));
                }
                for (i, valid) in src_valid.iter().enumerate() {
                    if !valid {
                        return Err(fail(
                            Some(si),
                            None,
                            Some(i),
                            format!("scale step reads stale source element {i}"),
                        ));
                    }
                    written[i] = true;
                }
            }
        }
        src_valid = written;
    }
    if let Some(i) = src_valid.iter().position(|&v| !v) {
        return Err(fail(
            None,
            None,
            Some(i),
            format!("output element {i} is never written by any step"),
        ));
    }
    Ok(())
}

/// Every source index in `[0, n)` exactly once — the table is a
/// permutation, which is what makes folding it into an adjacent compute
/// loop (exchange fusion) a legal rewrite.
pub(super) fn check_bijection(
    table: &[u32],
    n: usize,
    si: usize,
    what: &str,
) -> Result<(), CertFinding> {
    let mut seen = vec![false; n];
    for (i, &s) in table.iter().enumerate() {
        let s = s as usize;
        if s >= n {
            return Err(fail(
                Some(si),
                None,
                Some(i),
                format!("{what} table entry {i} reads index {s}, outside the {n}-point buffer"),
            ));
        }
        if seen[s] {
            return Err(fail(
                Some(si),
                None,
                Some(i),
                format!("{what} table is not a permutation: source index {s} gathered twice"),
            ));
        }
        seen[s] = true;
    }
    Ok(())
}

/// Explicit exchanges must move whole µ-element blocks (`P ⊗̄ I_µ`):
/// line-aligned bases, consecutive entries within each block.
pub(super) fn check_block_granularity(
    table: &[u32],
    mu: usize,
    si: usize,
) -> Result<(), CertFinding> {
    if mu <= 1 {
        return Ok(());
    }
    if !table.len().is_multiple_of(mu) {
        return Err(fail(
            Some(si),
            None,
            None,
            format!(
                "exchange of {} elements is not a multiple of µ = {mu}",
                table.len()
            ),
        ));
    }
    for blk in 0..table.len() / mu {
        let base = table[blk * mu] as usize;
        if !base.is_multiple_of(mu) {
            return Err(fail(
                Some(si),
                None,
                Some(blk * mu),
                format!("exchange block {blk} starts at unaligned source index {base} (µ = {mu})"),
            ));
        }
        for t in 1..mu {
            let got = table[blk * mu + t] as usize;
            if got != base + t {
                return Err(fail(
                    Some(si),
                    None,
                    Some(blk * mu + t),
                    format!(
                        "exchange breaks µ-block granularity: block {blk} reads {got}, \
                         expected {} (µ = {mu})",
                        base + t
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Which buffer a local-program stage reads or writes.
#[derive(Clone, Copy, PartialEq)]
enum LocalBuf {
    /// The step's source view (global src buffer, possibly gathered).
    View,
    /// This chunk's private scratch.
    Tmp,
    /// This chunk's slice of the destination buffer.
    Dst,
}

/// Interpret one local program: chunk offset `off` into the global
/// buffers, stage-0 reads through `gather` when fused. Marks the chunk's
/// final writes in `written`.
fn analyze_program(
    prog: &LocalProgram,
    si: usize,
    gather: Option<&[u32]>,
    off: usize,
    src_valid: &[bool],
    written: &mut [bool],
) -> Result<(), CertFinding> {
    let dim = prog.dim;
    let n = src_valid.len();
    let l = prog.stages.len();
    // Check a stage-0 read of logical chunk index `i` against the global
    // source buffer, through the fused gather when present.
    let view_read = |i: usize, stage: Option<usize>| -> Result<(), CertFinding> {
        let global = match gather {
            Some(g) => g[off + i] as usize, // bounds proven by bijection check
            None => off + i,
        };
        if global >= n {
            return Err(fail(
                Some(si),
                stage,
                Some(i),
                format!("chunk read of logical index {i} lands at {global}, outside {n}"),
            ));
        }
        if !src_valid[global] {
            return Err(fail(
                Some(si),
                stage,
                Some(i),
                format!("read of source element {global} before any step wrote it"),
            ));
        }
        Ok(())
    };
    if l == 0 {
        // Identity program: copy view → dst.
        for i in 0..dim {
            view_read(i, None)?;
            written[off + i] = true;
        }
        return Ok(());
    }
    for (k, stage) in prog.stages.iter().enumerate() {
        let to_dst = (l - 1 - k).is_multiple_of(2);
        let input = if k == 0 {
            LocalBuf::View
        } else if to_dst {
            LocalBuf::Tmp
        } else {
            LocalBuf::Dst
        };
        // Stages k ≥ 1 read the buffer the previous stage fully wrote
        // (coverage enforced below), so only View reads need the global
        // validity check.
        let mut counts = vec![0u32; dim];
        let mut read = |idx: usize, stage_idx: usize| -> Result<(), CertFinding> {
            if idx >= dim {
                return Err(fail(
                    Some(si),
                    Some(stage_idx),
                    Some(idx),
                    format!("read index {idx} outside the {dim}-point stage vector"),
                ));
            }
            if input == LocalBuf::View {
                view_read(idx, Some(stage_idx))?;
            }
            Ok(())
        };
        let mut write =
            |idx: usize, counts: &mut [u32], stage_idx: usize| -> Result<(), CertFinding> {
                if idx >= dim {
                    return Err(fail(
                        Some(si),
                        Some(stage_idx),
                        Some(idx),
                        format!("write index {idx} outside the {dim}-point stage vector"),
                    ));
                }
                counts[idx] += 1;
                if counts[idx] > 1 {
                    return Err(fail(
                        Some(si),
                        Some(stage_idx),
                        Some(idx),
                        format!("element {idx} written twice within one stage"),
                    ));
                }
                Ok(())
            };
        match stage {
            LocalStage::Kernel(ks) => {
                check_vector_marking(ks, si, k)?;
                analyze_kernel(ks, si, k, dim, &mut read, &mut write, &mut counts)?;
            }
            LocalStage::Permute(t) => {
                if t.len() != dim {
                    return Err(fail(
                        Some(si),
                        Some(k),
                        None,
                        format!("permute table has {} entries, expected {dim}", t.len()),
                    ));
                }
                for (i, &s) in t.iter().enumerate() {
                    read(s as usize, k)?;
                    write(i, &mut counts, k)?;
                }
            }
            LocalStage::Scale(w) => {
                if w.len() != dim {
                    return Err(fail(
                        Some(si),
                        Some(k),
                        None,
                        format!("scale table has {} entries, expected {dim}", w.len()),
                    ));
                }
                for i in 0..dim {
                    read(i, k)?;
                    write(i, &mut counts, k)?;
                }
            }
        }
        if let Some(i) = counts.iter().position(|&c| c == 0) {
            return Err(fail(
                Some(si),
                Some(k),
                Some(i),
                format!(
                    "stage leaves element {i} of its {} target unwritten",
                    if to_dst { "dst" } else { "tmp" }
                ),
            ));
        }
    }
    // Full per-stage coverage proven, and the last stage targets dst.
    for i in 0..dim {
        written[off + i] = true;
    }
    Ok(())
}

/// Re-prove a vector-marked stage's claims. The ν-alignment rules are
/// re-checked through the vectorizer's own predicate (the marking pass
/// and the certifier share one definition of "aligned"), then the
/// redundant lane-grouped twiddle tables are proven to correspond
/// bit-for-bit to the scalar tables under the lane shuffle — the scalar
/// interpreter and the ν-lane path must read the *same* constants, so a
/// swapped or mis-derived shuffle is rejected here, structurally, before
/// any value-level pass runs.
fn check_vector_marking(ks: &KernelStage, si: usize, k: usize) -> Result<(), CertFinding> {
    let nu = ks.vec_width;
    if nu <= 1 {
        if ks.twiddle_lanes.is_some() || ks.twiddle_out_lanes.is_some() {
            return Err(fail(
                Some(si),
                Some(k),
                None,
                "scalar stage carries lane-grouped twiddle tables".to_string(),
            ));
        }
        return Ok(());
    }
    if let Err(why) = spiral_codegen::stage_alignment(ks, nu) {
        return Err(fail(
            Some(si),
            Some(k),
            None,
            format!("vector-marked stage violates nu={nu} alignment: {why}"),
        ));
    }
    let c = ks.codelet.size();
    for (what, scalar, lanes) in [
        ("twiddle", &ks.twiddle, &ks.twiddle_lanes),
        ("twiddle_out", &ks.twiddle_out, &ks.twiddle_out_lanes),
    ] {
        match (scalar.as_deref(), lanes.as_deref()) {
            (None, None) => {}
            (Some(_), None) => {
                return Err(fail(
                    Some(si),
                    Some(k),
                    None,
                    format!("vector-marked stage is missing its lane-grouped {what} table"),
                ));
            }
            (None, Some(_)) => {
                return Err(fail(
                    Some(si),
                    Some(k),
                    None,
                    format!("lane-grouped {what} table present without a scalar {what} table"),
                ));
            }
            (Some(w), Some(lw)) => {
                if lw.len() != w.len() {
                    return Err(fail(
                        Some(si),
                        Some(k),
                        Some(lw.len()),
                        format!(
                            "lane-grouped {what} table has {} entries, scalar table has {}",
                            lw.len(),
                            w.len()
                        ),
                    ));
                }
                // Alignment proved the iteration count ν-granular, so the
                // span tiles into whole (group, slot, lane) cells.
                let groups = ks.span() / (c * nu);
                for g in 0..groups {
                    for t in 0..c {
                        for l in 0..nu {
                            let got = lw[g * c * nu + t * nu + l];
                            let want = w[(g * nu + l) * c + t];
                            if got.re.to_bits() != want.re.to_bits()
                                || got.im.to_bits() != want.im.to_bits()
                            {
                                return Err(fail(
                                    Some(si),
                                    Some(k),
                                    Some(g * c * nu + t * nu + l),
                                    format!(
                                        "lane-grouped {what} table does not correspond to the \
                                         scalar table at group {g}, slot {t}, lane {l} — the \
                                         lane shuffle is wrong"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Read-side access check: `(element index, stage index)`.
type ReadCheck<'a> = dyn FnMut(usize, usize) -> Result<(), CertFinding> + 'a;

/// Write-side access check: `(element index, per-element write counts,
/// stage index)`.
type WriteCheck<'a> = dyn FnMut(usize, &mut [u32], usize) -> Result<(), CertFinding> + 'a;

/// Replay one kernel stage's exact access pattern through the bounds /
/// validity / write-once callbacks.
fn analyze_kernel(
    ks: &KernelStage,
    si: usize,
    k: usize,
    dim: usize,
    read: &mut ReadCheck<'_>,
    write: &mut WriteCheck<'_>,
    counts: &mut [u32],
) -> Result<(), CertFinding> {
    let c = ks.codelet.size();
    let span = ks.span();
    if span != dim {
        return Err(fail(
            Some(si),
            Some(k),
            None,
            format!("kernel stage spans {span} points but the stage vector has {dim}"),
        ));
    }
    for (what, table) in [("twiddle", &ks.twiddle), ("twiddle_out", &ks.twiddle_out)] {
        if let Some(w) = table {
            if w.len() < span {
                return Err(fail(
                    Some(si),
                    Some(k),
                    Some(w.len()),
                    format!(
                        "{what} table has {} entries but the stage indexes up to {}",
                        w.len(),
                        span - 1
                    ),
                ));
            }
        }
    }
    let mut err: Option<CertFinding> = None;
    ks.for_each_iteration(|_flat, in_base, out_base| {
        if err.is_some() {
            return;
        }
        let mut go = || -> Result<(), CertFinding> {
            for t in 0..c {
                let aff = in_base + t * ks.in_t_stride;
                let idx = match &ks.in_map {
                    Some(m) => match m.get(aff) {
                        Some(&v) => v as usize,
                        None => {
                            return Err(fail(
                                Some(si),
                                Some(k),
                                Some(aff),
                                format!("gather index {aff} outside the {}-entry in_map", m.len()),
                            ))
                        }
                    },
                    None => aff,
                };
                read(idx, k)?;
            }
            for t in 0..c {
                let aff = out_base + t * ks.out_t_stride;
                let idx = match &ks.out_map {
                    Some(m) => match m.get(aff) {
                        Some(&v) => v as usize,
                        None => {
                            return Err(fail(
                                Some(si),
                                Some(k),
                                Some(aff),
                                format!(
                                    "scatter index {aff} outside the {}-entry out_map",
                                    m.len()
                                ),
                            ))
                        }
                    },
                    None => aff,
                };
                write(idx, counts, k)?;
            }
            Ok(())
        };
        if let Err(e) = go() {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}
