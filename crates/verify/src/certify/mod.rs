//! Static plan certification: proofs that a lowered plan is *correct*,
//! not merely schedulable.
//!
//! The analyzer in the crate root proves Definition 1's scheduling
//! properties (race freedom, false-sharing freedom, balance). Nothing
//! there proves a plan *computes `DFT_n`* — historically that trust
//! rested on floating-point sampling tests. This module closes the gap
//! with two independent static passes over the stage IR:
//!
//! * [`dataflow`] — abstract interpretation over steps and stages
//!   proving, for **all** `n`: in-bounds access, write-once-per-stage,
//!   full output coverage, ping-pong buffer discipline (no stage reads a
//!   value the previous generation left behind), exchange bijectivity and
//!   µ-block granularity, and fused-exchange legality.
//! * [`symbolic`] — a symbolic interpreter executing the plan over exact
//!   cyclotomic arithmetic ([`spiral_spl::exact`]) and proving the
//!   composed plan matrix equals `DFT_n` **entrywise with zero
//!   tolerance**, for `n ≤ 64` (every codelet size). Both the
//!   interpreter's semantics (hand-unrolled kernels mirrored exactly)
//!   and the `cemit` C backend's semantics (codelet DAG form) are
//!   certified.
//!
//! [`certify_plan`] composes both; the tuner, the wisdom loader, and the
//! debug-build executor guard consume the verdicts.

pub mod dataflow;
pub mod shards;
pub mod symbolic;

use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;
use std::fmt;

/// Which certification pass produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CertPass {
    /// Exact cyclotomic equivalence against `DFT_n`.
    Symbolic,
    /// Abstract interpretation of buffer dataflow.
    Dataflow,
    /// Shard-boundary rules of the `dist(q)` multi-process backend.
    Shards,
}

impl fmt::Display for CertPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertPass::Symbolic => write!(f, "symbolic"),
            CertPass::Dataflow => write!(f, "dataflow"),
            CertPass::Shards => write!(f, "shards"),
        }
    }
}

/// One certification failure, localized to the pass, plan step, local
/// stage, and element/table index that witnessed it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CertFinding {
    /// The pass that rejected the plan.
    pub pass: CertPass,
    /// Plan step the finding is anchored to, if step-local.
    pub step: Option<usize>,
    /// Stage within the step's local program, if stage-local.
    pub stage: Option<usize>,
    /// Witness index (buffer element, table slot, or output entry).
    pub index: Option<usize>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for CertFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} pass", self.pass)?;
        if let Some(s) = self.step {
            write!(f, ", step {s}")?;
        }
        if let Some(s) = self.stage {
            write!(f, ", stage {s}")?;
        }
        if let Some(i) = self.index {
            write!(f, ", index {i}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Certification configuration.
#[derive(Clone, Copy, Debug)]
pub struct CertOptions {
    /// Largest `n` the exact symbolic-equivalence sweep runs at (the
    /// sweep executes `2·n` basis vectors through the full plan over
    /// exact arithmetic; 64 — the largest codelet size — keeps it fast).
    pub symbolic_limit: usize,
}

impl Default for CertOptions {
    fn default() -> CertOptions {
        CertOptions { symbolic_limit: 64 }
    }
}

/// Verdict of certifying one plan (serializable).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CertReport {
    /// Transform size.
    pub n: usize,
    /// Thread count the plan targets.
    pub threads: usize,
    /// Cache-line parameter µ.
    pub mu: usize,
    /// Whether the dataflow pass accepted the plan.
    pub dataflow_certified: bool,
    /// Whether the symbolic pass accepted the plan; `None` when it did
    /// not run (`n` above the limit, or dataflow already rejected).
    pub symbolic_certified: Option<bool>,
    /// Failures, if any.
    pub findings: Vec<CertFinding>,
}

impl CertReport {
    /// True iff every pass that ran accepted the plan.
    pub fn is_certified(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Run both certification passes over a plan: dataflow always, and the
/// exact symbolic equivalence when `n ≤ opts.symbolic_limit` and the
/// dataflow pass accepted (a plan with broken dataflow has no
/// well-defined value semantics to compare).
pub fn certify_plan(plan: &Plan, opts: &CertOptions) -> CertReport {
    let mut findings = dataflow::certify_dataflow(plan);
    let dataflow_certified = findings.is_empty();
    let symbolic_certified = if dataflow_certified && plan.n <= opts.symbolic_limit {
        let sym = symbolic::certify_symbolic(plan);
        let ok = sym.is_empty();
        findings.extend(sym);
        Some(ok)
    } else {
        None
    };
    CertReport {
        n: plan.n,
        threads: plan.threads,
        mu: plan.mu,
        dataflow_certified,
        symbolic_certified,
        findings,
    }
}
