//! Exact symbolic equivalence: prove a lowered plan computes `DFT_n`,
//! entrywise, with zero tolerance.
//!
//! The plan IR is executed on every basis vector `e_j` over the exact
//! cyclotomic field fragment [`spiral_spl::exact`]: each floating-point
//! constant in the IR (twiddle tables, scale diagonals, codelet DAG
//! constants) is *snapped* to the root of unity `ω_N^k` it denotes
//! (`N = lcm(4, n)`, so every constant a size-`n` plan can contain is an
//! `N`-th root), and all subsequent algebra is exact rational arithmetic
//! on sparse root combinations. The run mirrors
//! [`Plan::execute_into`](spiral_codegen::plan::Plan::execute_into)
//! operation-for-operation — the same ping-pong buffer discipline, the
//! same four-case stage targeting, the same fused gather views — so a
//! certificate speaks about the code that actually runs, not a model of
//! it.
//!
//! Each plan is certified twice: once mirroring the interpreter's
//! hand-unrolled `F2`/`F4`/`F8` kernels, and once forcing every codelet
//! through its DAG form — the straight-line program the `cemit` C
//! backend prints. A plan is accepted only if **both** lowerings equal
//! `DFT_n` exactly: `plan(e_j)[k] = ω_n^{k·j}` for all `j, k`.
//!
//! Vector-marked stages (`vec_width = ν > 1`) are replayed the way the
//! ν-lane runtime path reads them: constants come from the lane-grouped
//! `twiddle_lanes` tables at `(flat/ν)·c·ν + t·ν + flat mod ν`, so a
//! swapped or mis-derived lane shuffle yields the wrong matrix and is
//! rejected entrywise (the per-lane codelet arithmetic is the identical
//! operation sequence to the scalar kernels, so no separate codelet
//! semantics is needed).

use super::{CertFinding, CertPass};
use spiral_codegen::codelet::dag::{Dag, Node};
use spiral_codegen::codelet::Codelet;
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::{KernelStage, LocalProgram, LocalStage};
use spiral_spl::cplx::Cplx;
use spiral_spl::exact::{lcm, Cyclo};

/// Certify the plan against `DFT_n` over exact arithmetic. Empty result
/// = proven equal entrywise; otherwise the first discrepancy or
/// non-certifiable construct found.
pub fn certify_symbolic(plan: &Plan) -> Vec<CertFinding> {
    match run(plan) {
        Ok(()) => Vec::new(),
        Err(f) => vec![f],
    }
}

fn fail(
    step: Option<usize>,
    stage: Option<usize>,
    index: Option<usize>,
    detail: String,
) -> CertFinding {
    CertFinding {
        pass: CertPass::Symbolic,
        step,
        stage,
        index,
        detail,
    }
}

fn run(plan: &Plan) -> Result<(), CertFinding> {
    let n = plan.n;
    if n == 0 {
        return Ok(());
    }
    let order = lcm(4, n);
    for use_dag in [false, true] {
        let semantics = if use_dag {
            "cemit (codelet DAG)"
        } else {
            "interpreter (hand kernels)"
        };
        for j in 0..n {
            let x: Vec<Cyclo> = (0..n)
                .map(|i| {
                    if i == j {
                        Cyclo::one(order)
                    } else {
                        Cyclo::zero(order)
                    }
                })
                .collect();
            let y = exec_plan(plan, x, order, use_dag)?;
            for (k, got) in y.iter().enumerate() {
                // DFT_n column j, entry k: ω_n^{kj}, lifted to ω_N.
                let expected = Cyclo::root(order, (k * j % n) * (order / n));
                if !got.eq_exact(&expected) {
                    return Err(fail(
                        None,
                        None,
                        Some(k),
                        format!(
                            "{semantics} semantics: plan(e_{j})[{k}] = {:?} ≈ {:?}, but \
                             DFT_{n}[{k},{j}] = ω_{n}^{} — plan is not DFT_{n}",
                            got,
                            got.to_cplx(),
                            k * j % n,
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Mirror of `Plan::execute_into` over exact values.
fn exec_plan(
    plan: &Plan,
    x: Vec<Cyclo>,
    order: usize,
    use_dag: bool,
) -> Result<Vec<Cyclo>, CertFinding> {
    let n = plan.n;
    let mut a = x;
    let mut b = vec![Cyclo::zero(order); n];
    for (si, step) in plan.steps.iter().enumerate() {
        match step {
            Step::Seq(p) => {
                if p.dim != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!("sequential program dimension {} != plan size {n}", p.dim),
                    ));
                }
                run_program(p, &SymSrc::Local(&a, 0), &mut b, order, use_dag, si)?;
            }
            Step::Par {
                chunk,
                programs,
                gather,
            } => {
                for (c, prog) in programs.iter().enumerate() {
                    let s = c * chunk;
                    let src = match gather {
                        Some(g) => SymSrc::Gathered {
                            buf: &a,
                            gather: g,
                            off: s,
                        },
                        None => SymSrc::Local(&a, s),
                    };
                    let dst = b.get_mut(s..s + chunk).ok_or_else(|| {
                        fail(
                            Some(si),
                            None,
                            Some(c),
                            format!(
                                "chunk {c} at [{s}, {}) exceeds the {n}-point buffer",
                                s + chunk
                            ),
                        )
                    })?;
                    run_program(prog, &src, dst, order, use_dag, si)?;
                }
            }
            Step::Exchange { table, .. } => {
                for (i, &s) in table.iter().enumerate() {
                    let v = a.get(s as usize).cloned().ok_or_else(|| {
                        fail(
                            Some(si),
                            None,
                            Some(i),
                            format!("exchange reads index {s} outside the {n}-point buffer"),
                        )
                    })?;
                    *b.get_mut(i).ok_or_else(|| {
                        fail(
                            Some(si),
                            None,
                            Some(i),
                            format!("exchange writes index {i} outside the {n}-point buffer"),
                        )
                    })? = v;
                }
            }
            Step::ScaleAll(w) => {
                if w.len() != n {
                    return Err(fail(
                        Some(si),
                        None,
                        None,
                        format!("scale table has {} entries, expected {n}", w.len()),
                    ));
                }
                for i in 0..n {
                    b[i] = a[i].mul(&snap(w[i], order, si, None, Some(i))?);
                }
            }
        }
        std::mem::swap(&mut a, &mut b);
    }
    Ok(a)
}

/// Input view of a symbolic stage — the exact analogue of
/// [`spiral_codegen::stage::SrcView`].
enum SymSrc<'a> {
    /// Chunk slice of the global source at the given offset.
    Local(&'a [Cyclo], usize),
    /// Fused exchange: logical `i` reads `buf[gather[off + i]]`.
    Gathered {
        buf: &'a [Cyclo],
        gather: &'a [u32],
        off: usize,
    },
}

impl SymSrc<'_> {
    fn get(&self, i: usize) -> Option<Cyclo> {
        match self {
            SymSrc::Local(s, off) => s.get(off + i).cloned(),
            SymSrc::Gathered { buf, gather, off } => gather
                .get(off + i)
                .and_then(|&g| buf.get(g as usize))
                .cloned(),
        }
    }
}

/// Mirror of `LocalProgram::run_view`: the same four-case ping-pong.
fn run_program(
    prog: &LocalProgram,
    src: &SymSrc<'_>,
    dst: &mut [Cyclo],
    order: usize,
    use_dag: bool,
    si: usize,
) -> Result<(), CertFinding> {
    let dim = prog.dim;
    let l = prog.stages.len();
    if dst.len() != dim {
        return Err(fail(
            Some(si),
            None,
            None,
            format!("program dimension {dim} != destination size {}", dst.len()),
        ));
    }
    if l == 0 {
        for (i, d) in dst.iter_mut().enumerate() {
            *d = src.get(i).ok_or_else(|| {
                fail(
                    Some(si),
                    None,
                    Some(i),
                    format!("identity copy reads logical index {i} out of bounds"),
                )
            })?;
        }
        return Ok(());
    }
    let mut tmp = vec![Cyclo::zero(order); dim];
    for (k, stage) in prog.stages.iter().enumerate() {
        let to_dst = (l - 1 - k).is_multiple_of(2);
        match (k == 0, to_dst) {
            (true, true) => apply_stage(stage, src, dst, order, use_dag, si, k)?,
            (true, false) => apply_stage(stage, src, &mut tmp, order, use_dag, si, k)?,
            (false, true) => {
                let view = SymSrc::Local(&tmp, 0);
                apply_stage(stage, &view, dst, order, use_dag, si, k)?;
            }
            (false, false) => {
                let view = SymSrc::Local(&*dst, 0);
                apply_stage(stage, &view, &mut tmp, order, use_dag, si, k)?;
            }
        }
    }
    Ok(())
}

fn apply_stage(
    stage: &LocalStage,
    src: &SymSrc<'_>,
    out: &mut [Cyclo],
    order: usize,
    use_dag: bool,
    si: usize,
    k: usize,
) -> Result<(), CertFinding> {
    match stage {
        LocalStage::Kernel(ks) => apply_kernel(ks, src, out, order, use_dag, si, k),
        LocalStage::Permute(t) => {
            if t.len() != out.len() {
                return Err(fail(
                    Some(si),
                    Some(k),
                    None,
                    format!(
                        "permute table has {} entries, expected {}",
                        t.len(),
                        out.len()
                    ),
                ));
            }
            for (i, &s) in t.iter().enumerate() {
                out[i] = src.get(s as usize).ok_or_else(|| {
                    fail(
                        Some(si),
                        Some(k),
                        Some(i),
                        format!("permute reads index {s} out of bounds"),
                    )
                })?;
            }
            Ok(())
        }
        LocalStage::Scale(w) => {
            if w.len() != out.len() {
                return Err(fail(
                    Some(si),
                    Some(k),
                    None,
                    format!(
                        "scale table has {} entries, expected {}",
                        w.len(),
                        out.len()
                    ),
                ));
            }
            for i in 0..out.len() {
                let v = src.get(i).ok_or_else(|| {
                    fail(
                        Some(si),
                        Some(k),
                        Some(i),
                        format!("scale reads index {i} out of bounds"),
                    )
                })?;
                out[i] = v.mul(&snap(w[i], order, si, Some(k), Some(i))?);
            }
            Ok(())
        }
    }
}

/// Mirror of `KernelStage::apply_inner`: gather (fused permutation +
/// twiddle-on-load), codelet, scatter (fused permutation +
/// twiddle-on-store), over the exact iteration space.
#[allow(clippy::too_many_arguments)]
fn apply_kernel(
    ks: &KernelStage,
    src: &SymSrc<'_>,
    out: &mut [Cyclo],
    order: usize,
    use_dag: bool,
    si: usize,
    k: usize,
) -> Result<(), CertFinding> {
    let c = ks.codelet.size();
    // Vector-marked stages read their constants through the lane-grouped
    // tables on contiguous (`Local`) views — exactly what the ν-lane
    // runtime path does — so a wrong lane shuffle produces a wrong
    // matrix here, at value level. Gathered views run the scalar path at
    // runtime and are mirrored with the scalar tables.
    let nu = ks.vec_width;
    let vec_exec = nu > 1 && matches!(src, SymSrc::Local(..));
    let lanes_in = vec_exec && ks.twiddle_lanes.is_some();
    let lanes_out = vec_exec && ks.twiddle_out_lanes.is_some();
    let lane_entry = |flat: usize, t: usize, grouped: bool| {
        if grouped {
            (flat / nu) * c * nu + t * nu + flat % nu
        } else {
            flat * c + t
        }
    };
    let mut input = vec![Cyclo::zero(order); c];
    let mut err: Option<CertFinding> = None;
    ks.for_each_iteration(|flat, in_base, out_base| {
        if err.is_some() {
            return;
        }
        let mut go = || -> Result<(), CertFinding> {
            for (t, slot) in input.iter_mut().enumerate() {
                let aff = in_base + t * ks.in_t_stride;
                let idx = match &ks.in_map {
                    Some(m) => *m.get(aff).ok_or_else(|| {
                        fail(
                            Some(si),
                            Some(k),
                            Some(aff),
                            format!("gather index {aff} outside the {}-entry in_map", m.len()),
                        )
                    })? as usize,
                    None => aff,
                };
                let mut v = src.get(idx).ok_or_else(|| {
                    fail(
                        Some(si),
                        Some(k),
                        Some(idx),
                        format!("kernel reads index {idx} out of bounds"),
                    )
                })?;
                let (w, name) = if lanes_in {
                    (&ks.twiddle_lanes, "twiddle_lanes")
                } else {
                    (&ks.twiddle, "twiddle")
                };
                if let Some(w) = w {
                    let e = lane_entry(flat, t, lanes_in);
                    let cst = *w.get(e).ok_or_else(|| {
                        fail(
                            Some(si),
                            Some(k),
                            Some(e),
                            format!("{name} index {e} outside the {}-entry table", w.len()),
                        )
                    })?;
                    v = v.mul(&snap(cst, order, si, Some(k), Some(e))?);
                }
                *slot = v;
            }
            let result = codelet_symbolic(&ks.codelet, &input, order, use_dag, si, k)?;
            for (t, mut v) in result.into_iter().enumerate() {
                let (w, name) = if lanes_out {
                    (&ks.twiddle_out_lanes, "twiddle_out_lanes")
                } else {
                    (&ks.twiddle_out, "twiddle_out")
                };
                if let Some(w) = w {
                    let e = lane_entry(flat, t, lanes_out);
                    let cst = *w.get(e).ok_or_else(|| {
                        fail(
                            Some(si),
                            Some(k),
                            Some(e),
                            format!("{name} index {e} outside the {}-entry table", w.len()),
                        )
                    })?;
                    v = v.mul(&snap(cst, order, si, Some(k), Some(e))?);
                }
                let aff = out_base + t * ks.out_t_stride;
                let idx = match &ks.out_map {
                    Some(m) => *m.get(aff).ok_or_else(|| {
                        fail(
                            Some(si),
                            Some(k),
                            Some(aff),
                            format!("scatter index {aff} outside the {}-entry out_map", m.len()),
                        )
                    })? as usize,
                    None => aff,
                };
                *out.get_mut(idx).ok_or_else(|| {
                    fail(
                        Some(si),
                        Some(k),
                        Some(idx),
                        format!("kernel writes index {idx} out of bounds"),
                    )
                })? = v;
            }
            Ok(())
        };
        if let Err(e) = go() {
            err = Some(e);
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Exact codelet application. With `use_dag` every size runs its DAG
/// form (what `cemit` prints); otherwise the hand-unrolled 2/4/8 paths
/// are mirrored operation-for-operation.
fn codelet_symbolic(
    codelet: &Codelet,
    x: &[Cyclo],
    order: usize,
    use_dag: bool,
    si: usize,
    k: usize,
) -> Result<Vec<Cyclo>, CertFinding> {
    if use_dag {
        return dag_symbolic(&codelet.dag(), x, order, si, k);
    }
    // −i = ω_N^{N/4}, +i = ω_N^{3N/4} (N is a multiple of 4).
    let neg_i = order / 4;
    match codelet {
        Codelet::F2 => Ok(vec![x[0].add(&x[1]), x[0].sub(&x[1])]),
        Codelet::F4 => {
            let t0 = x[0].add(&x[2]);
            let t1 = x[0].sub(&x[2]);
            let t2 = x[1].add(&x[3]);
            let t3 = x[1].sub(&x[3]).mul_root(neg_i);
            Ok(vec![t0.add(&t2), t1.add(&t3), t0.sub(&t2), t1.sub(&t3)])
        }
        Codelet::F8 => {
            const H: f64 = std::f64::consts::FRAC_1_SQRT_2;
            let w8 = snap(Cplx::new(H, -H), order, si, Some(k), None)?;
            let w83 = snap(Cplx::new(-H, -H), order, si, Some(k), None)?;
            let a0 = x[0].add(&x[4]);
            let a1 = x[0].sub(&x[4]);
            let a2 = x[2].add(&x[6]);
            let a3 = x[2].sub(&x[6]);
            let a4 = x[1].add(&x[5]);
            let a5 = x[1].sub(&x[5]);
            let a6 = x[3].add(&x[7]);
            let a7 = x[3].sub(&x[7]);
            let a3r = a3.mul_root(neg_i);
            let a7r = a7.mul_root(neg_i);
            let b0 = a0.add(&a2);
            let b2 = a0.sub(&a2);
            let b1 = a1.add(&a3r);
            let b3 = a1.sub(&a3r);
            let b4 = a4.add(&a6);
            let b6 = a4.sub(&a6);
            let b5 = a5.add(&a7r);
            let b7 = a5.sub(&a7r);
            let t5 = b5.mul(&w8);
            let t6 = b6.mul_root(neg_i);
            let t7 = b7.mul(&w83);
            Ok(vec![
                b0.add(&b4),
                b1.add(&t5),
                b2.add(&t6),
                b3.add(&t7),
                b0.sub(&b4),
                b1.sub(&t5),
                b2.sub(&t6),
                b3.sub(&t7),
            ])
        }
        Codelet::Dag(d) => dag_symbolic(d, x, order, si, k),
    }
}

/// Exact evaluation of a codelet DAG — the straight-line program the C
/// emitter prints, executed over cyclotomic values.
fn dag_symbolic(
    d: &Dag,
    input: &[Cyclo],
    order: usize,
    si: usize,
    k: usize,
) -> Result<Vec<Cyclo>, CertFinding> {
    let bad_node = |id: usize| {
        fail(
            Some(si),
            Some(k),
            Some(id),
            format!("codelet DAG node {id} references an undefined value"),
        )
    };
    let mut vals: Vec<Cyclo> = Vec::with_capacity(d.nodes.len());
    for (id, node) in d.nodes.iter().enumerate() {
        let at = |i: u32| vals.get(i as usize).cloned().ok_or_else(|| bad_node(id));
        let v = match *node {
            Node::Input(i) => input.get(i as usize).cloned().ok_or_else(|| {
                fail(
                    Some(si),
                    Some(k),
                    Some(i as usize),
                    format!(
                        "codelet DAG input {i} outside the {}-slot vector",
                        input.len()
                    ),
                )
            })?,
            Node::Add(a, b) => at(a)?.add(&at(b)?),
            Node::Sub(a, b) => at(a)?.sub(&at(b)?),
            Node::Mul(a, cst) => at(a)?.mul(&snap(cst, order, si, Some(k), Some(id))?),
            Node::MulI(a) => at(a)?.mul_root(3 * order / 4),
            Node::MulNegI(a) => at(a)?.mul_root(order / 4),
            Node::Neg(a) => at(a)?.neg(),
        };
        vals.push(v);
    }
    d.outputs
        .iter()
        .map(|&o| {
            vals.get(o as usize)
                .cloned()
                .ok_or_else(|| bad_node(o as usize))
        })
        .collect()
}

/// Snap a floating-point IR constant to the exact root of unity it
/// denotes; a constant that is not (within [`spiral_spl::exact::SNAP_EPS`])
/// an `N`-th root of unity cannot be certified.
fn snap(
    c: Cplx,
    order: usize,
    si: usize,
    stage: Option<usize>,
    index: Option<usize>,
) -> Result<Cyclo, CertFinding> {
    Cyclo::from_cplx_unit(c, order).ok_or_else(|| {
        fail(
            Some(si),
            stage,
            index,
            format!("constant {c:?} is not an order-{order} root of unity — not certifiable"),
        )
    })
}
