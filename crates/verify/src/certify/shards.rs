//! Shard-boundary certification for the `dist(q)` multi-process backend.
//!
//! The dist executor splits a plan's leading `Par` steps across `q`
//! worker processes: worker `s` owns the contiguous buffer partition
//! `regions[s]` and must never read or write outside it (processes
//! share no address space — an out-of-partition access would read a
//! *stale slab*, not another worker's fresh value, silently). This pass
//! proves the [`ShardSpec`] geometry sound against the plan:
//!
//! * **partition tiling** — the `q` regions tile `[0, n)` contiguously
//!   with equal lengths (equal work, no gap, no overlap);
//! * **chunk confinement** — at every sharded step, each region is a
//!   whole number of chunks, so no chunk program straddles a process
//!   boundary (a corrupted shard offset is caught here);
//! * **prefix shape** — the sharded prefix contains only `Par` steps,
//!   and only step 0 may carry a fused gather (a later gather reads the
//!   global intermediate buffer, which mid-prefix is split across
//!   processes);
//! * **exchange bijectivity at µ-granularity** — the step-0 gather the
//!   manager applies at scatter time is a bijection of `[0, n)` moving
//!   whole µ-element blocks, the paper's `P ⊗̄ I_µ` structure carried
//!   across the process boundary.
//!
//! Like the dataflow pass, the first violation stops the analysis.

use super::{dataflow, CertFinding, CertPass};
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::shard::ShardSpec;

/// Certify a shard geometry against its plan. Empty result = certified.
pub fn certify_shards(plan: &Plan, spec: &ShardSpec) -> Vec<CertFinding> {
    match run(plan, spec) {
        Ok(()) => Vec::new(),
        Err(f) => vec![f],
    }
}

fn fail(step: Option<usize>, index: Option<usize>, detail: String) -> CertFinding {
    CertFinding {
        pass: CertPass::Shards,
        step,
        stage: None,
        index,
        detail,
    }
}

/// Re-tag a dataflow-helper finding as a shards finding: the bijection
/// and µ-granularity predicates are shared with the dataflow pass, but
/// a violation found *here* is a shard-boundary defect.
fn retag(r: Result<(), CertFinding>) -> Result<(), CertFinding> {
    r.map_err(|mut f| {
        f.pass = CertPass::Shards;
        f
    })
}

fn run(plan: &Plan, spec: &ShardSpec) -> Result<(), CertFinding> {
    let n = plan.n;
    let q = spec.q;
    if q < 2 || !q.is_power_of_two() {
        return Err(fail(
            None,
            None,
            format!("shard spec has q = {q}, not a power of two ≥ 2"),
        ));
    }
    if spec.regions.len() != q {
        return Err(fail(
            None,
            None,
            format!("shard spec has {} regions for q = {q}", spec.regions.len()),
        ));
    }
    if !n.is_multiple_of(q) {
        return Err(fail(
            None,
            None,
            format!("{q} processes do not divide the {n}-point vector"),
        ));
    }
    let len = n / q;
    let mut expect = 0;
    for (s, r) in spec.regions.iter().enumerate() {
        if r.len != len {
            return Err(fail(
                None,
                Some(s),
                format!("region {s} has length {}, expected n/q = {len}", r.len),
            ));
        }
        if r.offset != expect {
            return Err(fail(
                None,
                Some(s),
                format!(
                    "region {s} starts at {}, expected {expect} — partitions must tile \
                     [0, {n}) contiguously",
                    r.offset
                ),
            ));
        }
        expect += len;
    }
    if spec.shard_steps == 0 || spec.shard_steps > plan.steps.len() {
        return Err(fail(
            None,
            None,
            format!(
                "sharded prefix of {} steps does not fit the {}-step plan",
                spec.shard_steps,
                plan.steps.len()
            ),
        ));
    }
    for (si, step) in plan.steps[..spec.shard_steps].iter().enumerate() {
        let Step::Par {
            chunk,
            programs,
            gather,
        } = step
        else {
            return Err(fail(
                Some(si),
                None,
                format!(
                    "sharded step `{}` is not a parallel chunk step",
                    step.label()
                ),
            ));
        };
        // Every region must be a whole number of chunks: a chunk that
        // straddles two regions would make one process read the other's
        // partition, which across address spaces is a stale slab.
        for (s, r) in spec.regions.iter().enumerate() {
            if !r.offset.is_multiple_of(*chunk) || !r.len.is_multiple_of(*chunk) {
                return Err(fail(
                    Some(si),
                    Some(s),
                    format!(
                        "region {s} [{}, {}) is not aligned to the step's chunk grid of \
                         {chunk} — a chunk would straddle the process boundary",
                        r.offset,
                        r.offset + r.len
                    ),
                ));
            }
        }
        match (si, gather) {
            (0, Some(g)) => {
                if g.len() != n {
                    return Err(fail(
                        Some(si),
                        None,
                        format!("scatter gather table has {} entries, expected {n}", g.len()),
                    ));
                }
                retag(dataflow::check_bijection(g, n, si, "shard scatter"))?;
                retag(dataflow::check_block_granularity(g, plan.mu, si))?;
            }
            (0, None) => {}
            (_, Some(_)) => {
                return Err(fail(
                    Some(si),
                    None,
                    "mid-prefix step carries a fused gather, which reads across process \
                     boundaries"
                        .to_string(),
                ));
            }
            (_, None) => {}
        }
        let _ = programs;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_codegen::plan::Plan;
    use spiral_codegen::shard::shard_plan;
    use spiral_rewrite::multicore_dft_expanded;

    fn fused_plan(n: usize, p: usize) -> Plan {
        let f = multicore_dft_expanded(n, p, 4, None, 8).unwrap();
        Plan::from_formula(&f, p, 4).unwrap().fuse_exchanges()
    }

    #[test]
    fn computed_specs_certify() {
        for (n, p, q) in [(64usize, 2usize, 2usize), (256, 4, 2), (256, 4, 4)] {
            let plan = fused_plan(n, p);
            let spec = shard_plan(&plan, q).unwrap();
            assert!(certify_shards(&plan, &spec).is_empty(), "n={n} p={p} q={q}");
        }
    }

    #[test]
    fn corrupted_region_offset_is_caught() {
        let plan = fused_plan(256, 4);
        let mut spec = shard_plan(&plan, 2).unwrap();
        spec.regions[1].offset += 1;
        let f = certify_shards(&plan, &spec);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pass, CertPass::Shards);
        assert!(f[0].detail.contains("tile"), "{}", f[0].detail);
    }

    #[test]
    fn chunk_straddling_region_is_caught() {
        let plan = fused_plan(256, 4);
        let mut spec = shard_plan(&plan, 2).unwrap();
        // Shift the boundary by one whole element but keep tiling by
        // also shrinking region 0: now regions are unequal → caught.
        spec.regions[0].len -= 1;
        let f = certify_shards(&plan, &spec);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("expected n/q"), "{}", f[0].detail);
    }

    #[test]
    fn oversized_prefix_is_caught() {
        let plan = fused_plan(256, 4);
        let mut spec = shard_plan(&plan, 2).unwrap();
        spec.shard_steps = plan.steps.len() + 1;
        let f = certify_shards(&plan, &spec);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("prefix"), "{}", f[0].detail);
    }

    #[test]
    fn mid_prefix_gather_is_caught() {
        // Extend the prefix over the second fused Par, which carries a
        // gather: the pass must reject reading across process boundaries.
        let plan = fused_plan(256, 4);
        let mut spec = shard_plan(&plan, 2).unwrap();
        assert_eq!(spec.shard_steps, 1);
        spec.shard_steps = 2;
        let f = certify_shards(&plan, &spec);
        assert_eq!(f.len(), 1);
        assert!(f[0].detail.contains("fused gather"), "{}", f[0].detail);
    }
}
