//! Acceptance sweeps: every plan compiled from the paper's formula (14)
//! must verify with zero findings — fused or not, across (n, p, µ) — in
//! agreement with the rewrite-level structural checker; and the analyzer
//! must reject the µ-oblivious baseline schedule whenever its slices
//! undercut a cache line.

use spiral_codegen::plan::Plan;
use spiral_rewrite::{check_fully_optimized, multicore_dft_expanded, sequential_dft};
use spiral_verify::baseline::FftwLikeSchedule;
use spiral_verify::{verify_fftw_like, verify_plan, DiagKind, VerifyOptions};

/// The (n, p, µ) grid: every point with (pµ)² | n up to 4096.
fn grid() -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for k in 6..=12u32 {
        let n = 1usize << k;
        for p in [2usize, 4] {
            for mu in [2usize, 4, 8] {
                let pmu = p * mu;
                if n.is_multiple_of(pmu * pmu) {
                    out.push((n, p, mu));
                }
            }
        }
    }
    out
}

#[test]
fn formula_14_plans_verify_with_zero_findings() {
    let grid = grid();
    assert!(grid.len() >= 10, "sweep too small: {grid:?}");
    for &(n, p, mu) in &grid {
        let f = multicore_dft_expanded(n, p, mu, None, 8).unwrap();
        // The rewrite-level checker and the IR-level analyzer must agree
        // that this program is fully optimized.
        check_fully_optimized(&f, p, mu).unwrap();
        let unfused = Plan::from_formula(&f, p, mu).unwrap();
        let fused = unfused.clone().fuse_exchanges();
        for (label, plan) in [("unfused", &unfused), ("fused", &fused)] {
            let report = verify_plan(plan, &VerifyOptions::default());
            assert!(
                report.is_clean(),
                "n={n} p={p} µ={mu} {label}: {:?}",
                report.diagnostics
            );
            assert_eq!(report.per_thread_flops.len(), p);
            // Definition 1's load balance shows up as equal flop shares.
            let max = report.per_thread_flops.iter().max().unwrap();
            let min = report.per_thread_flops.iter().min().unwrap();
            assert!(
                *max as f64 <= *min as f64 * 1.05,
                "n={n} p={p} µ={mu} {label}: flops {:?}",
                report.per_thread_flops
            );
        }
    }
}

#[test]
fn sequential_plans_verify_clean() {
    for k in [4u32, 6, 8, 10] {
        let n = 1usize << k;
        let f = sequential_dft(n, 8);
        let plan = Plan::from_formula(&f, 1, 4).unwrap();
        let report = verify_plan(&plan, &VerifyOptions::default());
        assert!(report.is_clean(), "n={n}: {:?}", report.diagnostics);
    }
}

#[test]
fn explicit_mu_override_keeps_generated_plans_clean() {
    // A plan generated for µ is line-clean at every µ' ≤ µ as well
    // (coarser-grained blocks stay block-aligned for finer lines).
    let f = multicore_dft_expanded(1024, 2, 8, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 2, 8).unwrap().fuse_exchanges();
    for line in [1usize, 2, 4, 8] {
        let opts = VerifyOptions {
            line: Some(line),
            ..Default::default()
        };
        let report = verify_plan(&plan, &opts);
        assert!(!report.has_errors(), "µ'={line}: {:?}", report.diagnostics);
    }
}

#[test]
fn block_cyclic_baseline_is_rejected_at_machine_mu() {
    // Grain-1 block-cyclic scheduling hands adjacent iterations to
    // different threads: sub-line write sharing at every size.
    for k in [3u32, 4, 5, 6, 8, 10] {
        let sched = FftwLikeSchedule {
            n: 1usize << k,
            threads: 2,
            grain: 1,
        };
        let report = verify_fftw_like(&sched, 4, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::FalseSharing),
            "n=2^{k}: {:?}",
            report.diagnostics
        );
        assert!(report.has_errors());
    }
}

#[test]
fn contiguous_baseline_fails_when_slices_undercut_a_line() {
    // Even the library's default contiguous split false-shares once
    // n/(2p) < µ — the per-thread k-slices of the last butterfly passes
    // land inside one cache line.
    for (n, threads, mu) in [(16usize, 2usize, 8usize), (32, 4, 8), (16, 4, 4)] {
        let sched = FftwLikeSchedule {
            n,
            threads,
            grain: 0,
        };
        let report = verify_fftw_like(&sched, mu, &VerifyOptions::default());
        assert!(
            report.has_kind(DiagKind::FalseSharing),
            "n={n} p={threads} µ={mu}: {:?}",
            report.diagnostics
        );
    }
    // …and is clean of line conflicts when every slice covers whole
    // lines (large n, µ-aligned boundaries).
    let sched = FftwLikeSchedule {
        n: 1024,
        threads: 2,
        grain: 0,
    };
    let report = verify_fftw_like(&sched, 4, &VerifyOptions::default());
    assert!(
        !report.has_kind(DiagKind::FalseSharing),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn reports_serialize_for_tooling() {
    let f = multicore_dft_expanded(256, 2, 4, None, 8).unwrap();
    let plan = Plan::from_formula(&f, 2, 4).unwrap().fuse_exchanges();
    let report = verify_plan(&plan, &VerifyOptions::default());
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: spiral_verify::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back.n, 256);
    assert!(back.is_clean());
}
