//! Property tests: over randomly drawn generation parameters, the
//! analyzer never reports soundness errors for correct-by-construction
//! plans, and its clean/dirty false-sharing verdict always matches the
//! dynamic simulator.

use proptest::prelude::*;
use proptest::sample::select;
use spiral_baselines::{FftwLikeConfig, FftwLikeFft};
use spiral_codegen::plan::Plan;
use spiral_rewrite::multicore_dft_expanded;
use spiral_sim::{core_duo, opteron, MachineSpec, SmpSim};
use spiral_verify::audit::LineTenureAudit;
use spiral_verify::baseline::FftwLikeSchedule;
use spiral_verify::{verify_fftw_like, verify_plan, DiagKind, VerifyOptions};

fn machine_for(threads: usize) -> MachineSpec {
    if threads <= 2 {
        core_duo()
    } else {
        opteron()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (n, p, µ, split, leaf) instantiations of formula (14):
    /// whatever the generation parameters, the compiled plan has no
    /// races or out-of-bounds accesses, and the analyzer's false-sharing
    /// verdict at the machine's µ matches the simulator's counter.
    fn random_formula_plans_sound_and_sim_consistent(
        k in 6u32..=11,
        p in select(vec![2usize, 4]),
        mu in select(vec![1usize, 2, 4, 8]),
        split_sel in 0usize..4,
        leaf in select(vec![4usize, 8]),
        fused in 0u8..2,
    ) {
        let n = 1usize << k;
        // Pick a legal top-level split for (14), if any.
        let pmu = p * mu;
        let splits: Vec<usize> = (1..n)
            .filter(|m| n.is_multiple_of(*m) && m % pmu == 0 && (n / m).is_multiple_of(pmu))
            .collect();
        if splits.is_empty() {
            return Ok(());
        }
        let m = splits[split_sel % splits.len()];
        let f = match multicore_dft_expanded(n, p, mu, Some(m), leaf) {
            Ok(f) => f,
            Err(_) => return Ok(()),
        };
        let mut plan = Plan::from_formula(&f, p, mu).unwrap();
        if fused == 1 {
            plan = plan.fuse_exchanges();
        }
        let machine = machine_for(p);
        let opts = VerifyOptions { line: Some(machine.mu()), ..Default::default() };
        let report = verify_plan(&plan, &opts);
        prop_assert_eq!(report.soundness_errors().count(), 0);
        let mut sim = SmpSim::new(machine, n);
        plan.run_traced(&mut sim);
        prop_assert_eq!(
            report.has_kind(DiagKind::FalseSharing),
            sim.stats.false_sharing > 0
        );
        // Plans generated at the machine's µ (or coarser) verify clean.
        if mu >= 4 {
            prop_assert!(report.is_clean());
        }
    }

    /// Random µ-oblivious baseline schedules: the audit reproduces the
    /// simulator's count exactly, and the combined static verdict agrees
    /// with the simulator's.
    fn random_baseline_schedules_sim_consistent(
        k in 3u32..=10,
        threads in select(vec![1usize, 2, 4]),
        grain in 0usize..=8,
    ) {
        let n = 1usize << k;
        let machine = machine_for(threads);
        if threads > machine.p {
            return Ok(());
        }
        let mu = machine.mu();
        let sched = FftwLikeSchedule { n, threads, grain };
        let report = verify_fftw_like(&sched, mu, &VerifyOptions::default());
        let cfg = FftwLikeConfig { grain, thread_pool: true, ..Default::default() };
        let f = FftwLikeFft::new(n, cfg);
        let mut audit = LineTenureAudit::new(n, mu);
        f.trace(threads, &mut audit);
        let mut sim = SmpSim::new(machine, n);
        f.trace(threads, &mut sim);
        prop_assert_eq!(audit.false_sharing, sim.stats.false_sharing);
        // The static check subsumes the simulator: every dynamically
        // observed stale transfer stems from a statically flagged
        // intra-step line conflict. The converse does not hold — the
        // simulator's tenure counter classifies the first trace-ordered
        // transfer of a line as *true* sharing when the previous owner
        // produced the whole line in the preceding pass, so a two-writer
        // final pass (e.g. grain 2 at µ = 4) is flagged statically but
        // never surfaces in the counter; on concurrent hardware that
        // line still ping-pongs, so the strict verdict is the right one.
        if sim.stats.false_sharing > 0 {
            prop_assert!(report.has_kind(DiagKind::FalseSharing));
        }
    }
}
