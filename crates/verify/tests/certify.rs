//! Certification acceptance: every tuner-reachable plan shape at
//! `n ≤ 64` is *proven* equal to `DFT_n` over exact arithmetic and
//! passes the dataflow certification, while deliberately corrupted IR is
//! rejected by the matching pass with a localized verdict.

use proptest::prelude::*;
use proptest::sample::select;
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::{KernelStage, LocalStage};
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_spl::builder::vec_tag;
use spiral_spl::cplx::Cplx;
use spiral_verify::certify::{certify_plan, CertOptions, CertPass};
use std::sync::Arc;

fn certified(plan: &Plan) {
    let rep = certify_plan(plan, &CertOptions::default());
    assert!(
        rep.is_certified(),
        "n={} p={} µ={} rejected: {}",
        plan.n,
        plan.threads,
        plan.mu,
        rep.findings[0]
    );
    assert!(rep.dataflow_certified);
    assert_eq!(rep.symbolic_certified, Some(true));
}

#[test]
fn sequential_plans_certify_exactly() {
    for k in 2..=6 {
        let n = 1usize << k;
        for leaf in [2, 4, 8] {
            let f = sequential_dft(n, leaf);
            let plan = Plan::from_formula(&f, 1, 1).unwrap();
            certified(&plan);
        }
    }
}

#[test]
fn multicore_plans_certify_exactly_fused_and_unfused() {
    for k in 4..=6 {
        let n = 1usize << k;
        for p in [2usize, 4] {
            for mu in [1usize, 2] {
                let Ok(f) = multicore_dft_expanded(n, p, mu, None, 8) else {
                    continue;
                };
                let plan = Plan::from_formula(&f, p, mu).unwrap();
                certified(&plan);
                certified(&plan.clone().fuse_exchanges());
            }
        }
    }
}

#[test]
fn large_n_gets_dataflow_only() {
    let f = sequential_dft(256, 8);
    let plan = Plan::from_formula(&f, 1, 1).unwrap();
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(rep.is_certified());
    assert!(rep.dataflow_certified);
    assert_eq!(rep.symbolic_certified, None);
}

/// A corrupted twiddle entry changes the computed matrix but breaks no
/// dataflow property — only the exact symbolic pass can see it.
#[test]
fn off_by_one_twiddle_rejected_by_symbolic_pass() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    // Rotate one twiddle entry off its true angle, wherever the
    // lowering put the table (load-fused, store-fused, or diagonal).
    let spin = Cplx::cis(-2.0 * std::f64::consts::PI / 16.0);
    let corrupt = |w: &Arc<Vec<Cplx>>| {
        let mut w = w.as_ref().clone();
        let i = w
            .iter()
            .position(|c| (c.im.abs() > 1e-3) && (c.re.abs() > 1e-3))
            .unwrap_or(w.len() - 1);
        w[i] *= spin;
        Arc::new(w)
    };
    'outer: for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        for stage in &mut p.stages {
            match stage {
                LocalStage::Kernel(ks) => {
                    if let Some(w) = &ks.twiddle {
                        ks.twiddle = Some(corrupt(w));
                    } else if let Some(w) = &ks.twiddle_out {
                        ks.twiddle_out = Some(corrupt(w));
                    } else {
                        continue;
                    }
                    hit = true;
                    break 'outer;
                }
                LocalStage::Scale(w) => {
                    *w = corrupt(w);
                    hit = true;
                    break 'outer;
                }
                LocalStage::Permute(_) => {}
            }
        }
    }
    assert!(hit, "expected a twiddle table to corrupt");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(rep.dataflow_certified, "dataflow cannot see value errors");
    assert_eq!(rep.symbolic_certified, Some(false));
    assert_eq!(rep.findings[0].pass, CertPass::Symbolic);
}

/// Swapping a loop's input stride redirects reads: either the dataflow
/// pass sees a coverage/bounds violation, or the symbolic pass sees the
/// wrong matrix. One of them must fire.
#[test]
fn swapped_stride_rejected() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    'outer: for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        for stage in &mut p.stages {
            let LocalStage::Kernel(ks) = stage else {
                continue;
            };
            for d in &mut ks.loops {
                if d.in_stride != d.out_stride {
                    std::mem::swap(&mut d.in_stride, &mut d.out_stride);
                    hit = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(hit, "expected a kernel loop with distinct strides");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.is_certified(), "stride swap must be caught");
}

/// Dropping a stage leaves the plan computing the wrong transform; the
/// remaining stages are still well-formed dataflow, so the symbolic pass
/// is the one that must catch it.
#[test]
fn dropped_stage_rejected() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        if p.stages.len() > 1 {
            p.stages.pop();
            hit = true;
            break;
        }
    }
    assert!(hit, "expected a multi-stage local program");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.is_certified(), "dropped stage must be caught");
}

/// An exchange table that repeats an index is not a permutation; the
/// dataflow pass rejects it before any symbolic work.
#[test]
fn non_bijective_exchange_rejected_by_dataflow() {
    let f = multicore_dft_expanded(32, 2, 1, None, 8).unwrap();
    let mut plan = Plan::from_formula(&f, 2, 1).unwrap();
    let mut hit = false;
    for step in &mut plan.steps {
        if let Step::Exchange { table, .. } = step {
            let mut t = table.as_ref().clone();
            t[0] = t[1];
            *table = Arc::new(t);
            hit = true;
            break;
        }
    }
    assert!(hit, "expected an exchange step");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.dataflow_certified);
    assert_eq!(rep.findings[0].pass, CertPass::Dataflow);
    assert_eq!(
        rep.symbolic_certified, None,
        "symbolic skipped after dataflow failure"
    );
}

/// Run `f` on the first vector-marked kernel stage (ν > 1) that carries
/// a lane-grouped twiddle table; returns whether one was found.
fn with_vec_stage(plan: &mut Plan, mut f: impl FnMut(&mut KernelStage)) -> bool {
    for step in &mut plan.steps {
        let progs: Vec<_> = match step {
            Step::Seq(p) => vec![p],
            Step::Par { programs, .. } => programs.iter_mut().collect(),
            _ => continue,
        };
        for prog in progs {
            for stage in &mut prog.stages {
                let LocalStage::Kernel(ks) = stage else {
                    continue;
                };
                if ks.vec_width > 1
                    && (ks.twiddle_lanes.is_some() || ks.twiddle_out_lanes.is_some())
                {
                    f(ks);
                    return true;
                }
            }
        }
    }
    false
}

/// Whichever lane-grouped table the stage carries (load- or store-fused
/// twiddles, depending on where the lowering put the diagonal).
fn lane_table(ks: &mut KernelStage) -> &mut Arc<Vec<Cplx>> {
    if let Some(t) = ks.twiddle_lanes.as_mut() {
        t
    } else {
        ks.twiddle_out_lanes.as_mut().unwrap()
    }
}

fn vec_plan(n: usize, nu: usize, leaf: usize) -> Plan {
    let plan = Plan::from_formula(&vec_tag(nu, sequential_dft(n, leaf)), 1, 1).unwrap();
    assert_eq!(plan.vec_width, nu, "n={n} nu={nu}: nothing vectorized");
    plan
}

#[test]
fn vector_plans_certify_exactly() {
    for n in [16usize, 32, 64] {
        for nu in [2usize, 4] {
            for leaf in [4usize, 8] {
                let plan = vec_plan(n, nu, leaf);
                certified(&plan);
            }
        }
    }
    // Multicore with fused exchange: the gathered first stage runs the
    // scalar path; later vector-marked stages certify over lane tables.
    let f = vec_tag(2, multicore_dft_expanded(64, 2, 2, None, 8).unwrap());
    let plan = Plan::from_formula(&f, 2, 2).unwrap();
    certified(&plan);
    certified(&plan.clone().fuse_exchanges());
}

/// Swapping two lanes inside one (group, slot) cell of the lane-grouped
/// twiddle table is exactly the "swapped lane shuffle" corruption: the
/// dataflow pass must reject it structurally (the table no longer
/// corresponds to the scalar one), before any symbolic work.
#[test]
fn swapped_lane_shuffle_rejected_by_dataflow() {
    let mut plan = vec_plan(64, 2, 4);
    let hit = with_vec_stage(&mut plan, |ks| {
        let nu = ks.vec_width;
        let lanes = Arc::make_mut(lane_table(ks));
        // Find a cell whose lanes actually differ, then swap them.
        let cell = (0..lanes.len() / nu)
            .find(|&c| {
                let (a, b) = (lanes[c * nu], lanes[c * nu + 1]);
                a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits()
            })
            .expect("a lane-varying twiddle cell");
        lanes.swap(cell * nu, cell * nu + 1);
    });
    assert!(hit, "expected a vector-marked stage with lane twiddles");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.dataflow_certified);
    assert_eq!(rep.findings[0].pass, CertPass::Dataflow);
    assert!(
        rep.findings[0].detail.contains("lane shuffle is wrong"),
        "{}",
        rep.findings[0]
    );
    assert_eq!(rep.symbolic_certified, None);
}

/// Knocking a vector-marked stage's base offset off ν-granularity is the
/// "misaligned ν-block" corruption: the marking's alignment claim is
/// false, and the dataflow pass must say which rule broke.
#[test]
fn misaligned_nu_block_rejected_by_dataflow() {
    let mut plan = vec_plan(64, 2, 4);
    let hit = with_vec_stage(&mut plan, |ks| {
        ks.in_off += 1;
    });
    assert!(hit, "expected a vector-marked stage");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.dataflow_certified);
    assert_eq!(rep.findings[0].pass, CertPass::Dataflow);
    assert!(
        rep.findings[0].detail.contains("misaligned nu-block"),
        "{}",
        rep.findings[0]
    );
}

/// The golden pin for the two vector rejection reasons: the exact
/// verdict strings are an interchange surface (tooling greps them), so
/// they live in the shared line-keyed `results/certify_reasons.golden`.
/// This test owns the `vec-*` lines; regenerate with
/// `UPDATE_GOLDEN=1 cargo test -p spiral-verify --test certify`.
#[test]
fn vector_rejection_reasons_match_golden_snapshot() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/certify_reasons.golden");
    let reason = |corrupt: &dyn Fn(&mut KernelStage)| -> String {
        let mut plan = vec_plan(64, 2, 4);
        assert!(with_vec_stage(&mut plan, |ks| corrupt(ks)));
        certify_plan(&plan, &CertOptions::default()).findings[0].to_string()
    };
    let got = [
        (
            "vec-swapped-lane-shuffle",
            reason(&|ks| {
                let nu = ks.vec_width;
                let lanes = Arc::make_mut(lane_table(ks));
                let cell = (0..lanes.len() / nu)
                    .find(|&c| {
                        let (a, b) = (lanes[c * nu], lanes[c * nu + 1]);
                        a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits()
                    })
                    .unwrap();
                lanes.swap(cell * nu, cell * nu + 1);
            }),
        ),
        ("vec-misaligned-block", reason(&|ks| ks.in_off += 1)),
    ];
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let existing = std::fs::read_to_string(&path).unwrap_or_default();
        let mut lines: Vec<String> = existing
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with("vec-"))
            .map(str::to_string)
            .collect();
        for (key, r) in &got {
            lines.push(format!("{key}: {r}"));
        }
        lines.sort();
        std::fs::write(&path, lines.join("\n") + "\n").expect("write golden snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1",
            path.display()
        )
    });
    for (key, r) in &got {
        let line = want
            .lines()
            .find(|l| l.starts_with(&format!("{key}: ")))
            .unwrap_or_else(|| panic!("no `{key}:` line in {}", path.display()));
        assert_eq!(
            line,
            &format!("{key}: {r}"),
            "vector rejection reason drifted; regenerate with UPDATE_GOLDEN=1"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random vec-tagged plans at certifiable sizes are proven equal to
    /// `DFT_n` — lane tables and all — and a random lane swap inside any
    /// lane-varying cell is always rejected by the dataflow pass.
    fn random_vector_plans_certify_and_corruptions_reject(
        k in 4u32..=6,
        nu in select(vec![2usize, 4]),
        leaf in select(vec![4usize, 8]),
        cell_sel in any::<u32>(),
    ) {
        let n = 1usize << k;
        let plan = vec_plan(n, nu, leaf);
        let rep = certify_plan(&plan, &CertOptions::default());
        prop_assert!(rep.is_certified(), "n={n} nu={nu} leaf={leaf}: {}", rep.findings[0]);
        prop_assert_eq!(rep.symbolic_certified, Some(true));

        let mut corrupted = plan;
        let hit = with_vec_stage(&mut corrupted, |ks| {
            let nu = ks.vec_width;
            let lanes = Arc::make_mut(lane_table(ks));
            let varying: Vec<usize> = (0..lanes.len() / nu)
                .filter(|&c| {
                    let (a, b) = (lanes[c * nu], lanes[c * nu + 1]);
                    a.re.to_bits() != b.re.to_bits() || a.im.to_bits() != b.im.to_bits()
                })
                .collect();
            if varying.is_empty() {
                return;
            }
            let cell = varying[cell_sel as usize % varying.len()];
            lanes.swap(cell * nu, cell * nu + 1);
        });
        if hit {
            let rep = certify_plan(&corrupted, &CertOptions::default());
            // Either the swap hit a varying cell (dataflow rejects) or
            // every cell was lane-constant (plan unchanged, certifies).
            if !rep.dataflow_certified {
                prop_assert_eq!(rep.findings[0].pass, CertPass::Dataflow);
                prop_assert!(rep.findings[0].detail.contains("lane shuffle is wrong"));
            }
        }
    }
}

#[test]
fn finding_display_is_localized() {
    let f = sequential_dft(8, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    if let Step::Seq(p) = &mut plan.steps[0] {
        p.stages.clear();
    }
    let rep = certify_plan(&plan, &CertOptions::default());
    // Either pass may fire depending on what clearing produced; the
    // finding must name its pass and carry a human-readable detail.
    if !rep.is_certified() {
        let s = rep.findings[0].to_string();
        assert!(s.contains("pass"), "display names the pass: {s}");
    }
}
