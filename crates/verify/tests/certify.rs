//! Certification acceptance: every tuner-reachable plan shape at
//! `n ≤ 64` is *proven* equal to `DFT_n` over exact arithmetic and
//! passes the dataflow certification, while deliberately corrupted IR is
//! rejected by the matching pass with a localized verdict.

use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::LocalStage;
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_spl::cplx::Cplx;
use spiral_verify::certify::{certify_plan, CertOptions, CertPass};
use std::sync::Arc;

fn certified(plan: &Plan) {
    let rep = certify_plan(plan, &CertOptions::default());
    assert!(
        rep.is_certified(),
        "n={} p={} µ={} rejected: {}",
        plan.n,
        plan.threads,
        plan.mu,
        rep.findings[0]
    );
    assert!(rep.dataflow_certified);
    assert_eq!(rep.symbolic_certified, Some(true));
}

#[test]
fn sequential_plans_certify_exactly() {
    for k in 2..=6 {
        let n = 1usize << k;
        for leaf in [2, 4, 8] {
            let f = sequential_dft(n, leaf);
            let plan = Plan::from_formula(&f, 1, 1).unwrap();
            certified(&plan);
        }
    }
}

#[test]
fn multicore_plans_certify_exactly_fused_and_unfused() {
    for k in 4..=6 {
        let n = 1usize << k;
        for p in [2usize, 4] {
            for mu in [1usize, 2] {
                let Ok(f) = multicore_dft_expanded(n, p, mu, None, 8) else {
                    continue;
                };
                let plan = Plan::from_formula(&f, p, mu).unwrap();
                certified(&plan);
                certified(&plan.clone().fuse_exchanges());
            }
        }
    }
}

#[test]
fn large_n_gets_dataflow_only() {
    let f = sequential_dft(256, 8);
    let plan = Plan::from_formula(&f, 1, 1).unwrap();
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(rep.is_certified());
    assert!(rep.dataflow_certified);
    assert_eq!(rep.symbolic_certified, None);
}

/// A corrupted twiddle entry changes the computed matrix but breaks no
/// dataflow property — only the exact symbolic pass can see it.
#[test]
fn off_by_one_twiddle_rejected_by_symbolic_pass() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    // Rotate one twiddle entry off its true angle, wherever the
    // lowering put the table (load-fused, store-fused, or diagonal).
    let spin = Cplx::cis(-2.0 * std::f64::consts::PI / 16.0);
    let corrupt = |w: &Arc<Vec<Cplx>>| {
        let mut w = w.as_ref().clone();
        let i = w
            .iter()
            .position(|c| (c.im.abs() > 1e-3) && (c.re.abs() > 1e-3))
            .unwrap_or(w.len() - 1);
        w[i] *= spin;
        Arc::new(w)
    };
    'outer: for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        for stage in &mut p.stages {
            match stage {
                LocalStage::Kernel(ks) => {
                    if let Some(w) = &ks.twiddle {
                        ks.twiddle = Some(corrupt(w));
                    } else if let Some(w) = &ks.twiddle_out {
                        ks.twiddle_out = Some(corrupt(w));
                    } else {
                        continue;
                    }
                    hit = true;
                    break 'outer;
                }
                LocalStage::Scale(w) => {
                    *w = corrupt(w);
                    hit = true;
                    break 'outer;
                }
                LocalStage::Permute(_) => {}
            }
        }
    }
    assert!(hit, "expected a twiddle table to corrupt");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(rep.dataflow_certified, "dataflow cannot see value errors");
    assert_eq!(rep.symbolic_certified, Some(false));
    assert_eq!(rep.findings[0].pass, CertPass::Symbolic);
}

/// Swapping a loop's input stride redirects reads: either the dataflow
/// pass sees a coverage/bounds violation, or the symbolic pass sees the
/// wrong matrix. One of them must fire.
#[test]
fn swapped_stride_rejected() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    'outer: for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        for stage in &mut p.stages {
            let LocalStage::Kernel(ks) = stage else {
                continue;
            };
            for d in &mut ks.loops {
                if d.in_stride != d.out_stride {
                    std::mem::swap(&mut d.in_stride, &mut d.out_stride);
                    hit = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(hit, "expected a kernel loop with distinct strides");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.is_certified(), "stride swap must be caught");
}

/// Dropping a stage leaves the plan computing the wrong transform; the
/// remaining stages are still well-formed dataflow, so the symbolic pass
/// is the one that must catch it.
#[test]
fn dropped_stage_rejected() {
    let f = sequential_dft(16, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    let mut hit = false;
    for step in &mut plan.steps {
        let Step::Seq(p) = step else { continue };
        if p.stages.len() > 1 {
            p.stages.pop();
            hit = true;
            break;
        }
    }
    assert!(hit, "expected a multi-stage local program");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.is_certified(), "dropped stage must be caught");
}

/// An exchange table that repeats an index is not a permutation; the
/// dataflow pass rejects it before any symbolic work.
#[test]
fn non_bijective_exchange_rejected_by_dataflow() {
    let f = multicore_dft_expanded(32, 2, 1, None, 8).unwrap();
    let mut plan = Plan::from_formula(&f, 2, 1).unwrap();
    let mut hit = false;
    for step in &mut plan.steps {
        if let Step::Exchange { table, .. } = step {
            let mut t = table.as_ref().clone();
            t[0] = t[1];
            *table = Arc::new(t);
            hit = true;
            break;
        }
    }
    assert!(hit, "expected an exchange step");
    let rep = certify_plan(&plan, &CertOptions::default());
    assert!(!rep.dataflow_certified);
    assert_eq!(rep.findings[0].pass, CertPass::Dataflow);
    assert_eq!(
        rep.symbolic_certified, None,
        "symbolic skipped after dataflow failure"
    );
}

#[test]
fn finding_display_is_localized() {
    let f = sequential_dft(8, 4);
    let mut plan = Plan::from_formula(&f, 1, 1).unwrap();
    if let Step::Seq(p) = &mut plan.steps[0] {
        p.stages.clear();
    }
    let rep = certify_plan(&plan, &CertOptions::default());
    // Either pass may fire depending on what clearing produced; the
    // finding must name its pass and carry a human-readable detail.
    if !rep.is_certified() {
        let s = rep.findings[0].to_string();
        assert!(s.contains("pass"), "display names the pass: {s}");
    }
}
