//! Cross-validation against the dynamic machine simulator: the analyzer's
//! tenure audit must reproduce `SmpSim`'s false-sharing counter exactly,
//! the static baseline model must reproduce the baseline's traced access
//! sets exactly, and the clean/dirty verdict must agree with the
//! simulator on every tested plan.

use spiral_baselines::{FftwLikeConfig, FftwLikeFft};
use spiral_codegen::hook::{MemHook, Region};
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::LocalProgram;
use spiral_rewrite::multicore_dft_expanded;
use spiral_sim::{core_duo, opteron, MachineSpec, SmpSim};
use spiral_verify::audit::{audit_plan, LineTenureAudit};
use spiral_verify::baseline::{fftw_like_footprints, FftwLikeSchedule};
use spiral_verify::footprint::StepFootprint;
use spiral_verify::{verify_plan, DiagKind, VerifyOptions};
use std::collections::{BTreeSet, HashMap};

fn machine_for(threads: usize) -> MachineSpec {
    if threads <= 2 {
        core_duo()
    } else {
        opteron()
    }
}

/// Handcrafted + derived plan corpus: clean µ-aware plans, µ-oblivious
/// derivations (µ' = 1) examined at the machine's µ, and a deliberately
/// line-splitting schedule.
fn corpus() -> Vec<(&'static str, Plan)> {
    let mut plans: Vec<(&'static str, Plan)> = Vec::new();
    for (n, p, mu) in [
        (64usize, 2usize, 4usize),
        (256, 2, 4),
        (256, 4, 4),
        (1024, 4, 8),
    ] {
        let f = multicore_dft_expanded(n, p, mu, None, 8).unwrap();
        plans.push(("mu-aware", Plan::from_formula(&f, p, mu).unwrap()));
        plans.push((
            "mu-aware-fused",
            Plan::from_formula(&f, p, mu).unwrap().fuse_exchanges(),
        ));
    }
    for (n, p) in [(16usize, 2usize), (64, 2), (64, 4), (256, 4)] {
        // Derived as if cache lines were one element long.
        let f = multicore_dft_expanded(n, p, 1, None, 8).unwrap();
        plans.push(("mu-oblivious", Plan::from_formula(&f, p, 1).unwrap()));
    }
    plans.push((
        "sub-line-chunks",
        Plan {
            n: 8,
            threads: 2,
            mu: 4,
            vec_width: 1,
            dist_procs: 1,
            steps: vec![Step::Par {
                chunk: 2,
                programs: vec![LocalProgram::identity(2); 4],
                gather: None,
            }],
        },
    ));
    plans
}

#[test]
fn tenure_audit_equals_simulator_false_sharing_counter() {
    for (label, plan) in corpus() {
        let machine = machine_for(plan.threads);
        let mu = machine.mu();
        let audit = audit_plan(&plan, mu);
        let mut sim = SmpSim::new(machine, plan.n);
        plan.run_traced(&mut sim);
        assert_eq!(
            audit.false_sharing, sim.stats.false_sharing,
            "{label} n={} p={}: audit vs simulator",
            plan.n, plan.threads
        );
    }
}

#[test]
fn verdict_agrees_with_simulator_on_every_tested_plan() {
    for (label, plan) in corpus() {
        let machine = machine_for(plan.threads);
        let mu = machine.mu();
        let opts = VerifyOptions {
            line: Some(mu),
            ..Default::default()
        };
        let report = verify_plan(&plan, &opts);
        let mut sim = SmpSim::new(machine, plan.n);
        plan.run_traced(&mut sim);
        assert_eq!(
            report.has_kind(DiagKind::FalseSharing),
            sim.stats.false_sharing > 0,
            "{label} n={} p={}: static verdict vs {} dynamic transfers ({:?})",
            plan.n,
            plan.threads,
            sim.stats.false_sharing,
            report.diagnostics
        );
    }
}

/// Exact (step, tid, region, index) access sets from any traced schedule.
#[derive(Default)]
struct SetHook {
    step: usize,
    reads: HashMap<(usize, usize, String), BTreeSet<usize>>,
    writes: HashMap<(usize, usize, String), BTreeSet<usize>>,
    flops: HashMap<(usize, usize), u64>,
}

impl MemHook for SetHook {
    fn read(&mut self, tid: usize, region: Region, idx: usize) {
        self.reads
            .entry((self.step, tid, format!("{region:?}")))
            .or_default()
            .insert(idx);
    }
    fn write(&mut self, tid: usize, region: Region, idx: usize) {
        self.writes
            .entry((self.step, tid, format!("{region:?}")))
            .or_default()
            .insert(idx);
    }
    fn flops(&mut self, tid: usize, count: u64) {
        *self.flops.entry((self.step, tid)).or_default() += count;
    }
    fn barrier(&mut self) {
        self.step += 1;
    }
}

fn footprint_sets(
    steps: &[StepFootprint],
    writes: bool,
) -> HashMap<(usize, usize, String), BTreeSet<usize>> {
    let mut out: HashMap<(usize, usize, String), BTreeSet<usize>> = HashMap::new();
    for sf in steps {
        for (tid, tf) in sf.threads.iter().enumerate() {
            let rs = if writes { &tf.writes } else { &tf.reads };
            for (region, set) in rs.iter() {
                let e = out
                    .entry((sf.index, tid, format!("{region:?}")))
                    .or_default();
                set.for_each(|x| {
                    e.insert(x);
                });
            }
        }
    }
    out
}

#[test]
fn baseline_model_reproduces_traced_baseline_exactly() {
    for n in [16usize, 64, 256] {
        for threads in [1usize, 2, 4] {
            for grain in [0usize, 1, 4] {
                let cfg = FftwLikeConfig {
                    grain,
                    thread_pool: true,
                    ..Default::default()
                };
                let f = FftwLikeFft::new(n, cfg);
                let mut hook = SetHook::default();
                f.trace(threads, &mut hook);
                let model = fftw_like_footprints(&FftwLikeSchedule { n, threads, grain });
                let tag = format!("n={n} p={threads} grain={grain}");
                assert_eq!(footprint_sets(&model, false), hook.reads, "{tag} reads");
                assert_eq!(footprint_sets(&model, true), hook.writes, "{tag} writes");
                for sf in &model {
                    for (tid, tf) in sf.threads.iter().enumerate() {
                        let traced = hook.flops.get(&(sf.index, tid)).copied().unwrap_or(0);
                        assert_eq!(tf.flops, traced, "{tag} step {} tid {tid}", sf.index);
                    }
                }
            }
        }
    }
}

#[test]
fn audit_matches_simulator_on_baseline_traces_too() {
    for n in [16usize, 64, 256, 1024] {
        for grain in [0usize, 1, 2] {
            let machine = core_duo();
            let cfg = FftwLikeConfig {
                grain,
                thread_pool: true,
                ..Default::default()
            };
            let f = FftwLikeFft::new(n, cfg);
            let mut audit = LineTenureAudit::new(n, machine.mu());
            f.trace(machine.p, &mut audit);
            let mut sim = SmpSim::new(machine.clone(), n);
            f.trace(machine.p, &mut sim);
            assert_eq!(
                audit.false_sharing, sim.stats.false_sharing,
                "n={n} grain={grain}"
            );
        }
    }
}
