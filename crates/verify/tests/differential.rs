//! Differential accuracy suite gating the short-vector backend: every
//! vector plan is property-tested against the scalar interpreter
//! (≤ 4 ulps per element — in practice bit-equal) and the naive `O(n²)`
//! reference DFT (scaled tolerance), over random rule trees, random and
//! adversarial inputs (denormals, mixed-sign, zero blocks), at
//! `n ∈ 2²..2¹²`, `p ∈ {1, 2, 4}`, `ν ∈ {1, 2, 4}`. A deliberately
//! mis-rotated twiddle table is the negative control: the harness must
//! fail it, on both legs, proving the gate actually gates.

use proptest::prelude::*;
use proptest::sample::select;
use spiral_codegen::plan::{Plan, Step};
use spiral_codegen::stage::LocalStage;
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_spl::builder::vec_tag;
use spiral_spl::cplx::Cplx;
use spiral_spl::Spl;
use spiral_verify::differential::{
    compare_plans, differential_check, max_ulps, reference_dft, reference_tolerance, MAX_ULPS,
};
use std::sync::Arc;

/// Deterministic pseudo-random input (splitmix64-driven), so failures
/// replay exactly from the proptest seed.
fn random_input(n: usize, mut seed: u64) -> Vec<Cplx> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut unit = move || (next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    (0..n).map(|_| Cplx::new(unit(), unit())).collect()
}

/// Adversarial input families the ulp policy must survive.
fn adversarial_input(n: usize, family: usize, seed: u64) -> Vec<Cplx> {
    let mut x = random_input(n, seed);
    match family {
        // Denormal-scale magnitudes: exercises gradual underflow.
        0 => {
            for v in &mut x {
                *v = *v * 1e-310;
            }
        }
        // Mixed-sign alternation with large dynamic range.
        1 => {
            for (j, v) in x.iter_mut().enumerate() {
                let s = if j % 2 == 0 { 1.0 } else { -1.0 };
                let m = if j % 3 == 0 { 1e9 } else { 1e-9 };
                *v = *v * (s * m);
            }
        }
        // Zero blocks: half the vector exactly zero (cancellation paths).
        _ => {
            for v in x.iter_mut().skip(n / 2) {
                *v = Cplx::ZERO;
            }
        }
    }
    x
}

/// A sequential or multicore formula for the drawn size, or `None` when
/// the parameters don't admit one.
fn formula_for(n: usize, p: usize, leaf: usize, mu: usize) -> Option<Spl> {
    if p == 1 {
        Some(sequential_dft(n, leaf))
    } else {
        multicore_dft_expanded(n, p, mu, None, leaf).ok()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: for random (n, p, ν, tree-leaf, input)
    /// draws, the vector execution stays within 4 ulps of the scalar
    /// one and within the scaled tolerance of the naive reference.
    fn vector_plans_match_scalar_and_reference(
        k in 2u32..=12,
        p in select(vec![1usize, 2, 4]),
        nu in select(vec![1usize, 2, 4]),
        leaf in select(vec![2usize, 4, 8]),
        seed in any::<u64>(),
    ) {
        let n = 1usize << k;
        let mu = 4;
        if p > 1 && !n.is_multiple_of((p * mu) * (p * mu)) {
            return Ok(());
        }
        let Some(f) = formula_for(n, p, leaf, mu) else { return Ok(()) };
        let x = random_input(n, seed);
        let rep = differential_check(&f, p, mu, nu, &x).unwrap();
        prop_assert!(
            rep.passes(),
            "n={n} p={p} nu={nu} leaf={leaf}: {} ulps vs scalar, {:.3e} vs reference (tol {:.3e})",
            rep.ulps_vs_scalar, rep.err_vs_reference, rep.reference_tol
        );
    }

    /// Same bound on the adversarial families: denormals, mixed-sign
    /// with large dynamic range, and zero blocks.
    fn adversarial_inputs_stay_within_ulp_policy(
        k in 2u32..=10,
        nu in select(vec![2usize, 4]),
        family in 0usize..3,
        seed in any::<u64>(),
    ) {
        let n = 1usize << k;
        let f = sequential_dft(n, 8);
        let x = adversarial_input(n, family, seed);
        let rep = differential_check(&f, 1, 4, nu, &x).unwrap();
        // The scalar leg must hold even when magnitudes underflow; the
        // reference leg inherits whatever tolerance the input's norm
        // grants (an all-denormal vector grants an absolute floor).
        prop_assert!(
            rep.ulps_vs_scalar <= MAX_ULPS,
            "n={n} nu={nu} family={family}: {} ulps vs scalar",
            rep.ulps_vs_scalar
        );
        prop_assert!(
            rep.err_vs_reference <= rep.reference_tol,
            "n={n} nu={nu} family={family}: {:.3e} vs tol {:.3e}",
            rep.err_vs_reference, rep.reference_tol
        );
    }
}

/// Mis-rotate one entry of every lane-grouped twiddle table in the plan
/// (and, when `both` is set, the corresponding scalar entries too, so
/// the corruption is internally consistent and invisible to the
/// structural lane-shuffle check). Returns whether anything was hit.
fn mis_rotate(plan: &mut Plan, both: bool) -> bool {
    let spin = Cplx::cis(1e-3);
    let mut hit = false;
    let corrupt = |w: &mut Option<Arc<Vec<Cplx>>>| -> bool {
        let Some(arc) = w.as_mut() else { return false };
        let t = Arc::make_mut(arc);
        let Some(v) = t.last_mut() else { return false };
        *v *= spin;
        true
    };
    for step in &mut plan.steps {
        let progs: Vec<_> = match step {
            Step::Seq(p) => vec![p],
            Step::Par { programs, .. } => programs.iter_mut().collect(),
            _ => continue,
        };
        for prog in progs {
            for stage in &mut prog.stages {
                let LocalStage::Kernel(ks) = stage else {
                    continue;
                };
                if ks.vec_width <= 1 {
                    continue;
                }
                let did = corrupt(&mut ks.twiddle_lanes) | corrupt(&mut ks.twiddle_out_lanes);
                if did && both {
                    // Keep the scalar tables consistent with the
                    // corrupted lane tables: re-derive them by inverting
                    // the lane shuffle, so the structural check passes
                    // and only value-level comparison can object.
                    let nu = ks.vec_width;
                    let c = ks.codelet.size();
                    for (lanes, scalar) in [
                        (&ks.twiddle_lanes, &mut ks.twiddle),
                        (&ks.twiddle_out_lanes, &mut ks.twiddle_out),
                    ] {
                        let (Some(lw), Some(sw)) = (lanes.as_deref(), scalar.as_mut()) else {
                            continue;
                        };
                        let s = Arc::make_mut(sw);
                        for g in 0..s.len() / (c * nu) {
                            for t in 0..c {
                                for l in 0..nu {
                                    s[(g * nu + l) * c + t] = lw[g * c * nu + t * nu + l];
                                }
                            }
                        }
                    }
                }
                hit |= did;
            }
        }
    }
    hit
}

/// Negative control A: corrupting only the lane-grouped table makes the
/// vector execution diverge from the scalar one — the vector-vs-scalar
/// leg must fail, and the structural lane-shuffle certification must
/// reject the IR independently.
#[test]
fn mis_rotated_lane_twiddle_fails_scalar_leg() {
    let n = 256;
    let f = vec_tag(4, sequential_dft(n, 8));
    let scalar = Plan::from_formula(&sequential_dft(n, 8), 1, 4).unwrap();
    let mut vector = Plan::from_formula(&f, 1, 4).unwrap();
    assert_eq!(vector.vec_width, 4, "control needs a vectorized plan");
    assert!(mis_rotate(&mut vector, false), "no lane table to corrupt");
    if cfg!(feature = "force-scalar") {
        // Forced-scalar builds never read the lane tables; the control
        // collapses to the structural rejection below.
    } else {
        let rep = compare_plans(&vector, &scalar, &random_input(n, 7));
        assert!(
            rep.ulps_vs_scalar > MAX_ULPS,
            "harness failed to catch a mis-rotated lane twiddle ({} ulps)",
            rep.ulps_vs_scalar
        );
        assert!(!rep.passes());
    }
    let findings = spiral_verify::certify::dataflow::certify_dataflow(&vector);
    assert!(
        findings
            .iter()
            .any(|f| f.detail.contains("lane shuffle is wrong")),
        "structural check missed the inconsistent lane table: {findings:?}"
    );
}

/// Negative control B: corrupting the lane table *and* the scalar table
/// consistently slips past the structural lane-shuffle check — only a
/// value-level comparison against the independent reference can catch
/// it. The harness must fail the reference leg.
#[test]
fn consistently_mis_rotated_twiddle_fails_reference_leg() {
    let n = 256;
    let f = vec_tag(4, sequential_dft(n, 8));
    let mut vector = Plan::from_formula(&f, 1, 4).unwrap();
    assert_eq!(vector.vec_width, 4);
    assert!(mis_rotate(&mut vector, true), "no lane table to corrupt");
    // Internally consistent: the structural pass accepts it.
    let findings = spiral_verify::certify::dataflow::certify_dataflow(&vector);
    assert!(
        findings.is_empty(),
        "consistent corruption should pass structure: {findings:?}"
    );
    let x = random_input(n, 11);
    let y = vector.execute(&x);
    let r = reference_dft(&x);
    let err = spiral_spl::cplx::max_dist(&y, &r);
    assert!(
        err > reference_tolerance(&x),
        "harness failed to catch a consistently mis-rotated twiddle (err {err:.3e})"
    );
}

/// The vector path is exercised for real: a vec-tagged plan at every
/// supported ν marks at least one stage at n ≥ 16, and its output is
/// bit-identical to the scalar plan (the per-lane operation sequence is
/// the same), which is what makes the 4-ulp budget conservative.
#[test]
fn vector_marking_and_bit_equality_sweep() {
    for k in [4u32, 6, 8, 10] {
        let n = 1usize << k;
        for nu in [2usize, 4] {
            let base = sequential_dft(n, 8);
            let scalar = Plan::from_formula(&base, 1, 4).unwrap();
            let vector = Plan::from_formula(&vec_tag(nu, base), 1, 4).unwrap();
            assert_eq!(vector.vec_width, nu, "n={n} nu={nu}: nothing vectorized");
            let x = random_input(n, 1000 + n as u64);
            assert_eq!(
                max_ulps(&vector.execute(&x), &scalar.execute(&x)),
                0,
                "n={n} nu={nu}: vector path not bit-identical to scalar"
            );
        }
    }
}
