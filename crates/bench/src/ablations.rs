//! Ablation experiments for the design choices the paper argues for:
//! µ-aware scheduling (no false sharing), consecutive-iteration
//! scheduling (rule (7)), explicit six-step transposes vs. the multicore
//! Cooley–Tukey, and the search strategies.

use crate::series::{sim_pmflops, tune_spiral};
use serde::{Deserialize, Serialize};
use spiral_baselines::{FftwLikeConfig, FftwLikeFft, SixStepFft};
use spiral_search::{dp_search, evolve_search, random_search, CostModel, EvolveOpts};
use spiral_sim::{simulate_plan, MachineSpec, SmpSim};
use spiral_spl::num::pseudo_mflops;

/// One row of the false-sharing ablation (ABL-FS).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FalseSharingRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Spiral (µ-aware, formula (14)).
    pub spiral_false_sharing: u64,
    /// Coherence transfers of the generated plan.
    pub spiral_coherence: u64,
    /// Simulated cycles of the generated plan.
    pub spiral_cycles: f64,
    /// µ-oblivious block-cyclic baseline (grain 1).
    pub naive_false_sharing: u64,
    /// Coherence transfers of the µ-oblivious baseline.
    pub naive_coherence: u64,
    /// Simulated cycles of the µ-oblivious baseline.
    pub naive_cycles: f64,
}

/// Compare false-sharing behaviour: generated multicore CT vs. a
/// µ-oblivious block-cyclic parallel FFT, at `machine.p` threads.
pub fn false_sharing_ablation(
    machine: &MachineSpec,
    min_log2: u32,
    max_log2: u32,
) -> Vec<FalseSharingRow> {
    let mut rows = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let plans = tune_spiral(n, machine);
        let (spiral_fs, spiral_co, spiral_cy) = match plans.parallel.last() {
            Some((_t, plan)) => {
                let rep = simulate_plan(plan, machine, true);
                (
                    rep.stats.false_sharing,
                    rep.stats.coherence_transfers,
                    rep.cycles,
                )
            }
            None => continue,
        };
        // µ-oblivious: thread pooling ON so only the schedule differs.
        let cfg = FftwLikeConfig {
            grain: 1,
            thread_pool: true,
            ..Default::default()
        };
        let f = FftwLikeFft::new(n, cfg);
        let mut sim = SmpSim::new(machine.clone(), n);
        f.trace(machine.p, &mut sim);
        sim.reset_timing();
        f.trace(machine.p, &mut sim);
        rows.push(FalseSharingRow {
            log2n: k,
            spiral_false_sharing: spiral_fs,
            spiral_coherence: spiral_co,
            spiral_cycles: spiral_cy,
            naive_false_sharing: sim.stats.false_sharing,
            naive_coherence: sim.stats.coherence_transfers,
            naive_cycles: sim.cycles(),
        });
    }
    rows
}

/// One row of the exchange-merging ablation (ABL-MERGE).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MergeRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Cycles with explicit exchange passes.
    pub explicit_cycles: f64,
    /// Barrier count with explicit exchanges.
    pub explicit_barriers: usize,
    /// Cycles with exchanges merged into compute.
    pub fused_cycles: f64,
    /// Barrier count after merging.
    pub fused_barriers: usize,
}

/// Explicit `P ⊗̄ I_µ` exchange passes vs. exchanges merged into the
/// adjacent compute loops (`Plan::fuse_exchanges`) — quantifies the
/// loop-merging design point of §3.1.
pub fn merge_ablation(machine: &MachineSpec, min_log2: u32, max_log2: u32) -> Vec<MergeRow> {
    use spiral_codegen::plan::Plan;
    use spiral_rewrite::multicore_dft_expanded;
    let mut rows = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let f = match multicore_dft_expanded(n, machine.p, machine.mu(), None, 8) {
            Ok(f) => f,
            Err(_) => continue,
        };
        let explicit = Plan::from_formula(&f, machine.p, machine.mu()).unwrap();
        let fused = explicit.clone().fuse_exchanges();
        let re = simulate_plan(&explicit, machine, true);
        let rf = simulate_plan(&fused, machine, true);
        rows.push(MergeRow {
            log2n: k,
            explicit_cycles: re.cycles,
            explicit_barriers: explicit.barriers(),
            fused_cycles: rf.cycles,
            fused_barriers: fused.barriers(),
        });
    }
    rows
}

/// One row of the scheduling-grain ablation (ABL-SCHED).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScheduleRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Scheduling grain in iterations.
    pub grain: usize,
    /// False-sharing line transfers.
    pub false_sharing: u64,
    /// Simulated cycles.
    pub cycles: f64,
    /// Pseudo-Mflop/s.
    pub pmflops: f64,
}

/// Sweep the block-cyclic grain of the µ-oblivious baseline: grain 1
/// (worst false sharing) → µ-sized → large consecutive chunks (what rule
/// (7) produces).
pub fn schedule_ablation(machine: &MachineSpec, log2n: u32, grains: &[usize]) -> Vec<ScheduleRow> {
    let n = 1usize << log2n;
    let mut rows = Vec::new();
    for &grain in grains {
        let cfg = FftwLikeConfig {
            grain,
            thread_pool: true,
            ..Default::default()
        };
        let f = FftwLikeFft::new(n, cfg);
        let mut sim = SmpSim::new(machine.clone(), n);
        f.trace(machine.p, &mut sim);
        sim.reset_timing();
        f.trace(machine.p, &mut sim);
        rows.push(ScheduleRow {
            log2n,
            grain,
            false_sharing: sim.stats.false_sharing,
            cycles: sim.cycles(),
            pmflops: pseudo_mflops(n, machine.cycles_to_us(sim.cycles())),
        });
    }
    rows
}

/// One row of the six-step ablation (ABL-SIXSTEP).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SixStepRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Pseudo-Mflop/s of the multicore Cooley–Tukey (14).
    pub multicore_ct_pmflops: f64,
    /// Pseudo-Mflop/s of the plain six-step.
    pub sixstep_pmflops: f64,
    /// Pseudo-Mflop/s of the blocked-transpose six-step.
    pub sixstep_blocked_pmflops: f64,
}

/// Multicore Cooley–Tukey (14) vs. six-step with explicit transposes
/// (plain and blocked), all at `machine.p` threads, simulated.
pub fn sixstep_ablation(machine: &MachineSpec, min_log2: u32, max_log2: u32) -> Vec<SixStepRow> {
    let mut rows = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let plans = tune_spiral(n, machine);
        let mc = match plans.parallel.last() {
            Some((_t, plan)) => sim_pmflops(plan, machine),
            None => continue,
        };
        let trace_six = |block: Option<usize>| {
            let f = SixStepFft::for_size(n, block);
            let mut sim = SmpSim::new(machine.clone(), n);
            f.trace(machine.p, &mut sim);
            sim.reset_timing();
            f.trace(machine.p, &mut sim);
            pseudo_mflops(n, machine.cycles_to_us(sim.cycles()))
        };
        rows.push(SixStepRow {
            log2n: k,
            multicore_ct_pmflops: mc,
            sixstep_pmflops: trace_six(None),
            sixstep_blocked_pmflops: trace_six(Some(machine.mu() * 4)),
        });
    }
    rows
}

/// One row of the static-verification ablation (ABL-VERIFY).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerifyRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Analyzer findings on the tuned µ-aware multicore-CT plan.
    pub spiral_diagnostics: usize,
    /// Static false-sharing verdict for the tuned plan.
    pub spiral_static_false_sharing: bool,
    /// Dynamic false-sharing transfers of the tuned plan (simulator).
    pub spiral_sim_false_sharing: u64,
    /// Analyzer findings on the µ-oblivious FFTW-like schedule (grain 1).
    pub naive_diagnostics: usize,
    /// Static false-sharing verdict for the µ-oblivious schedule.
    pub naive_static_false_sharing: bool,
    /// Dynamic false-sharing transfers of the µ-oblivious baseline.
    pub naive_sim_false_sharing: u64,
    /// Static verdicts match the simulator on both schedules.
    pub verdicts_agree: bool,
}

/// Static analyzer vs. dynamic simulator: the tuned µ-aware plan must
/// verify clean, the µ-oblivious block-cyclic baseline must be rejected
/// statically, and both verdicts must agree with the simulator's
/// false-sharing counter — Definition 1 decided without running anything.
pub fn verification_ablation(
    machine: &MachineSpec,
    min_log2: u32,
    max_log2: u32,
) -> Vec<VerifyRow> {
    use spiral_verify::baseline::FftwLikeSchedule;
    use spiral_verify::{verify_fftw_like, verify_plan, DiagKind, VerifyOptions};
    let opts = VerifyOptions::default();
    let mut rows = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let plans = tune_spiral(n, machine);
        let Some((_t, plan)) = plans.parallel.last() else {
            continue;
        };
        let report = verify_plan(plan, &opts);
        let spiral_sim = simulate_plan(plan, machine, false).stats.false_sharing;

        let sched = FftwLikeSchedule {
            n,
            threads: machine.p,
            grain: 1,
        };
        let naive_report = verify_fftw_like(&sched, machine.mu(), &opts);
        let cfg = FftwLikeConfig {
            grain: 1,
            thread_pool: true,
            ..Default::default()
        };
        let f = FftwLikeFft::new(n, cfg);
        let mut sim = SmpSim::new(machine.clone(), n);
        f.trace(machine.p, &mut sim);
        let naive_sim = sim.stats.false_sharing;

        let spiral_fs = report.has_kind(DiagKind::FalseSharing);
        let naive_fs = naive_report.has_kind(DiagKind::FalseSharing);
        rows.push(VerifyRow {
            log2n: k,
            spiral_diagnostics: report.diagnostics.len(),
            spiral_static_false_sharing: spiral_fs,
            spiral_sim_false_sharing: spiral_sim,
            naive_diagnostics: naive_report.diagnostics.len(),
            naive_static_false_sharing: naive_fs,
            naive_sim_false_sharing: naive_sim,
            verdicts_agree: spiral_fs == (spiral_sim > 0) && naive_fs == (naive_sim > 0),
        });
    }
    rows
}

/// A tuned parallel plan on the host paired with its input vector —
/// the setup every host-side overhead ablation repeats.
struct HostCase {
    log2n: u32,
    plan: spiral_codegen::plan::Plan,
    x: Vec<spiral_spl::cplx::Cplx>,
}

/// Tune one parallel plan per size in `min_log2..=max_log2` for
/// `threads` workers (analytic cost model) and build the standard
/// deterministic input. Sizes with no tunable parallel plan are
/// skipped, matching each ablation's `continue` behaviour.
fn tuned_host_cases(threads: usize, min_log2: u32, max_log2: u32) -> Vec<HostCase> {
    use spiral_search::Tuner;
    use spiral_spl::cplx::Cplx;
    let mu = spiral_smp::topology::mu();
    let mut cases = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        let Ok(Some(tuned)) = Tuner::new(threads, mu, CostModel::Analytic).tune_parallel(n) else {
            continue;
        };
        let x: Vec<Cplx> = (0..n)
            .map(|i| Cplx::new(i as f64, -0.5 * i as f64))
            .collect();
        cases.push(HostCase {
            log2n: k,
            plan: tuned.plan,
            x,
        });
    }
    cases
}

/// Minimum wall-clock µs of `f` over `reps + 1` invocations; the extra
/// first call doubles as warm-up, and min-of-reps suppresses scheduler
/// noise the same way the paper's timing loops do.
fn min_time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    let mut best = f64::INFINITY;
    for _ in 0..=reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

/// One row of the fault-tolerance overhead ablation (ABL-FAULT).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FaultOverheadRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Wall-clock µs per transform through the fault-tolerant parallel
    /// path (`try_execute`: panic isolation, deadline-bounded barriers,
    /// output finiteness scan) — min over reps.
    pub exec_us: f64,
    /// µs of the output finiteness scan alone (min over reps).
    pub scan_us: f64,
    /// Scan cost as a percentage of the transform time.
    pub scan_pct: f64,
    /// µs of one deadline-bounded barrier round-trip at `threads`.
    pub barrier_wait_us: f64,
    /// Trace-attributed per-transform compute µs (sum over threads and
    /// stages, from a traced run). `0.0` when built without `trace`.
    pub compute_us: f64,
    /// Trace-attributed per-transform barrier-wait µs (sum over threads
    /// and stages). `0.0` when built without `trace`.
    pub barrier_us: f64,
    /// Barrier-wait share of thread busy time, in percent
    /// (`RunProfile::barrier_share`). `0.0` when built without `trace`.
    pub barrier_share_pct: f64,
}

/// Measure what the fault-tolerant execution layer costs on the happy
/// path: per-transform time through `try_execute` (all guards active),
/// the output finiteness scan in isolation, and the deadline-bounded
/// barrier round-trip. The paper's design point — "low-latency minimal
/// overhead synchronization" (§3.2) — must survive the watchdogs.
pub fn fault_overhead_ablation(
    threads: usize,
    min_log2: u32,
    max_log2: u32,
    reps: usize,
) -> Vec<FaultOverheadRow> {
    use spiral_codegen::ParallelExecutor;
    use spiral_smp::barrier::BarrierKind;
    use spiral_smp::pool::Pool;
    use spiral_spl::cplx::first_non_finite;
    use std::time::Instant;

    let reps = reps.max(1);
    let exec = ParallelExecutor::new(threads, BarrierKind::Park);

    // Deadline-bounded barrier round-trip, amortized over many waits.
    let barrier_wait_us = {
        let pool = Pool::new(threads);
        let barrier = BarrierKind::Park.build(threads);
        let barrier = &*barrier;
        let iters = 2000u32;
        let t0 = Instant::now();
        pool.run(&|_tid| {
            for _ in 0..iters {
                let _ = barrier.wait_deadline(std::time::Duration::from_secs(10));
            }
        });
        t0.elapsed().as_secs_f64() * 1e6 / f64::from(iters)
    };

    let mut rows = Vec::new();
    for case in tuned_host_cases(threads, min_log2, max_log2) {
        let mut out = Vec::new();
        let exec_us = min_time_us(reps, || {
            out = exec
                .try_execute(&case.plan, &case.x)
                .expect("healthy plan must execute");
        });
        let scan_us = min_time_us(reps, || {
            std::hint::black_box(first_non_finite(&out));
        });
        // Trace-based attribution: split the run into measured compute
        // and measured barrier wait instead of inferring barrier cost
        // from a standalone round-trip microbenchmark.
        #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
        let (mut compute_us, mut barrier_us, mut barrier_share_pct) = (0.0, 0.0, 0.0);
        #[cfg(feature = "trace")]
        {
            let mut merged: Option<spiral_trace::RunProfile> = None;
            for _ in 0..reps {
                if let Ok((_, p)) = exec.try_execute_traced(&case.plan, &case.x) {
                    merged = Some(match merged.take() {
                        Some(m) => m.try_merge(&p).unwrap_or(p),
                        None => p,
                    });
                }
            }
            if let Some(p) = merged {
                let runs = p.runs.max(1) as f64;
                compute_us = p.total_compute_ns() as f64 / 1e3 / runs;
                barrier_us = p.total_barrier_wait_ns() as f64 / 1e3 / runs;
                barrier_share_pct = 100.0 * p.barrier_share();
            }
        }
        rows.push(FaultOverheadRow {
            log2n: case.log2n,
            exec_us,
            scan_us,
            scan_pct: 100.0 * scan_us / exec_us,
            barrier_wait_us,
            compute_us,
            barrier_us,
            barrier_share_pct,
        });
    }
    rows
}

/// One row of the tracing-overhead ablation (ABL-TRACE).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceOverheadRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Wall-clock µs per transform through the plain fallible path
    /// (`try_execute`) — min over reps.
    pub plain_us: f64,
    /// Wall-clock µs per transform through the traced path
    /// (`try_execute_traced`) when built with `trace`; a second plain
    /// pass otherwise (so the row doubles as a noise floor).
    pub traced_us: f64,
    /// `100 · (traced - plain) / plain`.
    pub overhead_pct: f64,
    /// Whether the traced column really measured the instrumented path
    /// (`false` = built without the `trace` feature).
    pub traced_available: bool,
}

/// Measure what the observability layer costs when it is ON: tuned plan,
/// plain `try_execute` vs `try_execute_traced`, min-of-reps. Built
/// without the `trace` feature, the second pass is plain again — the
/// delta then shows the noise floor of the comparison itself, which is
/// the relevant claim for the disabled configuration (the instrumented
/// code does not exist, so the overhead is structurally zero).
pub fn trace_overhead_ablation(
    threads: usize,
    min_log2: u32,
    max_log2: u32,
    reps: usize,
) -> Vec<TraceOverheadRow> {
    use spiral_codegen::ParallelExecutor;
    use spiral_smp::barrier::BarrierKind;

    let reps = reps.max(1);
    let exec = ParallelExecutor::new(threads, BarrierKind::Park);
    let mut rows = Vec::new();
    for case in tuned_host_cases(threads, min_log2, max_log2) {
        let time_plain = || {
            min_time_us(reps, || {
                std::hint::black_box(
                    exec.try_execute(&case.plan, &case.x)
                        .expect("healthy plan must execute"),
                );
            })
        };
        let plain_us = time_plain();
        #[cfg(feature = "trace")]
        let traced_us = min_time_us(reps, || {
            std::hint::black_box(
                exec.try_execute_traced(&case.plan, &case.x)
                    .expect("healthy plan must execute"),
            );
        });
        #[cfg(not(feature = "trace"))]
        let traced_us = time_plain();
        rows.push(TraceOverheadRow {
            log2n: case.log2n,
            plain_us,
            traced_us,
            overhead_pct: 100.0 * (traced_us - plain_us) / plain_us,
            traced_available: cfg!(feature = "trace"),
        });
    }
    rows
}

/// One row of the timeline-overhead ablation (ABL-TIMELINE).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimelineOverheadRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Wall-clock µs per transform through the plain fallible path
    /// (`try_execute`) — min over reps.
    pub plain_us: f64,
    /// Wall-clock µs per transform with full event-timeline recording
    /// (`try_execute_observed` into a `spiral_trace::Timeline`) when
    /// built with `trace`; a second plain pass otherwise.
    pub observed_us: f64,
    /// `100 · (observed - plain) / plain`.
    pub overhead_pct: f64,
    /// Whether the observed column really streamed timeline events
    /// (`false` = built without the `trace` feature).
    pub observed_available: bool,
}

/// Measure what event-timeline recording costs when it is ON: tuned
/// plan, plain `try_execute` vs `try_execute_observed` streaming every
/// pool-job/compute/barrier span into a lock-free `Timeline` ring,
/// min-of-reps. The per-event cost is two `Instant::now()` calls and
/// three relaxed atomic stores, so the overhead should stay within the
/// noise floor (≲1%) from `n = 2^14` up. Built without `trace`, the
/// second pass is plain again and the delta shows that noise floor.
pub fn timeline_overhead_ablation(
    threads: usize,
    min_log2: u32,
    max_log2: u32,
    reps: usize,
) -> Vec<TimelineOverheadRow> {
    use spiral_codegen::ParallelExecutor;
    use spiral_smp::barrier::BarrierKind;

    let reps = reps.max(1);
    let exec = ParallelExecutor::new(threads, BarrierKind::Park);
    let mut rows = Vec::new();
    for case in tuned_host_cases(threads, min_log2, max_log2) {
        let time_plain = || {
            min_time_us(reps, || {
                std::hint::black_box(
                    exec.try_execute(&case.plan, &case.x)
                        .expect("healthy plan must execute"),
                );
            })
        };
        let plain_us = time_plain();
        #[cfg(feature = "trace")]
        let observed_us = {
            // One ring set for all reps: the bounded ring wraps, so
            // steady-state cost is what a long-running service would see.
            let timeline = spiral_trace::Timeline::new(threads);
            min_time_us(reps, || {
                std::hint::black_box(
                    exec.try_execute_observed(&case.plan, &case.x, &timeline)
                        .expect("healthy plan must execute"),
                );
            })
        };
        #[cfg(not(feature = "trace"))]
        let observed_us = time_plain();
        rows.push(TimelineOverheadRow {
            log2n: case.log2n,
            plain_us,
            observed_us,
            overhead_pct: 100.0 * (observed_us - plain_us) / plain_us,
            observed_available: cfg!(feature = "trace"),
        });
    }
    rows
}

/// One row of the search comparison (SEARCH-DP).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchRow {
    /// Transform size as log2 n.
    pub log2n: u32,
    /// Best simulated cycles found by DP.
    pub dp_cycles: f64,
    /// Plans DP compiled and costed.
    pub dp_evaluated: usize,
    /// Best cycles found by random search (same budget).
    pub random_cycles: f64,
    /// Best cycles found by the GA.
    pub evolve_cycles: f64,
    /// Cycles of the fixed radix-2 recursion.
    pub radix2_cycles: f64,
}

/// DP vs random vs evolutionary vs fixed radix-2, costed on the
/// simulator (sequential plans — the strategies differ in tree choice).
pub fn search_comparison(machine: &MachineSpec, sizes_log2: &[u32]) -> Vec<SearchRow> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mu = machine.mu();
    let model = CostModel::Sim {
        machine: machine.clone(),
        warm: true,
    };
    let mut rows = Vec::new();
    for &k in sizes_log2 {
        let n = 1usize << k;
        let dp = dp_search(n, 8, mu, &model);
        let mut rng = StdRng::seed_from_u64(2006);
        let rnd = random_search(n, 8, mu, dp.evaluated.max(8), &model, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(2006);
        let evo = evolve_search(
            n,
            8,
            mu,
            EvolveOpts {
                population: 12,
                generations: 6,
                ..Default::default()
            },
            &model,
            &mut rng2,
        );
        let radix2 = model
            .cost_tree(&spiral_rewrite::RuleTree::right_radix(n, 2), mu)
            .unwrap();
        rows.push(SearchRow {
            log2n: k,
            dp_cycles: dp.cost,
            dp_evaluated: dp.evaluated,
            random_cycles: rnd.cost,
            evolve_cycles: evo.cost,
            radix2_cycles: radix2,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use spiral_sim::core_duo;

    #[test]
    fn spiral_has_zero_false_sharing_naive_has_plenty() {
        let rows = false_sharing_ablation(&core_duo(), 8, 10);
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.spiral_false_sharing, 0, "2^{}", r.log2n);
            assert!(
                r.naive_false_sharing > 0,
                "2^{}: µ-oblivious baseline shows no false sharing?",
                r.log2n
            );
        }
    }

    #[test]
    fn merging_exchanges_helps_at_small_sizes() {
        let rows = merge_ablation(&core_duo(), 8, 12);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.fused_barriers < r.explicit_barriers, "2^{}", r.log2n);
        }
        // In-cache sizes gain from the removed barriers and passes.
        let small = &rows[0];
        assert!(
            small.fused_cycles < small.explicit_cycles,
            "2^{}: fused {} vs explicit {}",
            small.log2n,
            small.fused_cycles,
            small.explicit_cycles
        );
    }

    #[test]
    fn coarser_grain_reduces_false_sharing() {
        let rows = schedule_ablation(&core_duo(), 10, &[1, 4, 64]);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].false_sharing >= rows[1].false_sharing);
        assert!(rows[1].false_sharing >= rows[2].false_sharing);
        // And cycles follow.
        assert!(rows[0].cycles >= rows[2].cycles);
    }

    #[test]
    fn multicore_ct_beats_explicit_sixstep() {
        let rows = sixstep_ablation(&core_duo(), 10, 12);
        for r in &rows {
            assert!(
                r.multicore_ct_pmflops > r.sixstep_pmflops,
                "2^{}: (14) {} vs six-step {}",
                r.log2n,
                r.multicore_ct_pmflops,
                r.sixstep_pmflops
            );
        }
    }

    #[test]
    fn analyzer_passes_spiral_rejects_naive_and_matches_simulator() {
        let rows = verification_ablation(&core_duo(), 8, 10);
        assert!(!rows.is_empty());
        for r in &rows {
            assert_eq!(r.spiral_diagnostics, 0, "2^{}", r.log2n);
            assert!(!r.spiral_static_false_sharing, "2^{}", r.log2n);
            assert!(r.naive_static_false_sharing, "2^{}", r.log2n);
            assert!(r.verdicts_agree, "2^{}: {r:?}", r.log2n);
        }
    }

    #[test]
    fn fault_overhead_rows_complete() {
        let rows = fault_overhead_ablation(2, 8, 9, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.exec_us > 0.0 && r.exec_us.is_finite(), "{r:?}");
            assert!(r.scan_us >= 0.0 && r.scan_pct >= 0.0, "{r:?}");
            assert!(r.barrier_wait_us > 0.0, "{r:?}");
        }
    }

    #[test]
    fn trace_overhead_rows_complete() {
        let rows = trace_overhead_ablation(2, 8, 9, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.plain_us > 0.0 && r.plain_us.is_finite(), "{r:?}");
            assert!(r.traced_us > 0.0 && r.traced_us.is_finite(), "{r:?}");
            assert!(r.overhead_pct.is_finite(), "{r:?}");
            assert_eq!(r.traced_available, cfg!(feature = "trace"), "{r:?}");
        }
    }

    #[test]
    fn timeline_overhead_rows_complete() {
        let rows = timeline_overhead_ablation(2, 8, 9, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.plain_us > 0.0 && r.plain_us.is_finite(), "{r:?}");
            assert!(r.observed_us > 0.0 && r.observed_us.is_finite(), "{r:?}");
            assert!(r.overhead_pct.is_finite(), "{r:?}");
            assert_eq!(r.observed_available, cfg!(feature = "trace"), "{r:?}");
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn fault_rows_carry_trace_attribution() {
        let rows = fault_overhead_ablation(2, 8, 8, 2);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.compute_us > 0.0, "{r:?}");
        assert!(r.barrier_us >= 0.0, "{r:?}");
        assert!((0.0..=100.0).contains(&r.barrier_share_pct), "{r:?}");
    }

    #[test]
    fn search_rows_complete() {
        let rows = search_comparison(&core_duo(), &[8]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.dp_cycles > 0.0);
        // DP should not lose to the fixed radix-2 strategy.
        assert!(r.dp_cycles <= r.radix2_cycles * 1.001);
    }
}
