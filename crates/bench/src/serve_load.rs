//! SERVE-LOAD: served throughput and latency under concurrency.
//!
//! The in-process grid ([`crate::history::measure_grid`]) answers "how
//! fast does a transform execute"; this module answers "how fast does
//! the *network tier* serve it" — round-trip latency percentiles over
//! the wire, measured in three phases per size:
//!
//! * **single** — one blocking client: the uncontended round-trip
//!   baseline;
//! * **warm** — `connections` concurrent persistent clients: the
//!   steady-state concurrency the server is sized for (every request
//!   must be admitted and served; the warm p99 is the number the
//!   overload criterion is measured against);
//! * **overload** — `overload_factor ×` as many clients, each opening a
//!   fresh connection per request: deliberately past admission
//!   capacity, where the server must *shed* (typed `Overloaded`
//!   responses) rather than buffer — the admitted requests' latency is
//!   the proof that shedding protected them.
//!
//! The result is a schema-versioned `serve_load.json` artifact (golden
//! under `results/`) plus [`rows_to_entries`] grid points for the
//! longitudinal bench history, keyed by `(log2n, threads, batch,
//! connections)`.

use crate::history::{pseudo_gflops, BenchEntry, BenchHost};
use serde::{Deserialize, Serialize};
use spiral_serve::{drive, percentile_us, LoadSpec, PlanService, Server, ServerConfig};
use std::sync::Arc;

/// Version stamp of the serialized [`ServeLoadFile`] layout; guarded by
/// the golden snapshot under `results/serve_load_schema.json`.
///
/// * v1 — initial layout (three phases per size, client-side tallies,
///   nearest-rank latency percentiles).
/// * v2 — rows record the served plan's tuner choice (`plan_kind`), so
///   downstream bench-history points can be labeled with the execution
///   backend (`scalar` vs `vector`) that actually served them.
/// * v3 — rows add the tail percentile `p999_us`; the file adds a
///   [`ServerLatencySummary`] derived from the server's own
///   `serve_request_seconds` histogram at drain (all zeros when the
///   server was built without the `trace` feature — the histogram is
///   compiled out structurally).
pub const SERVE_LOAD_SCHEMA_VERSION: u64 = 3;

/// One measured load phase at one transform size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeLoadRow {
    /// Transform size as log2 n.
    pub log2n: u64,
    /// Transforms per request.
    pub batch: u64,
    /// Concurrent client connections driving this phase.
    pub connections: u64,
    /// `"single"`, `"warm"`, or `"overload"`.
    pub phase: String,
    /// Tuner choice of the served (sequential, per-transform) plan —
    /// e.g. `"sequential tree (8 x 8) + vec(4)"`. Carries the execution
    /// backend into the bench history.
    pub plan_kind: String,
    /// Requests the clients attempted.
    pub requests: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Overloaded` responses (admission-control rejects).
    pub overloaded: u64,
    /// `Expired` responses (deadline shed).
    pub expired: u64,
    /// `Error` responses.
    pub errors: u64,
    /// Wire-level failures seen by the clients (must be 0 on a healthy
    /// host — the CI smoke gates on it).
    pub protocol_errors: u64,
    /// Median round-trip latency of `Ok` requests, microseconds.
    pub p50_us: u64,
    /// 95th-percentile round-trip latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile round-trip latency, microseconds.
    pub p999_us: u64,
    /// Responses (any status) per wall-clock second.
    pub rps: f64,
}

/// Latency percentiles the *server* measured about itself, from its
/// `serve_request_seconds` histogram at drain — the cross-check against
/// the socket-side percentiles the clients measured. All zeros when the
/// serving tier was compiled without histograms (`trace` off).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerLatencySummary {
    /// Requests the histogram saw (every terminal response).
    pub samples: u64,
    /// Median end-to-end served latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile end-to-end served latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile end-to-end served latency, microseconds.
    pub p999_us: u64,
}

impl ServerLatencySummary {
    /// Summarize a drain-time metrics snapshot. Histogram values are
    /// nanoseconds; the summary reports microseconds to match the
    /// socket-side rows.
    pub fn from_metrics(m: &spiral_serve::MetricsSnapshot) -> ServerLatencySummary {
        match m.histogram("serve_request_seconds") {
            Some(h) if h.count > 0 => ServerLatencySummary {
                samples: h.count,
                p50_us: h.quantile(0.5) / 1_000,
                p99_us: h.quantile(0.99) / 1_000,
                p999_us: h.quantile(0.999) / 1_000,
            },
            _ => ServerLatencySummary::default(),
        }
    }
}

/// The whole SERVE-LOAD artifact: provenance + per-phase rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeLoadFile {
    /// Serialization layout version ([`SERVE_LOAD_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Host the measurement ran on.
    pub host: BenchHost,
    /// Execution-pool threads behind the served plans.
    pub workers: u64,
    /// Deadline budget carried on every request (ms; 0 = server
    /// default).
    pub deadline_ms: u64,
    /// Tuner invocations across the whole measurement, pre-warm
    /// included. Zero when serving from warm wisdom — the warm-path
    /// invariant the CI smoke asserts via `--require-warm`.
    pub tuner_invocations: u64,
    /// The server's own latency view at drain (zeros without `trace`).
    pub server: ServerLatencySummary,
    /// Measured phases, size-major then single/warm/overload.
    pub rows: Vec<ServeLoadRow>,
}

/// Knobs for one [`measure_serve_load`] run.
#[derive(Clone, Debug)]
pub struct ServeLoadOpts {
    /// Smallest size, as log2 n.
    pub min_log2n: u32,
    /// Largest size, as log2 n.
    pub max_log2n: u32,
    /// Execution-pool threads for the [`PlanService`].
    pub workers: usize,
    /// Concurrent connections in the warm phase (also sizes the
    /// server's connection workers and admission bounds, so the warm
    /// phase is within capacity and the overload phase is past it).
    pub connections: usize,
    /// Requests per connection per phase.
    pub requests_per_conn: usize,
    /// Transforms per request.
    pub batch: usize,
    /// Relative deadline on every request (ms; 0 = server default).
    pub deadline_ms: u32,
    /// Overload multiplier on `connections` (the acceptance criterion
    /// uses 10).
    pub overload_factor: usize,
    /// Wisdom file to serve from (and persist to on drain).
    pub wisdom: Option<std::path::PathBuf>,
}

impl Default for ServeLoadOpts {
    fn default() -> ServeLoadOpts {
        ServeLoadOpts {
            min_log2n: 6,
            max_log2n: 8,
            workers: 2,
            connections: 4,
            requests_per_conn: 32,
            batch: 8,
            deadline_ms: 0,
            overload_factor: 10,
            wisdom: None,
        }
    }
}

/// Run the three-phase load measurement against an in-process server.
///
/// One server instance serves every size (its plan cache holds them
/// all, like a production deployment would); each size is pre-planned
/// before measurement so the phases exercise the serving path, not the
/// tuner — against warm wisdom the pre-plan is a cache load and
/// `tuner_invocations` stays 0.
pub fn measure_serve_load(opts: &ServeLoadOpts) -> Result<ServeLoadFile, String> {
    let mu = spiral_smp::topology::mu();
    let service = match &opts.wisdom {
        Some(path) => {
            let (svc, report) = PlanService::with_wisdom(opts.workers, mu, path);
            println!("wisdom: {} ({})", report.summary(), path.display());
            svc
        }
        None => PlanService::new(opts.workers, mu),
    };
    let service = Arc::new(service);
    let mut choices = std::collections::HashMap::new();
    for k in opts.min_log2n..=opts.max_log2n {
        let n = 1usize << k;
        let served = service
            .sequential_plan(n)
            .map_err(|e| format!("planning DFT_{n} failed: {e}"))?;
        choices.insert(k, served.choice.clone());
    }

    let conns = opts.connections.max(1);
    let cfg = ServerConfig {
        // Connection workers sized to the warm concurrency: the warm
        // phase is fully admitted, the overload phase is not.
        workers: conns,
        conn_backlog: conns,
        queue_bound: conns * 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Arc::clone(&service), cfg)?;
    let addr = server.local_addr();

    let mut rows = Vec::new();
    for k in opts.min_log2n..=opts.max_log2n {
        let n = 1usize << k;
        let base = LoadSpec {
            addr,
            connections: 1,
            requests_per_conn: opts.requests_per_conn,
            n,
            batch: opts.batch.max(1),
            deadline_ms: opts.deadline_ms,
            reconnect_per_request: false,
            seed: 1,
        };
        let choice = choices.get(&k).cloned().unwrap_or_default();
        rows.push(run_phase(k, "single", &choice, &base));
        rows.push(run_phase(
            k,
            "warm",
            &choice,
            &LoadSpec {
                connections: conns,
                ..base.clone()
            },
        ));
        rows.push(run_phase(
            k,
            "overload",
            &choice,
            &LoadSpec {
                connections: conns * opts.overload_factor.max(1),
                reconnect_per_request: true,
                ..base
            },
        ));
    }

    let report = server.shutdown();
    if report.thread_panics > 0 {
        return Err(format!(
            "{} server thread(s) panicked during the measurement",
            report.thread_panics
        ));
    }
    if let Some(e) = report.wisdom_error {
        return Err(format!("wisdom save failed on drain: {e}"));
    }

    Ok(ServeLoadFile {
        schema: SERVE_LOAD_SCHEMA_VERSION,
        host: BenchHost::current(),
        workers: opts.workers as u64,
        deadline_ms: u64::from(opts.deadline_ms),
        tuner_invocations: service.tuner_invocations(),
        server: ServerLatencySummary::from_metrics(&report.metrics),
        rows,
    })
}

/// Drive one phase and tally it into a row.
fn run_phase(log2n: u32, phase: &str, plan_kind: &str, spec: &LoadSpec) -> ServeLoadRow {
    let mut outcome = drive(spec);
    let responses = outcome.responses();
    ServeLoadRow {
        log2n: u64::from(log2n),
        batch: spec.batch as u64,
        connections: spec.connections as u64,
        phase: phase.to_string(),
        plan_kind: plan_kind.to_string(),
        requests: (spec.connections * spec.requests_per_conn) as u64,
        ok: outcome.ok,
        overloaded: outcome.overloaded,
        expired: outcome.expired,
        errors: outcome.errors,
        protocol_errors: outcome.protocol_errors,
        p50_us: percentile_us(&mut outcome.latencies_us, 50.0),
        p95_us: percentile_us(&mut outcome.latencies_us, 95.0),
        p99_us: percentile_us(&mut outcome.latencies_us, 99.0),
        p999_us: percentile_us(&mut outcome.latencies_us, 99.9),
        rps: responses as f64 / outcome.elapsed_s.max(1e-12),
    }
}

/// One arm of the ABL-SERVE-METRICS overhead measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsOverheadRow {
    /// Whether per-phase histogram recording was enabled.
    pub metrics_enabled: bool,
    /// Requests driven.
    pub requests: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// Median round-trip latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile round-trip latency, microseconds.
    pub p99_us: u64,
    /// Responses per wall-clock second.
    pub rps: f64,
}

/// The ABL-SERVE-METRICS artifact: warm-phase latency with telemetry
/// recording on vs off, same server shape, same warm plan cache.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetricsOverheadFile {
    /// Host the measurement ran on.
    pub host: BenchHost,
    /// Execution-pool threads behind the served plans.
    pub workers: u64,
    /// Concurrent warm connections.
    pub connections: u64,
    /// Transform size as log2 n.
    pub log2n: u64,
    /// Transforms per request.
    pub batch: u64,
    /// The two arms: metrics off first, then on.
    pub rows: Vec<MetricsOverheadRow>,
    /// Relative p50 cost of recording, percent (negative = noise).
    pub overhead_pct_p50: f64,
    /// Relative p99 cost of recording, percent.
    pub overhead_pct_p99: f64,
}

/// ABL-SERVE-METRICS: drive the warm phase against two servers sharing
/// one warm plan cache — telemetry recording disabled vs enabled — and
/// report the relative latency cost. Without the serving tier's `trace`
/// feature both arms skip histogram recording structurally, so the
/// measured overhead is the residual cost of the seam itself (a few
/// branch tests), which should be indistinguishable from noise.
pub fn measure_metrics_overhead(opts: &ServeLoadOpts) -> Result<MetricsOverheadFile, String> {
    let mu = spiral_smp::topology::mu();
    let service = Arc::new(PlanService::new(opts.workers, mu));
    let n = 1usize << opts.max_log2n;
    service
        .sequential_plan(n)
        .map_err(|e| format!("planning DFT_{n} failed: {e}"))?;

    let conns = opts.connections.max(1);
    let mut rows = Vec::new();
    for enabled in [false, true] {
        let cfg = ServerConfig {
            workers: conns,
            conn_backlog: conns,
            queue_bound: conns * 2,
            metrics_enabled: enabled,
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&service), cfg)?;
        let spec = LoadSpec {
            addr: server.local_addr(),
            connections: conns,
            requests_per_conn: opts.requests_per_conn,
            n,
            batch: opts.batch.max(1),
            deadline_ms: opts.deadline_ms,
            reconnect_per_request: false,
            seed: 7,
        };
        // One throwaway pass warms connections, caches, and the pool.
        drive(&LoadSpec {
            requests_per_conn: (opts.requests_per_conn / 4).max(1),
            ..spec.clone()
        });
        let mut outcome = drive(&spec);
        let report = server.shutdown();
        if report.thread_panics > 0 {
            return Err("server thread panicked during the overhead ablation".to_string());
        }
        let responses = outcome.responses();
        rows.push(MetricsOverheadRow {
            metrics_enabled: enabled,
            requests: (spec.connections * spec.requests_per_conn) as u64,
            ok: outcome.ok,
            p50_us: percentile_us(&mut outcome.latencies_us, 50.0),
            p99_us: percentile_us(&mut outcome.latencies_us, 99.0),
            rps: responses as f64 / outcome.elapsed_s.max(1e-12),
        });
    }

    let pct = |on: u64, off: u64| {
        if off == 0 {
            0.0
        } else {
            (on as f64 - off as f64) / off as f64 * 100.0
        }
    };
    let (off, on) = (&rows[0], &rows[1]);
    let file = MetricsOverheadFile {
        host: BenchHost::current(),
        workers: opts.workers as u64,
        connections: conns as u64,
        log2n: u64::from(opts.max_log2n),
        batch: opts.batch.max(1) as u64,
        overhead_pct_p50: pct(on.p50_us, off.p50_us),
        overhead_pct_p99: pct(on.p99_us, off.p99_us),
        rows,
    };
    Ok(file)
}

/// The measured phases as bench-history grid points, keyed by `(log2n,
/// threads, batch, connections)`. The per-transform median is the `Ok`
/// round-trip p50 divided by the batch size — wire overhead included,
/// which is the point: the history tracks *served* throughput. Rows
/// with no successful requests are skipped, as are rows whose key a
/// previous row already claimed (a warm phase configured with one
/// connection collides with the single phase).
pub fn rows_to_entries(file: &ServeLoadFile) -> Vec<BenchEntry> {
    let mut seen = std::collections::HashSet::new();
    let mut entries = Vec::new();
    for r in &file.rows {
        if r.ok == 0 || r.p50_us == 0 {
            continue;
        }
        if !seen.insert((r.log2n, r.batch, r.connections)) {
            continue;
        }
        let n = 1usize << r.log2n;
        let per_transform_us = r.p50_us as f64 / r.batch.max(1) as f64;
        // Robust spread proxy: half the p50→p95 gap, per transform.
        let spread_us = (r.p95_us.saturating_sub(r.p50_us)) as f64 / (2.0 * r.batch.max(1) as f64);
        let gflops = pseudo_gflops(n, per_transform_us);
        let gflops_spread = (gflops - pseudo_gflops(n, per_transform_us + spread_us)).abs();
        entries.push(BenchEntry {
            log2n: r.log2n,
            threads: file.workers,
            batch: r.batch,
            connections: r.connections,
            processes: 1,
            backend: crate::history::backend_from_choice(&r.plan_kind).to_string(),
            plan_kind: format!("served {}", r.phase),
            reps: r.ok,
            median_us: per_transform_us,
            mad_us: spread_us,
            p99_us: r.p99_us as f64 / r.batch.max(1) as f64,
            p999_us: r.p999_us as f64 / r.batch.max(1) as f64,
            gflops,
            gflops_mad: gflops_spread,
        });
    }
    entries
}

/// Aggregate sanity check used by tests and the smoke gate: every
/// phase's client-side tallies are internally consistent.
pub fn validate_file(file: &ServeLoadFile) -> Result<(), String> {
    if file.schema != SERVE_LOAD_SCHEMA_VERSION {
        return Err(format!(
            "unsupported serve-load schema {} (this build writes {})",
            file.schema, SERVE_LOAD_SCHEMA_VERSION
        ));
    }
    for r in &file.rows {
        let responses = r.ok + r.overloaded + r.expired + r.errors;
        if responses + r.protocol_errors > r.requests {
            return Err(format!(
                "row (n=2^{}, {}): more outcomes than requests: {r:?}",
                r.log2n, r.phase
            ));
        }
        if !r.rps.is_finite() || r.rps < 0.0 {
            return Err(format!(
                "row (n=2^{}, {}): degenerate rps: {r:?}",
                r.log2n, r.phase
            ));
        }
        if r.p50_us > r.p95_us || r.p95_us > r.p99_us || r.p99_us > r.p999_us {
            return Err(format!(
                "row (n=2^{}, {}): percentiles not monotone: {r:?}",
                r.log2n, r.phase
            ));
        }
        match r.phase.as_str() {
            "single" | "warm" | "overload" => {}
            other => return Err(format!("unknown phase name '{other}'")),
        }
    }
    let s = &file.server;
    if s.p50_us > s.p99_us || s.p99_us > s.p999_us {
        return Err(format!("server-side percentiles not monotone: {s:?}"));
    }
    if s.samples == 0 && (s.p50_us != 0 || s.p99_us != 0 || s.p999_us != 0) {
        return Err(format!(
            "server summary has percentiles but no samples: {s:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> ServeLoadOpts {
        ServeLoadOpts {
            min_log2n: 5,
            max_log2n: 5,
            workers: 1,
            connections: 2,
            requests_per_conn: 4,
            batch: 2,
            overload_factor: 3,
            ..ServeLoadOpts::default()
        }
    }

    #[test]
    fn live_measurement_produces_consistent_rows() {
        let file = measure_serve_load(&quick_opts()).expect("measurement runs");
        validate_file(&file).expect("rows are consistent");
        assert_eq!(file.rows.len(), 3, "single + warm + overload");
        let single = &file.rows[0];
        let warm = &file.rows[1];
        assert_eq!(single.phase, "single");
        assert_eq!(warm.phase, "warm");
        // In-capacity phases on an idle host serve everything.
        assert_eq!(single.ok, single.requests, "{single:?}");
        assert_eq!(warm.ok, warm.requests, "{warm:?}");
        assert!(single.p50_us > 0);
        // Without wisdom the pre-warm tuned exactly the one size.
        assert!(file.tuner_invocations >= 1);
    }

    #[test]
    fn file_round_trips_through_json() {
        let file = measure_serve_load(&quick_opts()).expect("measurement runs");
        let json = serde_json::to_string_pretty(&file).expect("serializes");
        let back: ServeLoadFile = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, file);
    }

    #[test]
    fn history_entries_carry_the_connections_key() {
        let file = measure_serve_load(&quick_opts()).expect("measurement runs");
        let entries = rows_to_entries(&file);
        assert!(!entries.is_empty());
        assert!(entries.iter().any(|e| e.connections == 1));
        assert!(entries.iter().any(|e| e.connections > 1));
        for e in &entries {
            assert!(e.gflops > 0.0, "{e:?}");
            assert!(e.plan_kind.starts_with("served "), "{e:?}");
        }
        // The entries slot into a valid history.
        let mut h = crate::history::BenchHistory::default();
        let mut run = crate::history::measure_grid(&[5], &[1], 2);
        run.entries.extend(entries);
        h.append(run);
        h.validate().expect("serve-load entries validate");
    }

    #[test]
    fn validate_rejects_inconsistent_rows() {
        let mut file = ServeLoadFile {
            schema: SERVE_LOAD_SCHEMA_VERSION,
            host: BenchHost::current(),
            workers: 1,
            deadline_ms: 0,
            tuner_invocations: 0,
            server: ServerLatencySummary::default(),
            rows: vec![ServeLoadRow {
                log2n: 5,
                batch: 1,
                connections: 1,
                phase: "single".to_string(),
                plan_kind: "sequential tree (4 x 8)".to_string(),
                requests: 1,
                ok: 2, // more outcomes than requests
                overloaded: 0,
                expired: 0,
                errors: 0,
                protocol_errors: 0,
                p50_us: 1,
                p95_us: 1,
                p99_us: 1,
                p999_us: 1,
                rps: 1.0,
            }],
        };
        assert!(validate_file(&file).is_err());
        file.rows[0].ok = 1;
        validate_file(&file).expect("fixed row validates");
        file.rows[0].p50_us = 5; // not monotone vs p95
        assert!(validate_file(&file).is_err());
        file.rows[0].p50_us = 1;
        file.server.p999_us = 7; // percentiles without samples
        assert!(validate_file(&file).is_err());
    }

    #[test]
    fn metrics_overhead_ablation_produces_two_arms() {
        let file = measure_metrics_overhead(&quick_opts()).expect("ablation runs");
        assert_eq!(file.rows.len(), 2);
        assert!(!file.rows[0].metrics_enabled);
        assert!(file.rows[1].metrics_enabled);
        for r in &file.rows {
            assert_eq!(r.ok, r.requests, "warm arm must admit everything: {r:?}");
            assert!(r.p50_us > 0 && r.p50_us <= r.p99_us, "{r:?}");
        }
        assert!(file.overhead_pct_p50.is_finite());
        let json = serde_json::to_string_pretty(&file).expect("serializes");
        let back: MetricsOverheadFile = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, file);
    }

    /// With histograms compiled in, the server's own latency view must
    /// agree with what the clients saw on the socket — same requests,
    /// measured from the other end of the wire.
    #[cfg(feature = "trace")]
    #[test]
    fn server_histogram_percentiles_track_the_socket_percentiles() {
        let file = measure_serve_load(&quick_opts()).expect("measurement runs");
        // Admission rejects at the accept loop answer `Overloaded`
        // without ever becoming a read request, so the histogram sees
        // at least every served/expired/errored request and at most
        // every response the clients tallied.
        let served: u64 = file.rows.iter().map(|r| r.ok + r.expired + r.errors).sum();
        let total: u64 = file
            .rows
            .iter()
            .map(|r| r.ok + r.overloaded + r.expired + r.errors)
            .sum();
        assert!(
            file.server.samples >= served && file.server.samples <= total,
            "histogram samples {} outside [{served}, {total}]",
            file.server.samples
        );
        assert!(file.server.p50_us > 0);
        // The server measures read-to-write; the client adds the wire
        // round trip on top. Generous noise bounds — this is a
        // cross-check, not a microbenchmark.
        let socket_p99 = file.rows.iter().map(|r| r.p99_us).max().unwrap_or(0);
        assert!(
            file.server.p99_us <= socket_p99.saturating_mul(3).saturating_add(500),
            "server p99 {}us implausibly above socket p99 {}us",
            file.server.p99_us,
            socket_p99
        );
    }
}
