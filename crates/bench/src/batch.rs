//! BATCH — batched small-DFT throughput vs per-transform dispatch.
//!
//! The serving layer's claim: below the parallelization crossover,
//! partitioning the *batch* dimension across the pool (one dispatch per
//! batch of independent transforms, sequential kernel per transform)
//! beats running the tuned per-transform schedule once per request —
//! the per-step barrier cost that dominates small `n` is paid once per
//! batch instead of once per stage per transform. This module measures
//! both paths on the host and reports per-transform medians, so the
//! ≥1.5× acceptance bound is a recorded number, not an assumption.

use crate::history::{mad, median, pseudo_gflops, BenchEntry};
use serde::Serialize;
use spiral_codegen::{BatchExecutor, ParallelExecutor};
use spiral_search::{CostModel, Tuner};
use spiral_spl::cplx::Cplx;
use std::time::Instant;

/// One measured (size, threads, batch) point: per-transform medians of
/// the single-dispatch baseline and the batched path.
#[derive(Clone, Debug, Serialize)]
pub struct BatchRow {
    /// log2 of the transform size.
    pub log2n: u64,
    /// Pool thread count.
    pub threads: u64,
    /// Transforms per batch.
    pub batch: u64,
    /// Plan the single-transform baseline ran (tuned for `threads`).
    pub single_choice: String,
    /// Per-transform kernel the batched path ran (tuned sequential).
    pub batch_choice: String,
    /// Baseline µs per transform (median over reps).
    pub single_us: f64,
    /// MAD of the baseline per-transform times.
    pub single_mad_us: f64,
    /// Batched µs per transform (median over reps).
    pub batch_us: f64,
    /// MAD of the batched per-transform times.
    pub batch_mad_us: f64,
    /// `single_us / batch_us` — the serving layer's win.
    pub speedup: f64,
}

/// Measure the (sizes × threads) grid at one batch size. Each rep times
/// `batch` transforms end-to-end on both paths; recorded numbers are
/// per-transform. The baseline runs the tuned plan for `threads`
/// (parallel when the multicore rewrite admits `n`, sequential
/// otherwise) once per transform; the batched path runs the tuned
/// sequential kernel for all `batch` inputs in one pool dispatch.
pub fn measure_batch_rows(
    sizes_log2: &[u32],
    threads: &[usize],
    batch: usize,
    reps: usize,
) -> Vec<BatchRow> {
    let reps = reps.max(2);
    let batch = batch.max(1);
    let mu = spiral_smp::topology::mu();
    let mut rows = Vec::new();
    for &p in threads {
        let p = p.max(1);
        let tuner = Tuner::new(p, mu, CostModel::Analytic);
        let stage_exec = (p > 1).then(|| ParallelExecutor::with_auto_barrier(p));
        let batch_exec = BatchExecutor::new(p);
        for &k in sizes_log2 {
            let n = 1usize << k;
            let Ok(seq) = tuner.tune_sequential(n) else {
                continue;
            };
            // Baseline plan: what a per-request service without batching
            // would run at this thread count.
            let single = match (p > 1).then(|| tuner.tune_parallel(n)) {
                Some(Ok(Some(t))) => Some(t),
                _ => None,
            };
            let (single_plan, single_choice) = match &single {
                Some(t) => (&t.plan, t.choice.as_str()),
                None => (&seq.plan, seq.choice.as_str()),
            };
            let inputs: Vec<Vec<Cplx>> = (0..batch)
                .map(|b| {
                    (0..n)
                        .map(|j| {
                            Cplx::new(
                                (j as f64 + b as f64 * 0.5) / n as f64,
                                -(j as f64) / n as f64,
                            )
                        })
                        .collect()
                })
                .collect();

            let mut single_us = Vec::with_capacity(reps);
            let mut batch_us = Vec::with_capacity(reps);
            // One warm-up rep each (pool spin-up, cold caches).
            for rep in 0..=reps {
                let t0 = Instant::now();
                for x in &inputs {
                    let out = match &stage_exec {
                        Some(e) if single_plan.threads > 1 => e
                            .try_execute(single_plan, x)
                            .expect("healthy tuned plan must execute"),
                        _ => single_plan.execute(x),
                    };
                    std::hint::black_box(out);
                }
                let dt_single = t0.elapsed().as_secs_f64() * 1e6 / batch as f64;

                let t1 = Instant::now();
                let out = batch_exec
                    .try_execute_batch(&seq.plan, &inputs)
                    .expect("healthy sequential plan must batch");
                let dt_batch = t1.elapsed().as_secs_f64() * 1e6 / batch as f64;
                std::hint::black_box(out);

                if rep > 0 {
                    single_us.push(dt_single);
                    batch_us.push(dt_batch);
                }
            }
            let s = median(&single_us);
            let b = median(&batch_us);
            rows.push(BatchRow {
                log2n: k as u64,
                threads: p as u64,
                batch: batch as u64,
                single_choice: single_choice.to_string(),
                batch_choice: seq.choice.clone(),
                single_us: s,
                single_mad_us: mad(&single_us),
                batch_us: b,
                batch_mad_us: mad(&batch_us),
                speedup: s / b.max(1e-9),
            });
        }
    }
    rows
}

/// The batched path of each row as a bench-history grid point:
/// per-transform timings keyed by `(log2n, threads, batch)`, so the
/// regression harness tracks batched throughput alongside the batch=1
/// grid.
pub fn rows_to_entries(rows: &[BatchRow], reps: usize) -> Vec<BenchEntry> {
    rows.iter()
        .map(|r| {
            let n = 1usize << r.log2n;
            BenchEntry {
                log2n: r.log2n,
                threads: r.threads,
                batch: r.batch,
                connections: 1,
                processes: 1,
                backend: crate::history::backend_from_choice(&r.batch_choice).to_string(),
                plan_kind: format!("batched {}", r.batch_choice),
                reps: reps as u64,
                median_us: r.batch_us,
                mad_us: r.batch_mad_us,
                p99_us: 0.0,
                p999_us: 0.0,
                gflops: pseudo_gflops(n, r.batch_us),
                gflops_mad: 0.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_real_rows_with_positive_times() {
        let rows = measure_batch_rows(&[6], &[1, 2], 4, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.log2n, 6);
            assert_eq!(r.batch, 4);
            assert!(r.single_us > 0.0 && r.batch_us > 0.0);
            assert!(r.speedup.is_finite() && r.speedup > 0.0);
            assert!(!r.batch_choice.is_empty());
        }
    }

    #[test]
    fn history_entries_carry_the_batch_key() {
        let rows = measure_batch_rows(&[5], &[2], 3, 2);
        let entries = rows_to_entries(&rows, 2);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].batch, 3);
        assert!(entries[0].plan_kind.starts_with("batched "));
        assert!(entries[0].gflops > 0.0);
    }
}
