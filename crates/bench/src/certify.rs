//! CERT — the static certification sweep and its report artifact.
//!
//! Runs both `spiral-verify` certification passes (exact cyclotomic
//! equivalence against `DFT_n`, and dataflow abstract interpretation)
//! over every tuner-reachable plan shape in a size range, and packages
//! the verdicts as a schema-versioned JSON artifact
//! (`results/certify_report.json`). Unlike every other figure, nothing
//! here is measured: the sweep is a set of *proofs*, so the artifact is
//! deterministic and diff-able across commits.

use serde::{Deserialize, Serialize};
use spiral_codegen::plan::Plan;
use spiral_codegen::shard::shard_plan;
use spiral_rewrite::{multicore_dft_expanded, sequential_dft};
use spiral_spl::builder::{dist_tag, vec_tag};
use spiral_verify::certify::shards::certify_shards;
use spiral_verify::certify::{certify_plan, CertOptions};

/// Schema version of [`CertifyReportFile`]. Bump on any shape change
/// and regenerate the golden snapshot.
///
/// * v1 — sequential/multicore/vec shapes.
/// * v2 — adds the `dist(q)` sharded shapes (exact passes over the
///   dist-tagged fused plan, plus the shard-boundary pass over its
///   geometry).
pub const CERTIFY_SCHEMA_VERSION: u32 = 2;

/// Verdict for one plan shape in the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertifyRow {
    /// Transform size.
    pub n: usize,
    /// Thread count the plan targets.
    pub threads: usize,
    /// Cache-line parameter µ.
    pub mu: usize,
    /// Human-readable plan shape (split strategy, leaf size, fusion).
    pub shape: String,
    /// Whether the dataflow pass accepted the plan.
    pub dataflow_certified: bool,
    /// Whether the exact symbolic pass accepted the plan (`None` when
    /// it did not run: `n` above the limit or dataflow already failed).
    pub symbolic_certified: Option<bool>,
    /// Rendered findings, empty when certified.
    pub findings: Vec<String>,
}

/// The `certify_report.json` artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CertifyReportFile {
    /// Schema version ([`CERTIFY_SCHEMA_VERSION`]).
    pub schema: u32,
    /// Largest `n` the symbolic pass ran at.
    pub symbolic_limit: usize,
    /// Plan shapes swept.
    pub total: usize,
    /// Shapes on which every pass that ran accepted.
    pub certified: usize,
    /// Per-shape verdicts.
    pub rows: Vec<CertifyRow>,
}

fn push(rows: &mut Vec<CertifyRow>, plan: &Plan, shape: String, opts: &CertOptions) {
    let rep = certify_plan(plan, opts);
    rows.push(CertifyRow {
        n: rep.n,
        threads: rep.threads,
        mu: rep.mu,
        shape,
        dataflow_certified: rep.dataflow_certified,
        symbolic_certified: rep.symbolic_certified,
        findings: rep.findings.iter().map(|f| f.to_string()).collect(),
    });
}

/// Certify every tuner-reachable plan shape for `n = 2^min_log2 ..
/// 2^max_log2`: sequential trees at each codelet leaf size, and — for
/// `p ∈ {2, 4}` up to `max_threads` — the formula (14) lowering at
/// `µ ∈ {1, 2}`, both with explicit exchanges and with the exchanges
/// fused into the compute steps. Every shape is additionally swept
/// under the `vec(ν)` tag at ν ∈ {2, 4}: the vector lowering must
/// prove out under the *same* exact passes as the scalar one, so a
/// vector-marked stage that drifted from `DFT_n` is a certification
/// failure, not a benchmark surprise. Tags that do not take (no stage
/// aligns at ν) are skipped — the marking is deterministic from the
/// formula, so the artifact stays diff-able across hosts.
///
/// Multicore shapes are further swept under the `dist(q)` tag at
/// `q ∈ {2, 4}` where the fused plan's prefix shards: the exact passes
/// run over the dist-tagged plan, and the shard-boundary pass runs
/// over its geometry, so a corrupted shard region is a certification
/// failure here — not a fleet surprise.
pub fn certification_sweep(min_log2: u32, max_log2: u32, max_threads: usize) -> CertifyReportFile {
    let opts = CertOptions::default();
    let mut rows = Vec::new();
    for k in min_log2..=max_log2 {
        let n = 1usize << k;
        for leaf in [2usize, 4, 8] {
            if leaf > n {
                continue;
            }
            let f = sequential_dft(n, leaf);
            if let Ok(plan) = Plan::from_formula(&f, 1, 1) {
                push(&mut rows, &plan, format!("sequential leaf {leaf}"), &opts);
            }
            for nu in [2usize, 4] {
                let tagged = vec_tag(nu, f.clone());
                if let Ok(plan) = Plan::from_formula(&tagged, 1, 1) {
                    if plan.vec_width > 1 {
                        push(
                            &mut rows,
                            &plan,
                            format!("sequential leaf {leaf} + vec({nu})"),
                            &opts,
                        );
                    }
                }
            }
        }
        for p in [2usize, 4] {
            if p > max_threads {
                continue;
            }
            for mu in [1usize, 2] {
                let Ok(f) = multicore_dft_expanded(n, p, mu, None, 8) else {
                    continue;
                };
                let Ok(plan) = Plan::from_formula(&f, p, mu) else {
                    continue;
                };
                push(
                    &mut rows,
                    &plan,
                    "multicore default split".to_string(),
                    &opts,
                );
                push(
                    &mut rows,
                    &plan.clone().fuse_exchanges(),
                    "multicore default split, fused exchanges".to_string(),
                    &opts,
                );
                for q in [2usize, 4] {
                    let tagged = dist_tag(q, f.clone());
                    let Ok(dplan) = Plan::from_formula(&tagged, p, mu) else {
                        continue;
                    };
                    let dplan = dplan.fuse_exchanges();
                    let Ok(spec) = shard_plan(&dplan, q) else {
                        continue;
                    };
                    let rep = certify_plan(&dplan, &opts);
                    let mut findings: Vec<String> =
                        rep.findings.iter().map(|x| x.to_string()).collect();
                    findings.extend(certify_shards(&dplan, &spec).iter().map(|x| x.to_string()));
                    rows.push(CertifyRow {
                        n: rep.n,
                        threads: rep.threads,
                        mu: rep.mu,
                        shape: format!("multicore default split + dist({q}), fused exchanges"),
                        dataflow_certified: rep.dataflow_certified,
                        symbolic_certified: rep.symbolic_certified,
                        findings,
                    });
                }
                for nu in [2usize, 4] {
                    let tagged = vec_tag(nu, f.clone());
                    let Ok(plan) = Plan::from_formula(&tagged, p, mu) else {
                        continue;
                    };
                    if plan.vec_width <= 1 {
                        continue;
                    }
                    push(
                        &mut rows,
                        &plan,
                        format!("multicore default split + vec({nu})"),
                        &opts,
                    );
                    push(
                        &mut rows,
                        &plan.clone().fuse_exchanges(),
                        format!("multicore default split + vec({nu}), fused exchanges"),
                        &opts,
                    );
                }
            }
        }
    }
    let certified = rows.iter().filter(|r| r.findings.is_empty()).count();
    CertifyReportFile {
        schema: CERTIFY_SCHEMA_VERSION,
        symbolic_limit: opts.symbolic_limit,
        total: rows.len(),
        certified,
        rows,
    }
}
